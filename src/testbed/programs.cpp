#include "testbed/programs.hpp"

#include <array>
#include <atomic>
#include <cmath>
#include <mutex>
#include <thread>

namespace medcc::testbed {
namespace {

/// One kernel iteration: a small 1-D stencil update, ~32 flops.
double kernel_block(double seed) {
  std::array<double, 32> cell{};
  cell[0] = seed;
  for (std::size_t i = 1; i < cell.size(); ++i)
    cell[i] = 0.5 * cell[i - 1] + 0.25;
  double acc = 0.0;
  for (std::size_t i = 1; i + 1 < cell.size(); ++i)
    acc += 0.25 * (cell[i - 1] + 2.0 * cell[i] + cell[i + 1]);
  return acc;
}

}  // namespace

double calibrate_kernel() {
  static std::once_flag flag;
  static double rate = 0.0;
  std::call_once(flag, [] {
    const auto start = std::chrono::steady_clock::now();
    double sink = 1.0;
    std::uint64_t iterations = 0;
    // Run for ~20 ms to estimate throughput.
    while (std::chrono::steady_clock::now() - start <
           std::chrono::milliseconds(20)) {
      for (int k = 0; k < 1000; ++k) sink = kernel_block(sink);
      iterations += 1000;
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    rate = static_cast<double>(iterations) / seconds;
    // Keep the sink observable so the loop is not elided.
    static std::atomic<double> observable{0.0};
    observable.store(sink, std::memory_order_relaxed);
  });
  return rate;
}

double run_program(double seconds, ProgramMode mode) {
  if (seconds <= 0.0) return 0.0;
  if (mode == ProgramMode::Sleep) {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    return 0.0;
  }
  const double rate = calibrate_kernel();
  const auto iterations = static_cast<std::uint64_t>(seconds * rate);
  double sink = 1.0;
  for (std::uint64_t i = 0; i < iterations; ++i) sink = kernel_block(sink);
  return sink;
}

const std::array<Program, 5>& wrf_stage_programs() {
  static const std::array<Program, 5> programs = {{
      {"ungrib", 10.0},
      {"metgrid", 8.0},
      {"real", 35.0},
      {"wrf", 550.0},
      {"ARWpost", 120.0},
  }};
  return programs;
}

}  // namespace medcc::testbed
