// The analytical cost/time components of Section III-A (Eqs. 1-7).
//
// Execution:      T(E_ij) = WL_i / VP_j                 (Eq. 6)
//                 C(E_ij) = CV_j * T'(E_ij)             (Eq. 7)
// Data transfer:  T(R_ij) = DS_ij / BW'_pq + d'_pq      (Eq. 5)
//                 C(R_ij) = CR * DS_ij                  (Eq. 4)
// Full program:   C_ij = C(I_j) + C(E_ij) + C(R_i) + C(S_i)   (Eq. 1)
//                 T_ij = T(I_j) + T(E_ij) + T(R_i)            (Eq. 2)
//
// The MED-CC evaluation targets a single datacenter, so CR = 0 and the
// network parameters default to "free and instant"; the simulator and the
// transfer-sensitivity ablation set them explicitly.
#pragma once

#include "cloud/billing.hpp"
#include "cloud/vm_type.hpp"

namespace medcc::cloud {

/// Shared-storage network parameters of the virtual resource graph.
struct NetworkModel {
  /// Virtual-link bandwidth BW' (data units per time unit);
  /// infinity models the paper's negligible intra-cloud transfers.
  double bandwidth = 0.0;  // 0 means "infinite"
  double link_delay = 0.0; ///< d'_pq
  double transfer_cost_rate = 0.0;  ///< CR, currency per data unit

  [[nodiscard]] bool instantaneous() const {
    return bandwidth <= 0.0 && link_delay <= 0.0;
  }
};

/// VM lifecycle parameters (initialization and storage, Eqs. 1-2).
struct VmLifecycleModel {
  double startup_time = 0.0;   ///< T(I_j)
  double startup_cost = 0.0;   ///< C(I_j)
  double storage_cost = 0.0;   ///< C(S_i) per module
};

/// T(E_ij) = WL_i / VP_j.
[[nodiscard]] double execution_time(double workload, const VmType& vm);

/// C(E_ij) = CV_j * T'(E_ij).
[[nodiscard]] double execution_cost(double execution_time, const VmType& vm,
                                    const BillingPolicy& billing);

/// T(R_ij) = DS_ij / BW + d (0 when the network is instantaneous).
[[nodiscard]] double transfer_time(double data_size, const NetworkModel& net);

/// C(R_ij) = CR * DS_ij.
[[nodiscard]] double transfer_cost(double data_size, const NetworkModel& net);

/// Eq. 2: full wall-time of running one program on a fresh VM.
[[nodiscard]] double program_time(double workload, double total_io_data,
                                  const VmType& vm, const NetworkModel& net,
                                  const VmLifecycleModel& lifecycle);

/// Eq. 1: full financial cost of running one program on a fresh VM.
[[nodiscard]] double program_cost(double workload, double total_io_data,
                                  const VmType& vm, const NetworkModel& net,
                                  const VmLifecycleModel& lifecycle,
                                  const BillingPolicy& billing);

}  // namespace medcc::cloud
