#include "cloud/cost_model.hpp"

namespace medcc::cloud {

double execution_time(double workload, const VmType& vm) {
  if (workload < 0.0) throw InvalidArgument("execution_time: negative workload");
  return workload / vm.processing_power;
}

double execution_cost(double execution_time, const VmType& vm,
                      const BillingPolicy& billing) {
  return billing.cost(execution_time, vm.cost_rate);
}

double transfer_time(double data_size, const NetworkModel& net) {
  if (data_size < 0.0) throw InvalidArgument("transfer_time: negative data");
  if (data_size == 0.0) return 0.0;
  if (net.instantaneous()) return 0.0;
  const double wire = net.bandwidth > 0.0 ? data_size / net.bandwidth : 0.0;
  return wire + net.link_delay;
}

double transfer_cost(double data_size, const NetworkModel& net) {
  if (data_size < 0.0) throw InvalidArgument("transfer_cost: negative data");
  return net.transfer_cost_rate * data_size;
}

double program_time(double workload, double total_io_data, const VmType& vm,
                    const NetworkModel& net,
                    const VmLifecycleModel& lifecycle) {
  return lifecycle.startup_time + execution_time(workload, vm) +
         transfer_time(total_io_data, net);
}

double program_cost(double workload, double total_io_data, const VmType& vm,
                    const NetworkModel& net,
                    const VmLifecycleModel& lifecycle,
                    const BillingPolicy& billing) {
  return lifecycle.startup_cost +
         execution_cost(execution_time(workload, vm), vm, billing) +
         transfer_cost(total_io_data, net) + lifecycle.storage_cost;
}

}  // namespace medcc::cloud
