// The instance-hour billing model (Section III-A): provisioned time is
// rounded up to whole billing quanta, "as in the case of EC2". The paper's
// numerical example bills in hours (quantum = 1 time unit = 1 hour); the
// WRF testbed bills per second (quantum = 1 time unit = 1 second). Both
// reduce to cost = CV_j * ceil(T), which is quantum = 1 in the instance's
// native time unit.
#pragma once

#include "util/error.hpp"

namespace medcc::cloud {

class BillingPolicy {
public:
  /// `quantum` is the billable granule in the instance's time unit.
  explicit BillingPolicy(double quantum = 1.0) : quantum_(quantum) {
    if (quantum <= 0.0)
      throw InvalidArgument("BillingPolicy: quantum must be positive");
  }

  /// The paper's default: round up to whole time units.
  [[nodiscard]] static BillingPolicy per_unit_time() {
    return BillingPolicy(1.0);
  }

  /// Effectively no rounding (for ablation A2).
  [[nodiscard]] static BillingPolicy continuous() {
    return BillingPolicy(1e-9);
  }

  [[nodiscard]] double quantum() const { return quantum_; }

  /// T'(E_ij): duration rounded up to whole quanta. Durations that already
  /// sit on a quantum boundary (within fp tolerance) are not rounded up --
  /// Table VI's 7.0 s module bills 7 s, not 8 s.
  [[nodiscard]] double billed_time(double duration) const;

  /// C(E_ij) = CV * T'(E_ij)  (Eq. 7).
  [[nodiscard]] double cost(double duration, double rate_per_unit) const {
    return rate_per_unit * billed_time(duration);
  }

private:
  double quantum_;
};

}  // namespace medcc::cloud
