#include "cloud/billing.hpp"

#include <cmath>

namespace medcc::cloud {

double BillingPolicy::billed_time(double duration) const {
  if (duration < 0.0)
    throw InvalidArgument("BillingPolicy: negative duration");
  if (duration == 0.0) return 0.0;
  const double quanta = duration / quantum_;
  // Tolerate fp noise so integral durations are not bumped a full quantum.
  const double rounded = std::ceil(quanta - 1e-9);
  return std::max(1.0, rounded) * quantum_;
}

}  // namespace medcc::cloud
