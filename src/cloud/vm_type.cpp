#include "cloud/vm_type.hpp"

#include <algorithm>
#include <set>

namespace medcc::cloud {

VmCatalog::VmCatalog(std::vector<VmType> types) : types_(std::move(types)) {
  if (types_.empty())
    throw InvalidArgument("VmCatalog: at least one VM type required");
  for (const auto& t : types_) {
    if (t.processing_power <= 0.0)
      throw InvalidArgument("VmCatalog: non-positive processing power for " +
                            t.name);
    if (t.cost_rate < 0.0)
      throw InvalidArgument("VmCatalog: negative cost rate for " + t.name);
  }
}

std::size_t VmCatalog::fastest_index() const {
  MEDCC_EXPECTS(!types_.empty());
  std::size_t best = 0;
  for (std::size_t j = 1; j < types_.size(); ++j) {
    if (types_[j].processing_power > types_[best].processing_power ||
        (types_[j].processing_power == types_[best].processing_power &&
         types_[j].cost_rate < types_[best].cost_rate))
      best = j;
  }
  return best;
}

std::size_t VmCatalog::cheapest_rate_index() const {
  MEDCC_EXPECTS(!types_.empty());
  std::size_t best = 0;
  for (std::size_t j = 1; j < types_.size(); ++j) {
    if (types_[j].cost_rate < types_[best].cost_rate ||
        // Exact tie-break on catalog constants, not on arithmetic
        // results.  // medcc-lint: allow(float-eq)
        (types_[j].cost_rate == types_[best].cost_rate &&  // medcc-lint: allow(float-eq)
         types_[j].processing_power > types_[best].processing_power))
      best = j;
  }
  return best;
}

VmCatalog example_catalog() {
  return VmCatalog({{"VT1", 3.0, 1.0}, {"VT2", 15.0, 4.0}, {"VT3", 30.0, 8.0}});
}

VmCatalog wrf_catalog() {
  // Table V: one 0.73 GHz core, one 2.93 GHz core, two 2.93 GHz cores;
  // module programs are single-threaded pipelines, so VT3's benefit shows
  // mainly in the measured matrix, but the catalog models peak power.
  return VmCatalog(
      {{"VT1", 0.73, 0.1}, {"VT2", 2.93, 0.4}, {"VT3", 5.86, 0.8}});
}

VmCatalog linear_catalog(const std::vector<double>& units, double base_power,
                         double base_price) {
  if (units.empty())
    throw InvalidArgument("linear_catalog: empty unit list");
  if (base_power <= 0.0 || base_price < 0.0)
    throw InvalidArgument("linear_catalog: bad base power/price");
  std::vector<VmType> types;
  types.reserve(units.size());
  for (std::size_t j = 0; j < units.size(); ++j) {
    if (units[j] <= 0.0)
      throw InvalidArgument("linear_catalog: non-positive unit count");
    types.push_back(VmType{"VT" + std::to_string(j + 1),
                           units[j] * base_power, units[j] * base_price});
  }
  return VmCatalog(std::move(types));
}

VmCatalog random_linear_catalog(std::size_t n, std::size_t max_units,
                                util::Prng& rng, double base_power,
                                double base_price, double efficiency) {
  if (n == 0) throw InvalidArgument("random_linear_catalog: n must be >= 1");
  if (max_units < n)
    throw InvalidArgument(
        "random_linear_catalog: need max_units >= n for distinct unit counts");
  if (efficiency < 0.0)
    throw InvalidArgument("random_linear_catalog: negative efficiency");
  std::set<std::size_t> chosen;
  // Always include the single-unit baseline type so every catalog has a
  // cheap option; the remaining types are distinct random unit counts.
  chosen.insert(1);
  while (chosen.size() < n) {
    chosen.insert(static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(max_units))));
  }
  std::vector<VmType> types;
  std::size_t j = 0;
  for (std::size_t u : chosen) {
    const auto units = static_cast<double>(u);
    const double scale = 1.0 + efficiency * (1.0 - 1.0 / units);
    types.push_back(VmType{"VT" + std::to_string(++j),
                           units * base_power * scale, units * base_price});
  }
  return VmCatalog(std::move(types));
}

}  // namespace medcc::cloud
