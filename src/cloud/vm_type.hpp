// VM types and catalogs (Section III-B): each type VT_j = {VP_j, CV_j}
// bundles the overall processing power and the per-unit-time charging rate.
#pragma once

#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/prng.hpp"

namespace medcc::cloud {

/// One virtual machine type.
struct VmType {
  std::string name;
  double processing_power = 1.0;  ///< VP_j: work units per unit time
  double cost_rate = 1.0;         ///< CV_j: currency per unit time
};

/// An ordered set of available VM types VT = {VT_0 .. VT_{n-1}}.
class VmCatalog {
public:
  VmCatalog() = default;
  explicit VmCatalog(std::vector<VmType> types);

  [[nodiscard]] std::size_t size() const { return types_.size(); }
  [[nodiscard]] bool empty() const { return types_.empty(); }
  [[nodiscard]] const VmType& type(std::size_t j) const {
    MEDCC_EXPECTS(j < types_.size());
    return types_[j];
  }
  [[nodiscard]] const std::vector<VmType>& types() const { return types_; }

  /// Index of the most powerful type (ties -> lowest rate).
  [[nodiscard]] std::size_t fastest_index() const;
  /// Index of the cheapest-rate type (ties -> highest power).
  [[nodiscard]] std::size_t cheapest_rate_index() const;

private:
  std::vector<VmType> types_;
};

/// Table I of the paper: VP {3, 15, 30}, CV {1, 4, 8}.
[[nodiscard]] VmCatalog example_catalog();

/// Table V of the paper (WRF testbed): CPU {0.73, 2.93, 5.86} GHz,
/// CV {0.1, 0.4, 0.8} per second. Note VT3 is 2x2.93 GHz; the paper prices
/// linearly in processing units.
[[nodiscard]] VmCatalog wrf_catalog();

/// EC2-style linear pricing (Section VI-A): type j has `units[j]` base
/// processing units; VP = units*base_power, CV = units*base_price.
[[nodiscard]] VmCatalog linear_catalog(const std::vector<double>& units,
                                       double base_power = 1.0,
                                       double base_price = 1.0);

/// Random linear catalog for simulation campaigns: n types with strictly
/// increasing integer unit counts drawn from [1, max_units]. The price is
/// linear in the unit count (the paper's EC2-style rule); the processing
/// power is units * base_power * (1 + efficiency * (1 - 1/units)), i.e.
/// larger types get up to `efficiency` more power per priced unit -- the
/// economies of scale visible in the paper's own Table I, where VP/unit
/// is 3.0 for VT1 but 3.75 for VT2/VT3. efficiency = 0 gives strictly
/// proportional power.
[[nodiscard]] VmCatalog random_linear_catalog(std::size_t n,
                                              std::size_t max_units,
                                              util::Prng& rng,
                                              double base_power = 1.0,
                                              double base_price = 1.0,
                                              double efficiency = 0.0);

}  // namespace medcc::cloud
