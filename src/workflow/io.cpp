#include "workflow/io.hpp"

#include <cctype>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

namespace medcc::workflow {
namespace {

[[noreturn]] void parse_error(std::size_t line, const std::string& message) {
  std::ostringstream os;
  os << "parse error at line " << line << ": " << message;
  throw InvalidArgument(os.str());
}

/// Splits a line into whitespace-separated tokens.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string token;
  while (is >> token) tokens.push_back(token);
  return tokens;
}

double parse_number(const std::string& token, std::size_t line) {
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(token, &consumed);
  } catch (const std::exception&) {
    parse_error(line, "expected a number, got '" + token + "'");
  }
  if (consumed != token.size())
    parse_error(line, "trailing characters in number '" + token + "'");
  return value;
}

/// Module/type names with whitespace would break the format; reject them
/// at serialization time.
void check_name(const std::string& name) {
  if (name.empty()) throw InvalidArgument("io: empty name");
  for (char c : name)
    if (std::isspace(static_cast<unsigned char>(c)))
      throw InvalidArgument("io: name '" + name + "' contains whitespace");
}

}  // namespace

std::string to_text(const Workflow& wf) {
  std::ostringstream os;
  os.precision(17);  // round-trip exact doubles
  os << "workflow v1\n";
  for (NodeId i = 0; i < wf.module_count(); ++i) {
    const auto& m = wf.module(i);
    check_name(m.name);
    if (m.is_fixed())
      os << "module " << m.name << " fixed " << *m.fixed_time << '\n';
    else
      os << "module " << m.name << " workload " << m.workload << '\n';
  }
  for (dag::EdgeId e = 0; e < wf.graph().edge_count(); ++e) {
    const auto& edge = wf.graph().edge(e);
    os << "edge " << wf.module(edge.src).name << ' '
       << wf.module(edge.dst).name;
    if (wf.data_size(e) != 0.0) os << " data " << wf.data_size(e);
    os << '\n';
  }
  return os.str();
}

Workflow workflow_from_text(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  std::size_t line_no = 0;
  bool header_seen = false;
  Workflow wf;
  std::map<std::string, NodeId> by_name;

  while (std::getline(is, line)) {
    ++line_no;
    const auto tokens = tokenize(line);
    if (tokens.empty() || tokens.front().front() == '#') continue;
    if (!header_seen) {
      if (tokens.size() != 2 || tokens[0] != "workflow" || tokens[1] != "v1")
        parse_error(line_no, "expected header 'workflow v1'");
      header_seen = true;
      continue;
    }
    if (tokens[0] == "module") {
      if (tokens.size() != 4)
        parse_error(line_no, "expected 'module <name> workload|fixed <x>'");
      const auto& name = tokens[1];
      if (by_name.count(name))
        parse_error(line_no, "duplicate module '" + name + "'");
      const double value = parse_number(tokens[3], line_no);
      NodeId id;
      if (tokens[2] == "workload")
        id = wf.add_module(name, value);
      else if (tokens[2] == "fixed")
        id = wf.add_fixed_module(name, value);
      else
        parse_error(line_no, "expected 'workload' or 'fixed', got '" +
                                 tokens[2] + "'");
      by_name.emplace(name, id);
    } else if (tokens[0] == "edge") {
      if (tokens.size() != 3 && tokens.size() != 5)
        parse_error(line_no, "expected 'edge <src> <dst> [data <d>]'");
      const auto src = by_name.find(tokens[1]);
      if (src == by_name.end())
        parse_error(line_no, "unknown module '" + tokens[1] + "'");
      const auto dst = by_name.find(tokens[2]);
      if (dst == by_name.end())
        parse_error(line_no, "unknown module '" + tokens[2] + "'");
      double data = 0.0;
      if (tokens.size() == 5) {
        if (tokens[3] != "data")
          parse_error(line_no, "expected 'data', got '" + tokens[3] + "'");
        data = parse_number(tokens[4], line_no);
      }
      try {
        wf.add_dependency(src->second, dst->second, data);
      } catch (const Error& e) {
        parse_error(line_no, e.what());
      }
    } else {
      parse_error(line_no, "unknown directive '" + tokens[0] + "'");
    }
  }
  if (!header_seen) throw InvalidArgument("io: missing 'workflow v1' header");
  const auto report = wf.validate();
  if (!report.ok()) {
    std::ostringstream os;
    os << "parsed workflow is invalid:";
    for (const auto& p : report.problems) os << ' ' << p << ';';
    throw InvalidArgument(os.str());
  }
  return wf;
}

std::string to_text(const cloud::VmCatalog& catalog) {
  std::ostringstream os;
  os.precision(17);  // round-trip exact doubles
  os << "catalog v1\n";
  for (std::size_t j = 0; j < catalog.size(); ++j) {
    const auto& t = catalog.type(j);
    check_name(t.name);
    os << "type " << t.name << " power " << t.processing_power << " rate "
       << t.cost_rate << '\n';
  }
  return os.str();
}

cloud::VmCatalog catalog_from_text(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  std::size_t line_no = 0;
  bool header_seen = false;
  std::vector<cloud::VmType> types;

  while (std::getline(is, line)) {
    ++line_no;
    const auto tokens = tokenize(line);
    if (tokens.empty() || tokens.front().front() == '#') continue;
    if (!header_seen) {
      if (tokens.size() != 2 || tokens[0] != "catalog" || tokens[1] != "v1")
        parse_error(line_no, "expected header 'catalog v1'");
      header_seen = true;
      continue;
    }
    if (tokens[0] != "type" || tokens.size() != 6 || tokens[2] != "power" ||
        tokens[4] != "rate")
      parse_error(line_no, "expected 'type <name> power <VP> rate <CV>'");
    types.push_back(cloud::VmType{tokens[1],
                                  parse_number(tokens[3], line_no),
                                  parse_number(tokens[5], line_no)});
  }
  if (!header_seen) throw InvalidArgument("io: missing 'catalog v1' header");
  return cloud::VmCatalog(std::move(types));
}

namespace {

std::string read_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw Error("io: cannot open '" + path + "' for reading");
  std::ostringstream os;
  os << file.rdbuf();
  return os.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream file(path);
  if (!file) throw Error("io: cannot open '" + path + "' for writing");
  file << content;
  if (!file) throw Error("io: write to '" + path + "' failed");
}

}  // namespace

Workflow load_workflow(const std::string& path) {
  return workflow_from_text(read_file(path));
}

void save_workflow(const Workflow& wf, const std::string& path) {
  write_file(path, to_text(wf));
}

cloud::VmCatalog load_catalog(const std::string& path) {
  return catalog_from_text(read_file(path));
}

void save_catalog(const cloud::VmCatalog& catalog, const std::string& path) {
  write_file(path, to_text(catalog));
}

}  // namespace medcc::workflow
