#include "workflow/dax.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <vector>

namespace medcc::workflow {
namespace {

/// One parsed XML-subset tag.
struct Tag {
  std::string name;
  std::map<std::string, std::string> attributes;
  bool closing = false;       ///< </name>
  bool self_closing = false;  ///< <name ... />
};

/// Pulls the next tag from `xml` starting at `pos`; advances `pos` past
/// it. Returns false at end of input. Comments and declarations are
/// skipped. Text between tags is ignored (the DAX subset carries no data
/// in text nodes).
bool next_tag(const std::string& xml, std::size_t& pos, Tag& tag) {
  for (;;) {
    const auto open = xml.find('<', pos);
    if (open == std::string::npos) return false;
    // Comments and processing instructions / declarations.
    if (xml.compare(open, 4, "<!--") == 0) {
      const auto end = xml.find("-->", open + 4);
      if (end == std::string::npos)
        throw InvalidArgument("dax: unterminated comment");
      pos = end + 3;
      continue;
    }
    if (open + 1 < xml.size() && (xml[open + 1] == '?' || xml[open + 1] == '!')) {
      const auto end = xml.find('>', open);
      if (end == std::string::npos)
        throw InvalidArgument("dax: unterminated declaration");
      pos = end + 1;
      continue;
    }
    const auto close = xml.find('>', open);
    if (close == std::string::npos)
      throw InvalidArgument("dax: unterminated tag");
    std::string body = xml.substr(open + 1, close - open - 1);
    pos = close + 1;

    tag = Tag{};
    if (!body.empty() && body.front() == '/') {
      tag.closing = true;
      body.erase(body.begin());
    }
    if (!body.empty() && body.back() == '/') {
      tag.self_closing = true;
      body.pop_back();
    }
    // Tag name.
    std::size_t cursor = 0;
    while (cursor < body.size() &&
           !std::isspace(static_cast<unsigned char>(body[cursor])))
      ++cursor;
    tag.name = body.substr(0, cursor);
    if (tag.name.empty()) throw InvalidArgument("dax: empty tag name");
    // Attributes: name="value" or name='value'.
    while (cursor < body.size()) {
      while (cursor < body.size() &&
             std::isspace(static_cast<unsigned char>(body[cursor])))
        ++cursor;
      if (cursor >= body.size()) break;
      const auto eq = body.find('=', cursor);
      if (eq == std::string::npos)
        throw InvalidArgument("dax: attribute without value in <" +
                              tag.name + ">");
      std::string key = body.substr(cursor, eq - cursor);
      while (!key.empty() &&
             std::isspace(static_cast<unsigned char>(key.back())))
        key.pop_back();
      std::size_t vstart = eq + 1;
      while (vstart < body.size() &&
             std::isspace(static_cast<unsigned char>(body[vstart])))
        ++vstart;
      if (vstart >= body.size() ||
          (body[vstart] != '"' && body[vstart] != '\''))
        throw InvalidArgument("dax: unquoted attribute value in <" +
                              tag.name + ">");
      const char quote = body[vstart];
      const auto vend = body.find(quote, vstart + 1);
      if (vend == std::string::npos)
        throw InvalidArgument("dax: unterminated attribute value in <" +
                              tag.name + ">");
      tag.attributes[key] = body.substr(vstart + 1, vend - vstart - 1);
      cursor = vend + 1;
    }
    return true;
  }
}

double parse_double(const std::map<std::string, std::string>& attrs,
                    const std::string& key, double fallback) {
  const auto it = attrs.find(key);
  if (it == attrs.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw InvalidArgument("dax: bad numeric attribute " + key + "='" +
                          it->second + "'");
  }
}

struct DaxJob {
  std::string id;
  std::string name;
  double runtime = 0.0;
  std::map<std::string, double> inputs;   ///< file -> bytes
  std::map<std::string, double> outputs;  ///< file -> bytes
};

}  // namespace

Workflow workflow_from_dax(const std::string& xml, const DaxOptions& options) {
  if (options.reference_power <= 0.0 || options.bytes_per_data_unit <= 0.0)
    throw InvalidArgument("dax: options must be positive");

  std::vector<DaxJob> jobs;
  std::map<std::string, std::size_t> by_id;
  std::vector<std::pair<std::size_t, std::size_t>> edges;  // parent, child

  std::size_t pos = 0;
  Tag tag;
  DaxJob* current_job = nullptr;
  std::size_t current_child = static_cast<std::size_t>(-1);
  std::vector<std::pair<std::size_t, std::size_t>> seen_edges;

  while (next_tag(xml, pos, tag)) {
    if (tag.name == "job") {
      if (tag.closing) {
        current_job = nullptr;
        continue;
      }
      const auto it = tag.attributes.find("id");
      if (it == tag.attributes.end())
        throw InvalidArgument("dax: <job> without id");
      if (by_id.count(it->second))
        throw InvalidArgument("dax: duplicate job id " + it->second);
      DaxJob job;
      job.id = it->second;
      const auto name_it = tag.attributes.find("name");
      job.name = name_it == tag.attributes.end() ? job.id
                                                 : name_it->second + "_" +
                                                       job.id;
      job.runtime = parse_double(tag.attributes, "runtime", 0.0);
      by_id.emplace(job.id, jobs.size());
      jobs.push_back(std::move(job));
      current_job = tag.self_closing ? nullptr : &jobs.back();
    } else if (tag.name == "uses") {
      if (tag.closing || current_job == nullptr) continue;
      const auto file_it = tag.attributes.find("file");
      if (file_it == tag.attributes.end()) continue;  // tolerated
      const double bytes = parse_double(tag.attributes, "size", 0.0);
      const auto link_it = tag.attributes.find("link");
      const std::string link =
          link_it == tag.attributes.end() ? "input" : link_it->second;
      if (link == "output")
        current_job->outputs[file_it->second] = bytes;
      else
        current_job->inputs[file_it->second] = bytes;
    } else if (tag.name == "child") {
      if (tag.closing) {
        current_child = static_cast<std::size_t>(-1);
        continue;
      }
      const auto it = tag.attributes.find("ref");
      if (it == tag.attributes.end())
        throw InvalidArgument("dax: <child> without ref");
      const auto job_it = by_id.find(it->second);
      if (job_it == by_id.end())
        throw InvalidArgument("dax: <child> references unknown job " +
                              it->second);
      current_child = job_it->second;
    } else if (tag.name == "parent") {
      if (tag.closing) continue;
      if (current_child == static_cast<std::size_t>(-1))
        throw InvalidArgument("dax: <parent> outside <child>");
      const auto it = tag.attributes.find("ref");
      if (it == tag.attributes.end())
        throw InvalidArgument("dax: <parent> without ref");
      const auto job_it = by_id.find(it->second);
      if (job_it == by_id.end())
        throw InvalidArgument("dax: <parent> references unknown job " +
                              it->second);
      edges.emplace_back(job_it->second, current_child);
    }
    // Everything else (<adag>, <argument>, text) is ignored.
  }
  if (jobs.empty()) throw InvalidArgument("dax: no <job> elements found");

  Workflow wf;
  std::vector<NodeId> node_of(jobs.size());
  for (std::size_t k = 0; k < jobs.size(); ++k)
    node_of[k] = wf.add_module(jobs[k].name,
                               jobs[k].runtime * options.reference_power);

  for (const auto& [parent, child] : edges) {
    // Edge data: bytes of the parent's output files the child reads.
    double bytes = 0.0;
    for (const auto& [file, size] : jobs[parent].outputs) {
      const auto it = jobs[child].inputs.find(file);
      if (it != jobs[child].inputs.end())
        bytes += std::max(size, it->second);
    }
    wf.add_dependency(node_of[parent], node_of[child],
                      bytes / options.bytes_per_data_unit);
  }

  if (options.add_staging_endpoints) {
    const auto sources = wf.graph().sources();
    const auto sinks = wf.graph().sinks();
    if (sources.size() > 1 || sinks.size() > 1 ||
        wf.module_count() == 1) {
      const NodeId entry = wf.add_fixed_module("stage-in", 0.0);
      const NodeId exit = wf.add_fixed_module("stage-out", 0.0);
      for (NodeId s : sources) wf.add_dependency(entry, s);
      for (NodeId s : sinks) wf.add_dependency(s, exit);
    }
  }
  wf.ensure_valid();
  return wf;
}

Workflow load_dax(const std::string& path, const DaxOptions& options) {
  std::ifstream file(path);
  if (!file) throw Error("dax: cannot open '" + path + "'");
  std::ostringstream os;
  os << file.rdbuf();
  return workflow_from_dax(os.str(), options);
}

}  // namespace medcc::workflow
