#include "workflow/wrf.hpp"

namespace medcc::workflow {

const std::array<std::array<double, 6>, 3>& wrf_te_matrix() {
  // Table VI, seconds: rows VT1..VT3, columns w1..w6.
  static const std::array<std::array<double, 6>, 3> te = {{
      {{43.8, 22.7, 13.8, 47.0, 752.6, 377.8}},
      {{19.2, 9.6, 7.0, 30.0, 241.6, 123.1}},
      {{12.0, 10.1, 7.2, 19.4, 143.2, 119.7}},
  }};
  return te;
}

Workflow wrf_pipeline() {
  // Representative single-domain run; workloads in VT1-seconds scaled to
  // the Table VI magnitudes (ungrib+metgrid light, wrf dominant).
  Workflow wf;
  const NodeId entry = wf.add_fixed_module("input", 0.0);
  const NodeId geogrid = wf.add_module("geogrid", 12.0);
  const NodeId ungrib = wf.add_module("ungrib", 10.0);
  const NodeId metgrid = wf.add_module("metgrid", 8.0);
  const NodeId real = wf.add_module("real", 35.0);
  const NodeId wrf = wf.add_module("wrf", 550.0);
  const NodeId arwpost = wf.add_module("ARWpost", 120.0);
  const NodeId grads = wf.add_module("GrADS", 25.0);
  const NodeId exit = wf.add_fixed_module("output", 0.0);
  wf.add_dependency(entry, geogrid, 2.0);
  wf.add_dependency(entry, ungrib, 5.0);
  wf.add_dependency(geogrid, metgrid, 2.0);
  wf.add_dependency(ungrib, metgrid, 4.0);
  wf.add_dependency(metgrid, real, 4.0);
  wf.add_dependency(real, wrf, 6.0);
  wf.add_dependency(wrf, arwpost, 8.0);
  wf.add_dependency(arwpost, grads, 2.0);
  wf.add_dependency(grads, exit, 1.0);
  wf.ensure_valid();
  return wf;
}

Workflow wrf_experiment_ungrouped() {
  // Fig. 13: three pipelines, each ungrib -> metgrid -> real -> wrf ->
  // ARWpost, sharing one geogrid (static terrestrial data is domain-wide),
  // between common start and end modules.
  Workflow wf;
  const NodeId start = wf.add_fixed_module("start", 0.0);
  const NodeId geogrid = wf.add_module("geogrid", 12.0);
  wf.add_dependency(start, geogrid, 2.0);
  const NodeId end = wf.add_fixed_module("end", 0.0);
  for (int p = 0; p < 3; ++p) {
    const std::string sfx = "_" + std::to_string(p + 1);
    const NodeId ungrib = wf.add_module("ungrib" + sfx, 10.0);
    const NodeId metgrid = wf.add_module("metgrid" + sfx, 8.0);
    const NodeId real = wf.add_module("real" + sfx, 35.0);
    const NodeId wrf = wf.add_module("wrf" + sfx, 550.0);
    const NodeId arwpost = wf.add_module("ARWpost" + sfx, 120.0);
    wf.add_dependency(start, ungrib, 5.0);
    wf.add_dependency(ungrib, metgrid, 4.0);
    wf.add_dependency(geogrid, metgrid, 2.0);
    wf.add_dependency(metgrid, real, 4.0);
    wf.add_dependency(real, wrf, 6.0);
    wf.add_dependency(wrf, arwpost, 8.0);
    wf.add_dependency(arwpost, end, 2.0);
  }
  wf.ensure_valid();
  return wf;
}

Workflow wrf_experiment_grouped() {
  // Fig. 14: aggregates w1..w6; precedence reconstructed from Table VII
  // (see header comment). Workloads are VT1-seconds: WL_i = TE[0][i] * VP_1
  // with VP_1 = 1 processing unit, so the WL/VP model reproduces the VT1
  // column of Table VI exactly.
  const auto& te = wrf_te_matrix();
  Workflow wf;
  const NodeId w0 = wf.add_fixed_module("w0", 0.0);
  std::array<NodeId, 6> w{};
  for (std::size_t i = 0; i < 6; ++i)
    w[i] = wf.add_module("w" + std::to_string(i + 1), te[0][i]);
  const NodeId w7 = wf.add_fixed_module("w7", 0.0);
  wf.add_dependency(w0, w[0]);
  wf.add_dependency(w0, w[1]);
  wf.add_dependency(w0, w[2]);
  wf.add_dependency(w[0], w[3]);
  wf.add_dependency(w[1], w[3]);
  wf.add_dependency(w[2], w[3]);
  wf.add_dependency(w[3], w[4]);
  wf.add_dependency(w[3], w[5]);
  wf.add_dependency(w[4], w7);
  wf.add_dependency(w[5], w7);
  wf.ensure_valid();
  return wf;
}

}  // namespace medcc::workflow
