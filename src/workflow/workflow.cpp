#include "workflow/workflow.hpp"

#include <sstream>

namespace medcc::workflow {

NodeId Workflow::add_module(std::string name, double workload) {
  if (workload < 0.0)
    throw InvalidArgument("Workflow: negative workload for " + name);
  const NodeId id = graph_.add_node();
  modules_.push_back(Module{std::move(name), workload, std::nullopt});
  return id;
}

NodeId Workflow::add_fixed_module(std::string name, double duration) {
  if (duration < 0.0)
    throw InvalidArgument("Workflow: negative duration for " + name);
  const NodeId id = graph_.add_node();
  modules_.push_back(Module{std::move(name), 0.0, duration});
  return id;
}

EdgeId Workflow::add_dependency(NodeId src, NodeId dst, double data_size) {
  if (data_size < 0.0)
    throw InvalidArgument("Workflow: negative data size");
  const EdgeId id = graph_.add_edge(src, dst);
  data_sizes_.push_back(data_size);
  return id;
}

std::vector<NodeId> Workflow::computing_modules() const {
  std::vector<NodeId> result;
  for (NodeId v = 0; v < modules_.size(); ++v)
    if (!modules_[v].is_fixed()) result.push_back(v);
  return result;
}

std::size_t Workflow::computing_module_count() const {
  std::size_t count = 0;
  for (const auto& m : modules_)
    if (!m.is_fixed()) ++count;
  return count;
}

NodeId Workflow::entry() const {
  const auto srcs = graph_.sources();
  MEDCC_EXPECTS(srcs.size() == 1);
  return srcs.front();
}

NodeId Workflow::exit() const {
  const auto snks = graph_.sinks();
  MEDCC_EXPECTS(snks.size() == 1);
  return snks.front();
}

ValidationReport Workflow::validate() const {
  ValidationReport report;
  if (modules_.empty()) {
    report.problems.push_back("workflow has no modules");
    return report;
  }
  if (!graph_.is_acyclic())
    report.problems.push_back("dependency graph contains a cycle");

  const auto srcs = graph_.sources();
  const auto snks = graph_.sinks();
  if (srcs.size() != 1) {
    std::ostringstream os;
    os << "expected exactly one entry module, found " << srcs.size();
    report.problems.push_back(os.str());
  }
  if (snks.size() != 1) {
    std::ostringstream os;
    os << "expected exactly one exit module, found " << snks.size();
    report.problems.push_back(os.str());
  }
  if (srcs.size() == 1 && snks.size() == 1 && graph_.is_acyclic()) {
    const auto from_entry = graph_.reachable_set(srcs.front());
    for (NodeId v = 0; v < modules_.size(); ++v) {
      if (!from_entry[v]) {
        report.problems.push_back("module " + modules_[v].name +
                                  " unreachable from entry");
      } else if (v != snks.front() && !graph_.reachable(v, snks.front())) {
        report.problems.push_back("module " + modules_[v].name +
                                  " cannot reach exit");
      }
    }
  }
  return report;
}

void Workflow::ensure_valid() const {
  const auto report = validate();
  if (report.ok()) return;
  std::ostringstream os;
  os << "invalid workflow:";
  for (const auto& p : report.problems) os << ' ' << p << ';';
  throw InvalidArgument(os.str());
}

double Workflow::total_workload() const {
  double total = 0.0;
  for (const auto& m : modules_)
    if (!m.is_fixed()) total += m.workload;
  return total;
}

std::vector<std::string> Workflow::module_names() const {
  std::vector<std::string> names;
  names.reserve(modules_.size());
  for (const auto& m : modules_) names.push_back(m.name);
  return names;
}

}  // namespace medcc::workflow
