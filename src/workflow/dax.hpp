// Importer for Pegasus DAX workflow descriptions -- the XML format the
// scientific-workflow community publishes real traces in (Montage,
// CyberShake, Epigenomics, ...). Parsing a published DAX yields a Workflow
// whose module workloads come from the jobs' reference runtimes and whose
// edge data sizes come from the parent-output/child-input file overlap.
//
// The parser accepts the DAX 3.x subset those traces use:
//   <job id="ID00000" name="mProjectPP" runtime="13.59">
//     <uses file="region.hdr" link="input" size="304"/>
//     <uses file="p1.fits"    link="output" size="4222080"/>
//   </job>
//   <child ref="ID00002"> <parent ref="ID00000"/> </child>
// Comments, XML declarations and unknown elements/attributes are ignored.
#pragma once

#include <string>

#include "workflow/workflow.hpp"

namespace medcc::workflow {

struct DaxOptions {
  /// The job `runtime` attribute is seconds on the trace's reference
  /// machine; workload = runtime * reference_power, so that a VM with
  /// VP == reference_power reproduces the reference runtimes.
  double reference_power = 1.0;
  /// File sizes in DAX are bytes; edge data = bytes / bytes_per_data_unit.
  double bytes_per_data_unit = 1e6;  ///< default: data units are MB
  /// Bracket multi-source/multi-sink traces with free staging endpoints
  /// so the result satisfies the paper's single-entry/single-exit model.
  bool add_staging_endpoints = true;
};

/// Parses DAX text. Throws InvalidArgument on malformed XML-subset input,
/// unknown job references, duplicate ids, or invalid structure.
[[nodiscard]] Workflow workflow_from_dax(const std::string& xml,
                                         const DaxOptions& options = {});

/// Reads and parses a .dax file. Throws Error on I/O failure.
[[nodiscard]] Workflow load_dax(const std::string& path,
                                const DaxOptions& options = {});

}  // namespace medcc::workflow
