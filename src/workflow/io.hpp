// Plain-text serialization of workflows and VM catalogs, so instances can
// be authored in files and fed to the CLI (tools/medcc_cli) or exchanged
// between runs. The format is line-oriented and diff-friendly:
//
//   # comments and blank lines are ignored
//   workflow v1
//   module <name> workload <x>
//   module <name> fixed <t>
//   edge <src-name> <dst-name> [data <d>]
//
//   catalog v1
//   type <name> power <VP> rate <CV>
#pragma once

#include <iosfwd>
#include <string>

#include "cloud/vm_type.hpp"
#include "workflow/workflow.hpp"

namespace medcc::workflow {

/// Serializes a workflow in the `workflow v1` format.
[[nodiscard]] std::string to_text(const Workflow& wf);

/// Parses the `workflow v1` format. Throws InvalidArgument with a
/// line-numbered message on malformed input (unknown directives, duplicate
/// or missing module names, bad numbers, structural problems).
[[nodiscard]] Workflow workflow_from_text(const std::string& text);

/// Serializes a VM catalog in the `catalog v1` format.
[[nodiscard]] std::string to_text(const cloud::VmCatalog& catalog);

/// Parses the `catalog v1` format (same error conventions).
[[nodiscard]] cloud::VmCatalog catalog_from_text(const std::string& text);

/// File helpers: read/write whole files; throw Error on I/O failure.
[[nodiscard]] Workflow load_workflow(const std::string& path);
void save_workflow(const Workflow& wf, const std::string& path);
[[nodiscard]] cloud::VmCatalog load_catalog(const std::string& path);
void save_catalog(const cloud::VmCatalog& catalog, const std::string& path);

}  // namespace medcc::workflow
