// The Weather Research and Forecasting (WRF) workflows of Section VI-C.
//
// Fig. 12: one WRF pipeline -- WPS preprocessing (geogrid, ungrib, metgrid),
// the WRF package (real, wrf), and postprocessing (ARWpost, GrADS).
//
// Figs. 13-14: the paper's experiment duplicates three WRF pipelines from
// ungrib through ARWpost and groups the programs into six aggregate modules
// w1..w6 bracketed by start/end modules w0/w7. The exact grouping figure is
// not recoverable from the text, but the aggregate DAG is: the measured MED
// values of Table VII are reproduced (to within the paper's ~1% testbed
// noise) by the precedence structure
//
//     w0 -> {w1, w2, w3} -> w4 -> {w5, w6} -> w7,
//
// which we therefore adopt (derivation in EXPERIMENTS.md).
#pragma once

#include <array>

#include "workflow/workflow.hpp"

namespace medcc::workflow {

/// Execution-time matrix TE of the grouped WRF workflow (Table VI):
/// wrf_te_matrix()[j][i] = seconds for aggregate module w_{i+1} on VM type
/// VT_{j+1} of Table V.
[[nodiscard]] const std::array<std::array<double, 6>, 3>& wrf_te_matrix();

/// One WRF pipeline (Fig. 12): geogrid/ungrib -> metgrid -> real -> wrf ->
/// ARWpost -> GrADS, with representative workloads.
[[nodiscard]] Workflow wrf_pipeline();

/// The ungrouped experiment workflow (Fig. 13): three duplicated WRF
/// pipelines from ungrib to ARWpost between common start/end modules.
[[nodiscard]] Workflow wrf_experiment_ungrouped();

/// The grouped experiment workflow (Fig. 14): aggregates w1..w6 with
/// fixed start/end modules w0/w7 (zero duration, zero cost).
///
/// Module workloads are expressed in "VT1-seconds" (WL_i = TE[VT1][i] *
/// VP_1) so that together with testbed::wrf_catalog() the execution times
/// reproduce Table VI exactly on VT1 and within the catalog's speed ratios
/// on VT2/VT3; schedulers should use the measured-matrix instance from
/// sched::Instance::with_time_matrix for exact Table VI times.
[[nodiscard]] Workflow wrf_experiment_grouped();

}  // namespace medcc::workflow
