// The workflow (task-graph) model of Section III-B.
//
// A Workflow is a DAG of computing modules. Each module w_i carries a
// workload WL_i (abstract work units; execution time on a VM of type j is
// WL_i / VP_j). Each dependency edge l_ij carries a data size DS_ij used by
// the transfer-time model T(R_ij) = DS_ij / BW + d.
//
// The paper brackets every workflow with an entry and an exit module
// representing initial input and final output; those are modelled as
// *fixed-time* modules: they take the same wall time on any VM type and
// incur no cost (the numerical example uses 1 hour each, the WRF
// experiment uses 0).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dag/critical_path.hpp"
#include "dag/graph.hpp"

namespace medcc::workflow {

using dag::EdgeId;
using dag::NodeId;

/// One computing module of the task graph.
struct Module {
  std::string name;
  /// Workload WL_i; meaningful only when fixed_time is empty.
  double workload = 0.0;
  /// When set, the module runs in exactly this long on any VM and is free
  /// of charge (entry/exit modules; paper Section V-B).
  std::optional<double> fixed_time;

  [[nodiscard]] bool is_fixed() const { return fixed_time.has_value(); }
};

/// Validation outcome for a Workflow; empty problems == valid.
struct ValidationReport {
  std::vector<std::string> problems;
  [[nodiscard]] bool ok() const { return problems.empty(); }
};

/// A DAG-structured scientific workflow G_w(V_w, E_w).
class Workflow {
public:
  Workflow() = default;

  /// Adds a computing module with workload `wl` and returns its id.
  NodeId add_module(std::string name, double workload);

  /// Adds a fixed-duration module (used for entry/exit); free of charge.
  NodeId add_fixed_module(std::string name, double duration);

  /// Adds the dependency src->dst transferring `data_size` units.
  EdgeId add_dependency(NodeId src, NodeId dst, double data_size = 0.0);

  [[nodiscard]] const dag::Dag& graph() const { return graph_; }
  [[nodiscard]] std::size_t module_count() const { return modules_.size(); }
  [[nodiscard]] std::size_t dependency_count() const {
    return graph_.edge_count();
  }
  [[nodiscard]] const Module& module(NodeId id) const {
    MEDCC_EXPECTS(id < modules_.size());
    return modules_[id];
  }
  [[nodiscard]] double data_size(EdgeId id) const {
    MEDCC_EXPECTS(id < data_sizes_.size());
    return data_sizes_[id];
  }

  /// Ids of the schedulable (non-fixed) modules, ascending.
  [[nodiscard]] std::vector<NodeId> computing_modules() const;
  [[nodiscard]] std::size_t computing_module_count() const;

  /// The unique source / sink; validate() guarantees uniqueness.
  [[nodiscard]] NodeId entry() const;
  [[nodiscard]] NodeId exit() const;

  /// Structural checks: non-empty, acyclic, exactly one source and one
  /// sink, non-negative workloads/data sizes, every module on some
  /// entry->exit path.
  [[nodiscard]] ValidationReport validate() const;

  /// Throws InvalidArgument when validate() fails.
  void ensure_valid() const;

  /// Sum of all module workloads (fixed modules contribute zero).
  [[nodiscard]] double total_workload() const;

  /// Names for DOT export and tables.
  [[nodiscard]] std::vector<std::string> module_names() const;

private:
  dag::Dag graph_;
  std::vector<Module> modules_;
  std::vector<double> data_sizes_;
};

}  // namespace medcc::workflow
