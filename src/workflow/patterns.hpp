// Structured workflow topologies: the shapes the scientific-workflow
// literature (Pegasus gallery, CloudSim examples) uses as canonical
// benchmarks, plus the paper's own 6-module numerical example.
#pragma once

#include "util/prng.hpp"
#include "workflow/workflow.hpp"

namespace medcc::workflow {

/// Linear pipeline w0 -> w1 -> ... -> w_{m-1}; the MED-CC-Pipeline special
/// case used in the NP-completeness reduction (Section IV).
/// `workloads` supplies WL_i in order; modules >= 1.
[[nodiscard]] Workflow pipeline(std::span<const double> workloads,
                                double data_size = 0.0);

/// Pipeline with m modules and random workloads in [wl_min, wl_max].
[[nodiscard]] Workflow random_pipeline(std::size_t modules, double wl_min,
                                       double wl_max, util::Prng& rng);

/// Fork-join: entry -> `width` parallel branches of `depth` modules -> exit.
/// Workloads drawn uniformly from [wl_min, wl_max].
[[nodiscard]] Workflow fork_join(std::size_t width, std::size_t depth,
                                 double wl_min, double wl_max,
                                 util::Prng& rng);

/// Layered DAG: `layers` ranks of `width` modules; each module feeds a
/// random non-empty subset of the next rank (plus connectivity repairs),
/// bracketed by zero-cost entry/exit modules.
[[nodiscard]] Workflow layered(std::size_t layers, std::size_t width,
                               double wl_min, double wl_max, util::Prng& rng);

/// Montage-like mosaic shape: wide projection rank -> pairwise overlap
/// rank -> concentrating fit/background ranks -> single assembly tail.
/// `tiles` >= 2 controls the width.
[[nodiscard]] Workflow montage_like(std::size_t tiles, util::Prng& rng);

/// Epigenomics-like shape: several independent lanes of a fixed 4-stage
/// per-chunk pipeline that merge into a short global tail.
[[nodiscard]] Workflow epigenomics_like(std::size_t lanes,
                                        std::size_t chunks_per_lane,
                                        util::Prng& rng);

/// CyberShake-like shape: two generator fan-outs feeding `sites` parallel
/// pairs that all reduce into two aggregation modules.
[[nodiscard]] Workflow cybershake_like(std::size_t sites, util::Prng& rng);

/// LIGO-inspiral-like shape: `groups` detector groups, each a fan of
/// template-bank matched filters reduced by a trigger stage, followed by a
/// second filtering fan and a final coincidence test.
[[nodiscard]] Workflow ligo_like(std::size_t groups,
                                 std::size_t templates_per_group,
                                 util::Prng& rng);

/// SIPHT-like shape (sRNA identification): many independent pattern/BLAST
/// searches of uneven size converging into a concatenation and an
/// annotation tail.
[[nodiscard]] Workflow sipht_like(std::size_t searches, util::Prng& rng);

/// The paper's 6-module numerical example (Fig. 4, Tables I-II).
///
/// The original figure with the exact workloads did not survive in the
/// available text, so the instance below was *reconstructed* by searching
/// workloads and topology consistent with every constraint the prose gives
/// (see tools/reverse_engineer_example.cpp and EXPERIMENTS.md): VM types
/// {VP,CV} = {3,1},{15,4},{30,8}; least-cost schedule mapping {w1,w2,w5}
/// to VT2 and {w3,w4,w6} to VT1 at cost 48; fastest schedule cost 64;
/// 1-hour free entry/exit modules; and the Critical-Greedy upgrade
/// sequence w4,w3,w6,w2,w5 with the Table II budget bands.
[[nodiscard]] Workflow example6();

}  // namespace medcc::workflow
