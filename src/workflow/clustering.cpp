#include "workflow/clustering.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <vector>

namespace medcc::workflow {
namespace {

/// Union-find over module ids.
class UnionFind {
public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

private:
  std::vector<std::size_t> parent_;
};

/// Builds the aggregate workflow from a group assignment.
Clustering contract(const Workflow& wf, UnionFind& uf) {
  const std::size_t n = wf.module_count();

  // Dense group ids in order of first appearance along the original ids,
  // which is a valid construction order because contraction preserves a
  // topological numbering of the groups (checked by ensure_valid below).
  std::vector<NodeId> group_of(n);
  std::map<std::size_t, NodeId> dense;
  for (NodeId v = 0; v < n; ++v) {
    const std::size_t root = uf.find(v);
    auto [it, inserted] = dense.emplace(root, dense.size());
    group_of[v] = it->second;
  }
  const std::size_t groups = dense.size();

  std::vector<double> workload(groups, 0.0);
  std::vector<std::optional<double>> fixed(groups);
  std::vector<std::vector<NodeId>> members(groups);
  for (NodeId v = 0; v < n; ++v) {
    const NodeId g = group_of[v];
    members[g].push_back(v);
    const auto& mod = wf.module(v);
    if (mod.is_fixed())
      fixed[g] = fixed[g].value_or(0.0) + *mod.fixed_time;
    else
      workload[g] += mod.workload;
  }

  // Cross-group data flows; parallel edges between the same group pair are
  // summed, intra-group edges are internalized.
  std::map<std::pair<NodeId, NodeId>, double> flows;
  double internalized = 0.0;
  for (dag::EdgeId e = 0; e < wf.graph().edge_count(); ++e) {
    const auto& edge = wf.graph().edge(e);
    const NodeId gs = group_of[edge.src];
    const NodeId gd = group_of[edge.dst];
    if (gs == gd)
      internalized += wf.data_size(e);
    else
      flows[{gs, gd}] += wf.data_size(e);
  }

  Clustering result;
  for (std::size_t g = 0; g < groups; ++g) {
    std::string name = "g" + std::to_string(g);
    if (members[g].size() == 1) name = wf.module(members[g].front()).name;
    if (fixed[g].has_value())
      result.aggregated.add_fixed_module(std::move(name), *fixed[g]);
    else
      result.aggregated.add_module(std::move(name), workload[g]);
  }
  for (const auto& [pair, data] : flows)
    result.aggregated.add_dependency(pair.first, pair.second, data);
  result.aggregated.ensure_valid();
  result.group_of = std::move(group_of);
  result.internalized_data = internalized;
  return result;
}

}  // namespace

Clustering linear_clustering(const Workflow& wf) {
  wf.ensure_valid();
  const auto& g = wf.graph();
  UnionFind uf(wf.module_count());
  for (dag::EdgeId e = 0; e < g.edge_count(); ++e) {
    const auto& edge = g.edge(e);
    if (wf.module(edge.src).is_fixed() || wf.module(edge.dst).is_fixed())
      continue;
    if (g.out_degree(edge.src) == 1 && g.in_degree(edge.dst) == 1)
      uf.unite(edge.src, edge.dst);
  }
  return contract(wf, uf);
}

Clustering transfer_aware_clustering(const Workflow& wf,
                                     double max_group_workload) {
  wf.ensure_valid();
  MEDCC_EXPECTS(max_group_workload > 0.0);
  const std::size_t n = wf.module_count();
  UnionFind uf(n);

  std::vector<double> group_workload(n);
  std::vector<bool> group_fixed(n);
  for (NodeId v = 0; v < n; ++v) {
    group_workload[v] = wf.module(v).is_fixed() ? 0.0 : wf.module(v).workload;
    group_fixed[v] = wf.module(v).is_fixed();
  }

  // Candidate edges by descending data size; re-scanned after each merge
  // because contraction changes both reachability and group workloads.
  std::vector<dag::EdgeId> order(wf.graph().edge_count());
  std::iota(order.begin(), order.end(), dag::EdgeId{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](dag::EdgeId a, dag::EdgeId b) {
                     return wf.data_size(a) > wf.data_size(b);
                   });

  // Reachability must be evaluated on the *contracted* graph: a group is
  // traversable between any two of its members (shared VM), which the
  // original graph does not capture. `group_reaches(a, b, skip_direct)`
  // BFSes over group-level edges derived on the fly from the original
  // edge list; when skip_direct is set, direct a->b edges are ignored
  // (the cycle test asks for an *indirect* connection).
  const auto group_reaches = [&](std::size_t from, std::size_t to,
                                 bool skip_direct) {
    std::vector<bool> seen(n, false);
    std::vector<std::size_t> frontier{from};
    seen[from] = true;
    while (!frontier.empty()) {
      const std::size_t g = frontier.back();
      frontier.pop_back();
      for (dag::EdgeId e = 0; e < wf.graph().edge_count(); ++e) {
        const auto& edge = wf.graph().edge(e);
        if (uf.find(edge.src) != g) continue;
        const std::size_t succ = uf.find(edge.dst);
        if (succ == g) continue;
        if (skip_direct && g == from && succ == to) continue;
        if (succ == to && !(skip_direct && g == from)) return true;
        if (succ == to) continue;
        if (!seen[succ]) {
          seen[succ] = true;
          frontier.push_back(succ);
        }
      }
    }
    return false;
  };

  bool merged = true;
  while (merged) {
    merged = false;
    for (dag::EdgeId e : order) {
      const auto& edge = wf.graph().edge(e);
      const std::size_t a = uf.find(edge.src);
      const std::size_t b = uf.find(edge.dst);
      if (a == b || group_fixed[a] || group_fixed[b]) continue;
      if (group_workload[a] + group_workload[b] > max_group_workload)
        continue;
      // The contraction of {a,b} creates a cycle iff group a reaches group
      // b through some other group (the pre-merge contracted graph is
      // acyclic, so b never reaches a).
      if (group_reaches(a, b, /*skip_direct=*/true)) continue;
      const double combined = group_workload[a] + group_workload[b];
      uf.unite(a, b);
      const std::size_t root = uf.find(a);
      group_workload[root] = combined;
      merged = true;
    }
  }
  return contract(wf, uf);
}

}  // namespace medcc::workflow
