#include "workflow/patterns.hpp"

#include <string>
#include <vector>

namespace medcc::workflow {
namespace {

std::string wname(std::size_t i) { return "w" + std::to_string(i); }

}  // namespace

Workflow pipeline(std::span<const double> workloads, double data_size) {
  if (workloads.empty())
    throw InvalidArgument("pipeline: need at least one module");
  Workflow wf;
  NodeId prev = 0;
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    const NodeId id = wf.add_module(wname(i), workloads[i]);
    if (i > 0) wf.add_dependency(prev, id, data_size);
    prev = id;
  }
  wf.ensure_valid();
  return wf;
}

Workflow random_pipeline(std::size_t modules, double wl_min, double wl_max,
                         util::Prng& rng) {
  MEDCC_EXPECTS(modules >= 1);
  std::vector<double> workloads(modules);
  for (auto& wl : workloads) wl = rng.uniform_real(wl_min, wl_max);
  return pipeline(workloads);
}

Workflow fork_join(std::size_t width, std::size_t depth, double wl_min,
                   double wl_max, util::Prng& rng) {
  MEDCC_EXPECTS(width >= 1 && depth >= 1);
  Workflow wf;
  const NodeId entry = wf.add_fixed_module("entry", 0.0);
  std::vector<NodeId> tails;
  tails.reserve(width);
  for (std::size_t b = 0; b < width; ++b) {
    NodeId prev = entry;
    for (std::size_t d = 0; d < depth; ++d) {
      const NodeId id =
          wf.add_module("b" + std::to_string(b) + "_" + std::to_string(d),
                        rng.uniform_real(wl_min, wl_max));
      wf.add_dependency(prev, id);
      prev = id;
    }
    tails.push_back(prev);
  }
  const NodeId exit = wf.add_fixed_module("exit", 0.0);
  for (NodeId t : tails) wf.add_dependency(t, exit);
  wf.ensure_valid();
  return wf;
}

Workflow layered(std::size_t layers, std::size_t width, double wl_min,
                 double wl_max, util::Prng& rng) {
  MEDCC_EXPECTS(layers >= 1 && width >= 1);
  Workflow wf;
  const NodeId entry = wf.add_fixed_module("entry", 0.0);
  std::vector<NodeId> prev_rank{entry};
  for (std::size_t l = 0; l < layers; ++l) {
    std::vector<NodeId> rank;
    rank.reserve(width);
    for (std::size_t c = 0; c < width; ++c) {
      rank.push_back(
          wf.add_module("l" + std::to_string(l) + "_" + std::to_string(c),
                        rng.uniform_real(wl_min, wl_max)));
    }
    // Every upstream module feeds a random non-empty subset of this rank;
    // then every rank module lacking a predecessor gets a random upstream
    // parent so the DAG stays connected.
    std::vector<bool> has_parent(rank.size(), false);
    for (NodeId up : prev_rank) {
      const auto k = static_cast<std::size_t>(
          rng.uniform_int(1, static_cast<std::int64_t>(rank.size())));
      for (std::size_t idx : rng.sample_indices(rank.size(), k)) {
        wf.add_dependency(up, rank[idx]);
        has_parent[idx] = true;
      }
    }
    for (std::size_t idx = 0; idx < rank.size(); ++idx) {
      if (!has_parent[idx])
        wf.add_dependency(rng.choice(prev_rank), rank[idx]);
    }
    prev_rank = std::move(rank);
  }
  const NodeId exit = wf.add_fixed_module("exit", 0.0);
  for (NodeId t : prev_rank) wf.add_dependency(t, exit);
  wf.ensure_valid();
  return wf;
}

Workflow montage_like(std::size_t tiles, util::Prng& rng) {
  MEDCC_EXPECTS(tiles >= 2);
  Workflow wf;
  const NodeId entry = wf.add_fixed_module("entry", 0.0);

  // mProject rank: one reprojection per tile (moderate workloads).
  std::vector<NodeId> project(tiles);
  for (std::size_t i = 0; i < tiles; ++i) {
    project[i] = wf.add_module("mProject" + std::to_string(i),
                               rng.uniform_real(20.0, 60.0));
    wf.add_dependency(entry, project[i]);
  }
  // mDiffFit rank: one per adjacent pair of tiles (light workloads).
  std::vector<NodeId> diff(tiles - 1);
  for (std::size_t i = 0; i + 1 < tiles; ++i) {
    diff[i] = wf.add_module("mDiffFit" + std::to_string(i),
                            rng.uniform_real(5.0, 15.0));
    wf.add_dependency(project[i], diff[i]);
    wf.add_dependency(project[i + 1], diff[i]);
  }
  // Concentration: mConcatFit -> mBgModel, then per-tile mBackground.
  const NodeId concat =
      wf.add_module("mConcatFit", rng.uniform_real(10.0, 30.0));
  for (NodeId d : diff) wf.add_dependency(d, concat);
  const NodeId bgmodel =
      wf.add_module("mBgModel", rng.uniform_real(30.0, 90.0));
  wf.add_dependency(concat, bgmodel);
  std::vector<NodeId> background(tiles);
  for (std::size_t i = 0; i < tiles; ++i) {
    background[i] = wf.add_module("mBackground" + std::to_string(i),
                                  rng.uniform_real(10.0, 30.0));
    wf.add_dependency(bgmodel, background[i]);
    wf.add_dependency(project[i], background[i]);
  }
  // Assembly tail: mImgtbl -> mAdd -> mJPEG.
  const NodeId imgtbl = wf.add_module("mImgtbl", rng.uniform_real(5.0, 15.0));
  for (NodeId b : background) wf.add_dependency(b, imgtbl);
  const NodeId madd = wf.add_module("mAdd", rng.uniform_real(60.0, 150.0));
  wf.add_dependency(imgtbl, madd);
  const NodeId jpeg = wf.add_module("mJPEG", rng.uniform_real(10.0, 30.0));
  wf.add_dependency(madd, jpeg);

  const NodeId exit = wf.add_fixed_module("exit", 0.0);
  wf.add_dependency(jpeg, exit);
  wf.ensure_valid();
  return wf;
}

Workflow epigenomics_like(std::size_t lanes, std::size_t chunks_per_lane,
                          util::Prng& rng) {
  MEDCC_EXPECTS(lanes >= 1 && chunks_per_lane >= 1);
  Workflow wf;
  const NodeId entry = wf.add_fixed_module("entry", 0.0);
  std::vector<NodeId> merge_inputs;
  static constexpr const char* kStages[] = {"filter", "sol2sanger", "fastq2bfq",
                                            "map"};
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    const NodeId split =
        wf.add_module("fastqSplit" + std::to_string(lane),
                      rng.uniform_real(10.0, 30.0));
    wf.add_dependency(entry, split);
    const NodeId merge =
        wf.add_module("mapMerge" + std::to_string(lane),
                      rng.uniform_real(20.0, 60.0));
    for (std::size_t chunk = 0; chunk < chunks_per_lane; ++chunk) {
      NodeId prev = split;
      for (const char* stage : kStages) {
        const NodeId id = wf.add_module(
            std::string(stage) + "_" + std::to_string(lane) + "_" +
                std::to_string(chunk),
            rng.uniform_real(15.0, 120.0));
        wf.add_dependency(prev, id);
        prev = id;
      }
      wf.add_dependency(prev, merge);
    }
    merge_inputs.push_back(merge);
  }
  const NodeId index =
      wf.add_module("maqIndex", rng.uniform_real(30.0, 90.0));
  for (NodeId m : merge_inputs) wf.add_dependency(m, index);
  const NodeId pileup = wf.add_module("pileup", rng.uniform_real(20.0, 60.0));
  wf.add_dependency(index, pileup);
  const NodeId exit = wf.add_fixed_module("exit", 0.0);
  wf.add_dependency(pileup, exit);
  wf.ensure_valid();
  return wf;
}

Workflow cybershake_like(std::size_t sites, util::Prng& rng) {
  MEDCC_EXPECTS(sites >= 1);
  Workflow wf;
  const NodeId entry = wf.add_fixed_module("entry", 0.0);
  const NodeId pre =
      wf.add_module("preCVM", rng.uniform_real(20.0, 50.0));
  wf.add_dependency(entry, pre);
  const NodeId gen_x =
      wf.add_module("genSGT_X", rng.uniform_real(100.0, 250.0));
  const NodeId gen_y =
      wf.add_module("genSGT_Y", rng.uniform_real(100.0, 250.0));
  wf.add_dependency(pre, gen_x);
  wf.add_dependency(pre, gen_y);
  const NodeId zip_psa =
      wf.add_module("zipPSA", rng.uniform_real(20.0, 60.0));
  const NodeId zip_seis =
      wf.add_module("zipSeis", rng.uniform_real(20.0, 60.0));
  for (std::size_t s = 0; s < sites; ++s) {
    const NodeId synth = wf.add_module("synth" + std::to_string(s),
                                       rng.uniform_real(20.0, 80.0));
    wf.add_dependency(gen_x, synth);
    wf.add_dependency(gen_y, synth);
    const NodeId peak = wf.add_module("peakVal" + std::to_string(s),
                                      rng.uniform_real(5.0, 20.0));
    wf.add_dependency(synth, peak);
    wf.add_dependency(peak, zip_psa);
    wf.add_dependency(synth, zip_seis);
  }
  const NodeId exit = wf.add_fixed_module("exit", 0.0);
  wf.add_dependency(zip_psa, exit);
  wf.add_dependency(zip_seis, exit);
  wf.ensure_valid();
  return wf;
}

Workflow ligo_like(std::size_t groups, std::size_t templates_per_group,
                   util::Prng& rng) {
  MEDCC_EXPECTS(groups >= 1 && templates_per_group >= 1);
  Workflow wf;
  const NodeId entry = wf.add_fixed_module("entry", 0.0);
  std::vector<NodeId> trigger_outputs;
  for (std::size_t g = 0; g < groups; ++g) {
    const std::string sfx = "_" + std::to_string(g);
    const NodeId tmplt =
        wf.add_module("TmpltBank" + sfx, rng.uniform_real(15.0, 40.0));
    wf.add_dependency(entry, tmplt);
    const NodeId trig =
        wf.add_module("Thinca" + sfx, rng.uniform_real(5.0, 15.0));
    for (std::size_t k = 0; k < templates_per_group; ++k) {
      const NodeId inspiral = wf.add_module(
          "Inspiral" + sfx + "_" + std::to_string(k),
          rng.uniform_real(100.0, 500.0));
      wf.add_dependency(tmplt, inspiral);
      wf.add_dependency(inspiral, trig);
    }
    // Second-stage filtering fan after the first trigger.
    const NodeId trig2 =
        wf.add_module("Thinca2" + sfx, rng.uniform_real(5.0, 15.0));
    for (std::size_t k = 0; k < templates_per_group; ++k) {
      const NodeId veto = wf.add_module(
          "TrigBank" + sfx + "_" + std::to_string(k),
          rng.uniform_real(40.0, 150.0));
      wf.add_dependency(trig, veto);
      wf.add_dependency(veto, trig2);
    }
    trigger_outputs.push_back(trig2);
  }
  const NodeId coincidence =
      wf.add_module("Coincidence", rng.uniform_real(10.0, 30.0));
  for (NodeId t : trigger_outputs) wf.add_dependency(t, coincidence);
  const NodeId exit = wf.add_fixed_module("exit", 0.0);
  wf.add_dependency(coincidence, exit);
  wf.ensure_valid();
  return wf;
}

Workflow sipht_like(std::size_t searches, util::Prng& rng) {
  MEDCC_EXPECTS(searches >= 1);
  Workflow wf;
  const NodeId entry = wf.add_fixed_module("entry", 0.0);
  const NodeId patser_concat =
      wf.add_module("Patser_concat", rng.uniform_real(5.0, 15.0));
  // A few heavy long-pole searches plus many light ones -- the skew the
  // real SIPHT traces show.
  for (std::size_t k = 0; k < searches; ++k) {
    const bool heavy = k < std::max<std::size_t>(1, searches / 8);
    const NodeId blast = wf.add_module(
        (heavy ? "Blast_heavy_" : "Patser_") + std::to_string(k),
        heavy ? rng.uniform_real(300.0, 900.0)
              : rng.uniform_real(5.0, 40.0));
    wf.add_dependency(entry, blast);
    wf.add_dependency(blast, patser_concat);
  }
  const NodeId srna = wf.add_module("SRNA", rng.uniform_real(50.0, 150.0));
  wf.add_dependency(patser_concat, srna);
  const NodeId ffn = wf.add_module("FFN_parse", rng.uniform_real(10.0, 30.0));
  wf.add_dependency(srna, ffn);
  const NodeId annotate =
      wf.add_module("SRNA_annotate", rng.uniform_real(20.0, 60.0));
  wf.add_dependency(ffn, annotate);
  const NodeId exit = wf.add_fixed_module("exit", 0.0);
  wf.add_dependency(annotate, exit);
  wf.ensure_valid();
  return wf;
}

Workflow example6() {
  // Reconstructed Fig. 4 instance, found by the exact linear-system search
  // in tools/reverse_engineer_example.cpp. With cloud::example_catalog()
  // (Table I) this instance reproduces Table II of the paper precisely:
  // the least-cost schedule {w1,w2,w5}->VT2, {w3,w4,w6}->VT1 at Cmin=48,
  // the fastest schedule at Cmax=64, every Critical-Greedy schedule and
  // budget band, and five of the six published MEDs to the printed digit
  // (16.77, 12.10, 10.77, 6.77, 5.43). The solver also proves that NO
  // workloads/topology are consistent with the remaining row's printed
  // 8.10 -- the value consistent with everything else is 8.19(3), so we
  // treat 8.10 as a typo (full derivation in EXPERIMENTS.md).
  //
  // Data sizes did not survive in the text; they are set to a nominal 1.0
  // and are irrelevant under the paper's zero-transfer single-cloud model.
  Workflow wf;
  const NodeId w0 = wf.add_fixed_module("w0", 1.0);  // entry: data input
  const NodeId w1 = wf.add_module("w1", 11.3);
  const NodeId w2 = wf.add_module("w2", 42.7);
  const NodeId w3 = wf.add_module("w3", 20.0);
  const NodeId w4 = wf.add_module("w4", 20.0);
  const NodeId w5 = wf.add_module("w5", 40.2);
  const NodeId w6 = wf.add_module("w6", 15.77);
  const NodeId w7 = wf.add_fixed_module("w7", 1.0);  // exit: data output
  wf.add_dependency(w0, w1, 1.0);
  wf.add_dependency(w0, w2, 1.0);
  wf.add_dependency(w1, w3, 1.0);
  wf.add_dependency(w2, w4, 1.0);
  wf.add_dependency(w3, w5, 1.0);
  wf.add_dependency(w4, w5, 1.0);
  wf.add_dependency(w4, w6, 1.0);
  wf.add_dependency(w5, w7, 1.0);
  wf.add_dependency(w6, w7, 1.0);
  wf.ensure_valid();
  return wf;
}

}  // namespace medcc::workflow
