// Random workflow-instance generation following Section VI-A of the paper:
//
//   "we first lay out m modules sequentially from w0 to w_{m-1} as a
//    pipeline, each of which is assigned a certain workload randomly
//    generated within an appropriate range. For each module wi, we randomly
//    choose a number k within the range [1, m-1-i] and then choose k modules
//    with their module IDs in the range [i+1, m-1] as its successors.
//    Finally, we connect all modules without any predecessors to the entry
//    module w0 such that the total number of links is equal to the given
//    |Ew|."
//
// The generator reproduces that procedure and then repairs the edge count to
// hit the requested |Ew| exactly (adding missing forward edges / removing
// surplus edges while preserving single-entry/single-exit connectivity).
#pragma once

#include "util/prng.hpp"
#include "workflow/workflow.hpp"

namespace medcc::workflow {

/// Parameters for one random instance. `modules` counts the computing
/// modules w0..w_{m-1}; w0 doubles as the entry and w_{m-1} as the exit,
/// matching the paper's problem sizes (m, |Ew|, n).
struct RandomWorkflowSpec {
  std::size_t modules = 10;      ///< m, must be >= 2
  std::size_t edges = 17;        ///< |Ew| target; clamped to feasible range
  double workload_min = 10.0;    ///< WL_i lower bound
  double workload_max = 100.0;   ///< WL_i upper bound
  double data_size_min = 0.0;    ///< DS_ij lower bound
  double data_size_max = 0.0;    ///< DS_ij upper bound (0 = no transfer)
  /// Cap on the random successor count k; 0 means the paper's [1, m-1-i].
  std::size_t max_fanout = 0;
  /// When true (paper's model for random instances), the entry and exit
  /// modules are ordinary computing modules with random workloads; when
  /// false they are zero-duration fixed modules.
  bool weighted_endpoints = true;
};

/// Smallest/largest |Ew| a connected single-entry/single-exit DAG on
/// `modules` nodes can have. Used to clamp RandomWorkflowSpec::edges.
[[nodiscard]] std::size_t min_feasible_edges(std::size_t modules);
[[nodiscard]] std::size_t max_feasible_edges(std::size_t modules);

/// Generates one random workflow instance. Deterministic in (spec, rng
/// state). The result always validates: acyclic, one entry, one exit,
/// every module on an entry->exit path, and exactly
/// clamp(spec.edges, min_feasible, max_feasible) dependencies.
[[nodiscard]] Workflow random_workflow(const RandomWorkflowSpec& spec,
                                       util::Prng& rng);

}  // namespace medcc::workflow
