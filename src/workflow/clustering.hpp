// Module clustering: the preprocessing step the paper assumes (Section
// III-B): "scientific workflows that have been preprocessed by an
// appropriate clustering technique ... such that a group of modules in the
// original workflow are bundled together as one aggregate module".
//
// Two standard techniques are provided:
//  * linear clustering -- repeatedly merge chains of single-successor /
//    single-predecessor modules (sequential groups share a VM anyway);
//  * transfer-aware clustering -- greedily merge the endpoint pair of the
//    heaviest data edge while the merge keeps the graph acyclic and the
//    aggregate workload under a cap (minimizes inter-module transfer, the
//    paper's stated goal).
#pragma once

#include <vector>

#include "workflow/workflow.hpp"

namespace medcc::workflow {

/// Result of clustering: the aggregate workflow plus the mapping from each
/// original module to its aggregate module id.
struct Clustering {
  Workflow aggregated;
  std::vector<NodeId> group_of;  ///< original module id -> aggregate id
  /// Sum of data sizes on edges that became internal to a group.
  double internalized_data = 0.0;
};

/// Merges maximal chains (single successor feeding a single predecessor).
/// Fixed-time modules are never merged.
[[nodiscard]] Clustering linear_clustering(const Workflow& wf);

/// Greedy transfer-minimizing clustering. Repeatedly merges the endpoints
/// of the largest-data edge when (a) neither endpoint is fixed, (b) the
/// merged workload stays <= max_group_workload, and (c) the contraction
/// keeps the graph acyclic. Stops when no edge qualifies.
[[nodiscard]] Clustering transfer_aware_clustering(const Workflow& wf,
                                                   double max_group_workload);

}  // namespace medcc::workflow
