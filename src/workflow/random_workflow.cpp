#include "workflow/random_workflow.hpp"

#include <algorithm>
#include <set>
#include <vector>

namespace medcc::workflow {
namespace {

/// Edge-set under construction: forward pairs (src < dst), unique.
using EdgeSet = std::set<std::pair<std::size_t, std::size_t>>;

}  // namespace

std::size_t min_feasible_edges(std::size_t modules) {
  MEDCC_EXPECTS(modules >= 2);
  return modules - 1;  // the pipeline
}

std::size_t max_feasible_edges(std::size_t modules) {
  MEDCC_EXPECTS(modules >= 2);
  return modules * (modules - 1) / 2;  // complete forward DAG
}

Workflow random_workflow(const RandomWorkflowSpec& spec, util::Prng& rng) {
  const std::size_t m = spec.modules;
  if (m < 2) throw InvalidArgument("random_workflow: need at least 2 modules");
  if (spec.workload_min < 0.0 || spec.workload_max < spec.workload_min)
    throw InvalidArgument("random_workflow: bad workload range");
  if (spec.data_size_min < 0.0 || spec.data_size_max < spec.data_size_min)
    throw InvalidArgument("random_workflow: bad data size range");

  const std::size_t target =
      std::clamp(spec.edges, min_feasible_edges(m), max_feasible_edges(m));

  // The paper lays the modules out as w0..w_{m-1} and only ever samples
  // successors with larger ids, so every edge is a forward pair and the
  // graph is acyclic by construction. The paper's own procedure does not
  // pin the edge count exactly; we construct a skeleton whose branching is
  // budgeted so the target |Ew| is always met precisely:
  //
  //  1. A random spanning out-tree from w0 (parent p_i < i). Each branching
  //     choice creates one extra tree leaf, and each leaf other than
  //     w_{m-1} later needs one out-edge to keep the exit unique -- so
  //     branching is allowed only while the extra-edge budget lasts.
  //  2. Every childless node except w_{m-1} gets one forward edge.
  //  3. The remaining budget is spent on uniformly random absent forward
  //     pairs, which mirrors the paper's random fan-out step.
  EdgeSet edges;
  const std::size_t extra_budget = target - (m - 1);
  std::size_t branches_used = 0;

  std::vector<bool> childless(m, true);
  for (std::size_t i = 1; i < m; ++i) {
    std::size_t parent;
    if (branches_used < extra_budget) {
      parent = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
      if (!childless[parent]) ++branches_used;
    } else {
      // Must extend a chain: pick a childless node below i (node i-1
      // qualifies, so the candidate set is never empty).
      std::vector<std::size_t> candidates;
      for (std::size_t v = 0; v < i; ++v)
        if (childless[v]) candidates.push_back(v);
      parent = rng.choice(candidates);
    }
    childless[parent] = false;
    edges.emplace(parent, i);
  }

  // Step 2: childless nodes except the exit get one successor.
  for (std::size_t v = 0; v + 1 < m; ++v) {
    if (!childless[v]) continue;
    const auto succ = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(v) + 1, static_cast<std::int64_t>(m) - 1));
    edges.emplace(v, succ);
    childless[v] = false;
  }
  MEDCC_ENSURES(edges.size() <= target);

  // Step 3: random absent forward pairs until the target is reached.
  while (edges.size() < target) {
    const auto src = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(m) - 2));
    const auto dst = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(src) + 1, static_cast<std::int64_t>(m) - 1));
    edges.emplace(src, dst);
  }

  Workflow wf;
  for (std::size_t i = 0; i < m; ++i) {
    const std::string name = "w" + std::to_string(i);
    const bool endpoint = (i == 0 || i + 1 == m);
    if (!spec.weighted_endpoints && endpoint) {
      wf.add_fixed_module(name, 0.0);
    } else {
      wf.add_module(name,
                    rng.uniform_real(spec.workload_min, spec.workload_max));
    }
  }
  for (const auto& [src, dst] : edges) {
    const double ds =
        rng.uniform_real(spec.data_size_min, spec.data_size_max);
    wf.add_dependency(src, dst, ds);
  }
  wf.ensure_valid();
  MEDCC_ENSURES(wf.dependency_count() == target);
  return wf;
}

}  // namespace medcc::workflow
