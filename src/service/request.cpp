#include "service/request.hpp"

namespace medcc::service {

const char* to_string(ResponseStatus status) {
  switch (status) {
    case ResponseStatus::ok: return "ok";
    case ResponseStatus::rejected: return "rejected";
    case ResponseStatus::failed: return "failed";
  }
  return "unknown";
}

const char* to_string(RejectReason reason) {
  switch (reason) {
    case RejectReason::none: return "none";
    case RejectReason::queue_full: return "queue_full";
    case RejectReason::shutting_down: return "shutting_down";
    case RejectReason::deadline_expired: return "deadline_expired";
    case RejectReason::unknown_solver: return "unknown_solver";
    case RejectReason::invalid_request: return "invalid_request";
    case RejectReason::tenant_quota: return "tenant_quota";
    case RejectReason::flow_control: return "flow_control";
  }
  return "unknown";
}

const char* to_string(CacheOutcome outcome) {
  switch (outcome) {
    case CacheOutcome::bypass: return "bypass";
    case CacheOutcome::miss: return "miss";
    case CacheOutcome::hit_exact: return "hit_exact";
    case CacheOutcome::hit_isomorphic: return "hit_isomorphic";
  }
  return "unknown";
}

}  // namespace medcc::service
