#include "service/cache.hpp"

#include <algorithm>
#include <chrono>

namespace medcc::service {

namespace {

std::int64_t steady_seconds() {
  return std::chrono::duration_cast<std::chrono::seconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ResultCache::ResultCache(const Config& config)
    : ttl_s_(config.ttl_s),
      clock_(config.clock ? config.clock : steady_seconds),
      on_expired_(config.on_expired) {
  MEDCC_EXPECTS(config.capacity > 0);
  MEDCC_EXPECTS(config.shards > 0);
  MEDCC_EXPECTS(config.ttl_s >= 0);
  const std::size_t shards = std::min(config.shards, config.capacity);
  shard_capacity_ = (config.capacity + shards - 1) / shards;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

std::optional<CacheHit> ResultCache::find(const FingerprintDetail& fp) {
  Shard& shard = shard_for(fp.canonical);
  const std::int64_t at = now();
  bool dropped = false;
  std::optional<CacheHit> hit;
  {
    const util::MutexLock lock(shard.mutex);
    const auto it = shard.index.find(fp.canonical);
    if (it == shard.index.end()) return std::nullopt;
    CacheEntry& entry = *it->second;
    if (expired(entry, at)) {
      shard.lru.erase(it->second);
      shard.index.erase(it);
      ++shard.expired;
      dropped = true;
    } else {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      ++entry.hits;
      hit.emplace();
      hit->exact = entry.exact == fp.exact;
      hit->result = entry.result;
      hit->assignment = entry.assignment;
      hit->remappable = entry.remappable;
    }
  }
  if (dropped) notify_expired(1);
  return hit;
}

CacheEntry ResultCache::make_entry(const FingerprintDetail& fp,
                                   const sched::Result& result) {
  CacheEntry entry;
  entry.key = fp.canonical;
  entry.exact = fp.exact;
  entry.solver = fp.solver;
  entry.result = result;
  entry.remappable = fp.modules_distinct && fp.types_distinct;
  if (entry.remappable) {
    entry.assignment.reserve(fp.module_hash.size());
    for (std::size_t i = 0; i < fp.module_hash.size(); ++i) {
      MEDCC_EXPECTS(i < result.schedule.type_of.size());
      const std::size_t type = result.schedule.type_of[i];
      MEDCC_EXPECTS(type < fp.type_hash.size());
      entry.assignment.emplace_back(fp.module_hash[i], fp.type_hash[type]);
    }
    std::sort(entry.assignment.begin(), entry.assignment.end());
  }
  return entry;
}

void ResultCache::insert(const FingerprintDetail& fp,
                         const sched::Result& result) {
  upsert(make_entry(fp, result), /*count_insertion=*/true);
}

void ResultCache::insert(CacheEntry entry) {
  upsert(std::move(entry), /*count_insertion=*/true);
}

void ResultCache::restore(CacheEntry entry) {
  upsert(std::move(entry), /*count_insertion=*/false);
}

void ResultCache::upsert(CacheEntry entry, bool count_insertion) {
  Shard& shard = shard_for(entry.key);
  entry.inserted_at = now();
  const util::MutexLock lock(shard.mutex);
  const auto it = shard.index.find(entry.key);
  if (it != shard.index.end()) {
    *it->second = std::move(entry);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  const Fingerprint key = entry.key;
  shard.lru.push_front(std::move(entry));
  shard.index[key] = shard.lru.begin();
  if (count_insertion) ++shard.insertions;
  while (shard.lru.size() > shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

std::size_t ResultCache::sweep_expired() {
  if (ttl_s_ <= 0) return 0;
  const std::int64_t at = now();
  std::size_t total = 0;
  for (auto& shard : shards_) {
    const util::MutexLock lock(shard->mutex);
    for (auto it = shard->lru.begin(); it != shard->lru.end();) {
      if (expired(*it, at)) {
        shard->index.erase(it->key);
        it = shard->lru.erase(it);
        ++shard->expired;
        ++total;
      } else {
        ++it;
      }
    }
  }
  notify_expired(total);
  return total;
}

std::vector<CacheEntry> ResultCache::export_entries() const {
  std::vector<CacheEntry> entries;
  for (const auto& shard : shards_) {
    const util::MutexLock lock(shard->mutex);
    // Oldest first, so replaying in order reproduces the LRU order.
    for (auto it = shard->lru.rbegin(); it != shard->lru.rend(); ++it)
      entries.push_back(*it);
  }
  return entries;
}

ResultCache::Stats ResultCache::stats() const {
  Stats total;
  for (const auto& shard : shards_) {
    const util::MutexLock lock(shard->mutex);
    total.insertions += shard->insertions;
    total.evictions += shard->evictions;
    total.expired += shard->expired;
    total.size += shard->lru.size();
  }
  return total;
}

void ResultCache::clear() {
  for (auto& shard : shards_) {
    const util::MutexLock lock(shard->mutex);
    shard->lru.clear();
    shard->index.clear();
  }
}

std::optional<sched::Schedule> remap_schedule(const CacheHit& hit,
                                              const FingerprintDetail& fp) {
  if (!hit.remappable || !fp.modules_distinct || !fp.types_distinct)
    return std::nullopt;
  if (hit.assignment.size() != fp.module_hash.size()) return std::nullopt;

  // type hash -> requesting catalog index
  std::vector<std::pair<std::uint64_t, std::size_t>> types;
  types.reserve(fp.type_hash.size());
  for (std::size_t j = 0; j < fp.type_hash.size(); ++j)
    types.emplace_back(fp.type_hash[j], j);
  std::sort(types.begin(), types.end());

  sched::Schedule schedule;
  schedule.type_of.resize(fp.module_hash.size(), 0);
  for (std::size_t i = 0; i < fp.module_hash.size(); ++i) {
    const auto label = fp.module_hash[i];
    const auto it = std::lower_bound(
        hit.assignment.begin(), hit.assignment.end(), label,
        [](const auto& pair, std::uint64_t l) { return pair.first < l; });
    if (it == hit.assignment.end() || it->first != label)
      return std::nullopt;
    const auto type_it = std::lower_bound(
        types.begin(), types.end(), it->second,
        [](const auto& pair, std::uint64_t t) { return pair.first < t; });
    if (type_it == types.end() || type_it->first != it->second)
      return std::nullopt;
    schedule.type_of[i] = type_it->second;
  }
  return schedule;
}

}  // namespace medcc::service
