// The concurrent MED-CC scheduling service: one entry point that turns
// the library's one-shot solvers into an overload-safe, observable,
// memoized request path.
//
// Request lifecycle:
//   submit() -> admission control (bounded queue; reject queue_full /
//   shutting_down / unknown_solver / invalid_request with an immediately
//   resolved future) -> worker picks the request up (queue-deadline
//   check) -> fingerprint -> result cache (exact or isomorphic hit) or
//   registry solve -> invariant verification (MEDCC_CHECK_INVARIANTS
//   builds) -> response + metrics.
//
// Responses are futures so callers overlap requests freely; rejected
// requests resolve without touching a worker. drain() waits for every
// admitted request; shutdown() additionally stops admission, and the
// destructor performs it implicitly. All entry points are thread-safe.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "persist/store.hpp"
#include "sched/solver_registry.hpp"
#include "service/cache.hpp"
#include "service/metrics.hpp"
#include "service/request.hpp"
#include "service/wire_cache.hpp"
#include "util/mutex.hpp"
#include "util/thread_pool.hpp"

namespace medcc::service {

struct ServiceConfig {
  /// Worker threads; 0 = hardware concurrency.
  std::size_t threads = 0;
  /// Maximum admitted-but-not-yet-solving requests; submissions beyond
  /// it are rejected with RejectReason::queue_full.
  std::size_t queue_capacity = 256;
  /// Result-cache entries across all shards; 0 disables memoization.
  std::size_t cache_capacity = 4096;
  std::size_t cache_shards = 8;
  /// Encoded-frame memo entries for the network fast path (see
  /// service/wire_cache.hpp). Active only when the result cache is
  /// enabled -- the wire cache is a byte-level extension of it; 0
  /// disables the fast path.
  std::size_t wire_cache_capacity = 1024;
  /// Queue deadline applied when a request does not set its own;
  /// 0 = requests wait indefinitely.
  double default_deadline_ms = 0.0;
  /// Maximum admitted-or-solving requests per tenant id; the excess is
  /// rejected with RejectReason::tenant_quota. 0 = unlimited. The empty
  /// tenant ("") counts as one tenant like any other.
  std::size_t max_inflight_per_tenant = 0;
  /// Directory for durable cache persistence (snapshot + journal, see
  /// src/persist). Empty disables persistence; requires the cache to be
  /// enabled. On construction the service warm-starts from whatever the
  /// directory holds, tolerating torn tails from a previous crash.
  std::string cache_dir{};
  /// Seconds between background snapshots when there is anything new;
  /// <= 0 leaves only size-triggered and shutdown flushes.
  double snapshot_interval_s = 30.0;
  /// Journal size triggering an immediate snapshot + rotation.
  std::size_t journal_rotate_bytes = 4u << 20;
  /// fsync the journal on every insertion (crash-safe; turn off for
  /// throughput at the cost of losing the tail on power failure).
  bool persist_fsync = true;
  /// Injectable time source (tests freeze it); default steady_clock.
  std::function<std::chrono::steady_clock::time_point()> clock{};
  /// Seconds a cache entry may answer lookups after its (re-)insertion;
  /// 0 disables expiry. Expired entries are evicted lazily on lookup
  /// and swept in bulk by the persistence flusher (or sweep_expired()).
  /// Applies to the wire cache too, so the fast path cannot outlive the
  /// result it memoized. Counted by the cache_expired metric.
  std::int64_t cache_ttl_s = 0;
  /// Injectable seconds source for TTL accounting (tests age entries
  /// without sleeping); default steady clock.
  std::function<std::int64_t()> cache_clock{};
  /// Invoked after a locally solved MISS is inserted into the cache,
  /// with the encoded cache record (service/persistence.hpp codec) --
  /// the bytes a replicator pushes to peers -- and the trace context of
  /// the request that produced it (invalid id = untraced), so the
  /// replication hop stays on the request's trace. NOT invoked for
  /// cache hits, restores, or entries applied from peers
  /// (apply_replicated_record), which is what keeps replication
  /// loop-free: only the origin node publishes an entry. Called on a
  /// worker thread; must be cheap (enqueue, don't send).
  std::function<void(std::string payload, obs::TraceContext trace)>
      on_cache_insert{};
  /// Request tracer (docs/observability.md); nullptr = untraced. The
  /// service records queue_wait / cache_lookup / solve /
  /// persist_append / repl_push spans against each request's trace.
  /// Not owned; must outlive the service.
  obs::Tracer* tracer = nullptr;
  /// Solver table; nullptr = sched::SolverRegistry::built_in().
  const sched::SolverRegistry* registry = nullptr;
};

class SchedulingService {
public:
  explicit SchedulingService(ServiceConfig config = {});
  ~SchedulingService();

  SchedulingService(const SchedulingService&) = delete;
  SchedulingService& operator=(const SchedulingService&) = delete;

  /// Submits one request. Always returns a valid future: admission
  /// rejections resolve it immediately with status == rejected.
  [[nodiscard]] std::future<SchedulingResponse> submit(
      SchedulingRequest request);

  /// Callback flavour of submit() for callers that multiplex completions
  /// themselves (the net/ server correlates responses by request id).
  /// `done` is invoked exactly once -- synchronously, on the submitting
  /// thread, for admission rejections, otherwise on a worker thread --
  /// and must not throw.
  void submit_async(SchedulingRequest request,
                    std::function<void(SchedulingResponse)> done);

  /// Submits every request in order (the batch API the network layer
  /// pipelines over one connection). Each element is admitted
  /// independently: a rejection of one does not affect the others.
  [[nodiscard]] std::vector<std::future<SchedulingResponse>> submit_batch(
      std::vector<SchedulingRequest> requests);

  /// Blocks until every admitted request has been answered.
  void drain();

  /// Stops admission (new submits resolve shutting_down), drains the
  /// queue, and parks the workers. Idempotent.
  void shutdown();

  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }
  /// Mutable registry access for front ends that record service-level
  /// outcomes the service itself cannot see (the network server's
  /// encoded-frame fast path answers without entering submit()).
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] bool cache_enabled() const { return cache_ != nullptr; }
  /// Encoded-frame memo for the network fast path; nullptr when
  /// disabled. The cache outlives any server using it: it is owned by
  /// the service, which by contract outlives its front ends.
  [[nodiscard]] WireCache* wire_cache() { return wire_cache_.get(); }
  [[nodiscard]] bool persistence_enabled() const { return store_ != nullptr; }
  /// Cache occupancy counters; zeros when the cache is disabled.
  [[nodiscard]] ResultCache::Stats cache_stats() const;
  /// Durable-store counters; zeros when persistence is disabled.
  [[nodiscard]] persist::DurableStore::Stats persist_stats() const;
  /// Forces a snapshot + journal rotation now (persistence must be
  /// enabled). Throws persist::PersistError on IO failure.
  void flush_persistence();

  /// Applies one replicated cache record (the bytes a peer's
  /// on_cache_insert produced). Decodes and restores it into the result
  /// cache -- after which a duplicate of the original request answers
  /// as an exact hit, byte-identical to the origin's response. Does NOT
  /// re-publish through on_cache_insert (the origin pushes to the full
  /// peer set) and does not journal eagerly (the next snapshot exports
  /// it). Returns false -- and counts repl_apply_errors -- on a
  /// malformed record or when the cache is disabled; never throws.
  bool apply_replicated_record(std::string_view payload);

  /// Evicts every TTL-expired cache entry now; returns how many were
  /// dropped. Runs automatically before each persistence snapshot; this
  /// entry point serves cacheless-persistence setups and tests.
  std::size_t sweep_expired();
  [[nodiscard]] std::size_t thread_count() const {
    return pool_.thread_count();
  }

private:
  struct Ticket;  // one admitted request's state

  void run(Ticket& ticket);
  [[nodiscard]] SchedulingResponse solve(const SchedulingRequest& request);
  [[nodiscard]] bool acquire_tenant_slot(const std::string& tenant);
  void release_tenant_slot(const std::string& tenant);

  const ServiceConfig config_;  // immutable after construction
  const sched::SolverRegistry& registry_;
  /// Set once in the constructor, then only called (std::function call
  /// through a const path is safe for concurrent use).
  MEDCC_NOT_GUARDED std::function<std::chrono::steady_clock::time_point()>
      clock_;
  /// Internally synchronized (atomic counters + SharedMutex).
  MEDCC_NOT_GUARDED MetricsRegistry metrics_;
  /// Pointer set once in the constructor; the cache itself is sharded
  /// and internally locked.
  MEDCC_NOT_GUARDED std::unique_ptr<ResultCache> cache_;
  /// Encoded-frame memo, same ownership discipline as cache_.
  MEDCC_NOT_GUARDED std::unique_ptr<WireCache> wire_cache_;
  /// Durable snapshot + journal behind the cache; internally locked.
  /// Declared before pool_ so workers finish before it is destroyed.
  MEDCC_NOT_GUARDED std::unique_ptr<persist::DurableStore> store_;
  std::atomic<bool> accepting_{true};
  /// Admitted-but-not-yet-running requests (the bounded queue).
  std::atomic<std::size_t> pending_{0};
  /// Admitted-or-solving requests per tenant (quota accounting).
  util::Mutex tenant_mutex_;
  std::unordered_map<std::string, std::size_t> tenant_inflight_
      MEDCC_GUARDED_BY(tenant_mutex_);
  /// Internally synchronized worker pool.
  MEDCC_NOT_GUARDED util::ThreadPool pool_;  // last member: joined first
};

}  // namespace medcc::service
