#include "service/persistence.hpp"

#include <cstdint>
#include <vector>

#include "persist/wire.hpp"

namespace medcc::service {

namespace {

void put_f64_vector(persist::Writer& w, const std::vector<double>& v) {
  w.u32(static_cast<std::uint32_t>(v.size()));
  for (const double x : v) w.f64(x);
}

void put_index_vector(persist::Writer& w, const std::vector<std::size_t>& v) {
  w.u32(static_cast<std::uint32_t>(v.size()));
  for (const std::size_t x : v) w.u64(x);
}

std::vector<double> get_f64_vector(persist::Reader& r) {
  const std::uint32_t count = r.u32();
  r.expect_fits(count, sizeof(double));
  std::vector<double> v;
  v.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) v.push_back(r.f64());
  return v;
}

std::vector<std::size_t> get_index_vector(persist::Reader& r,
                                          std::size_t max_count) {
  const std::uint32_t count = r.u32();
  if (count > max_count)
    throw persist::PersistError("cache record: index vector too long");
  r.expect_fits(count, sizeof(std::uint64_t));
  std::vector<std::size_t> v;
  v.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i)
    v.push_back(static_cast<std::size_t>(r.u64()));
  return v;
}

}  // namespace

std::string encode_cache_record(const CacheEntry& entry) {
  persist::Writer w;
  w.u16(kCacheRecordVersion);
  w.u64(entry.key.hi);
  w.u64(entry.key.lo);
  w.u64(entry.exact);
  w.str(entry.solver);
  w.u8(entry.remappable ? 1 : 0);
  w.u64(entry.hits);

  const sched::Result& result = entry.result;
  w.u64(result.iterations);
  w.f64(result.eval.med);
  w.f64(result.eval.cost);
  put_index_vector(w, result.schedule.type_of);

  const dag::CpmResult& cpm = result.eval.cpm;
  put_f64_vector(w, cpm.est);
  put_f64_vector(w, cpm.eft);
  put_f64_vector(w, cpm.lst);
  put_f64_vector(w, cpm.lft);
  put_f64_vector(w, cpm.buffer);
  w.u32(static_cast<std::uint32_t>(cpm.critical.size()));
  for (const bool c : cpm.critical) w.u8(c ? 1 : 0);
  put_index_vector(w, cpm.critical_path);
  w.f64(cpm.makespan);

  w.u32(static_cast<std::uint32_t>(entry.assignment.size()));
  for (const auto& [label, type] : entry.assignment) {
    w.u64(label);
    w.u64(type);
  }
  return w.take();
}

CacheEntry decode_cache_record(std::string_view payload) {
  persist::Reader r(payload);
  const std::uint16_t version = r.u16();
  if (version != kCacheRecordVersion)
    throw persist::PersistError("cache record: unsupported payload version " +
                                std::to_string(version));

  CacheEntry entry;
  entry.key.hi = r.u64();
  entry.key.lo = r.u64();
  entry.exact = r.u64();
  entry.solver = r.str(kMaxPersistedString);
  entry.remappable = r.u8() != 0;
  entry.hits = r.u64();

  sched::Result& result = entry.result;
  result.iterations = static_cast<std::size_t>(r.u64());
  result.eval.med = r.f64();
  result.eval.cost = r.f64();
  result.schedule.type_of = get_index_vector(r, kMaxPersistedModules);

  dag::CpmResult& cpm = result.eval.cpm;
  cpm.est = get_f64_vector(r);
  cpm.eft = get_f64_vector(r);
  cpm.lst = get_f64_vector(r);
  cpm.lft = get_f64_vector(r);
  cpm.buffer = get_f64_vector(r);
  const std::uint32_t critical_count = r.u32();
  r.expect_fits(critical_count, 1);
  cpm.critical.reserve(critical_count);
  for (std::uint32_t i = 0; i < critical_count; ++i)
    cpm.critical.push_back(r.u8() != 0);
  cpm.critical_path = get_index_vector(r, kMaxPersistedModules);
  cpm.makespan = r.f64();

  const std::uint32_t assignment_count = r.u32();
  if (assignment_count > kMaxPersistedModules)
    throw persist::PersistError("cache record: assignment too long");
  r.expect_fits(assignment_count, 2 * sizeof(std::uint64_t));
  entry.assignment.reserve(assignment_count);
  for (std::uint32_t i = 0; i < assignment_count; ++i) {
    const std::uint64_t label = r.u64();
    const std::uint64_t type = r.u64();
    entry.assignment.emplace_back(label, type);
  }
  r.expect_done();
  return entry;
}

}  // namespace medcc::service
