// Codec between ResultCache entries and the opaque record payloads the
// persistence subsystem (src/persist) snapshots and journals.
//
// The payload carries the FULL cache entry -- key, exact hash, solver
// id, the complete sched::Result including the CPM timing detail
// (doubles via their IEEE-754 bit pattern), the re-mapping assignment,
// and hit metadata -- so a warmed entry answers an exact hit
// byte-identically to the live solve that produced it, in-process and
// over the wire.
//
// Decoding follows the bounds-checked discipline of persist::Reader:
// element counts are validated against the remaining bytes before any
// allocation, strings are length-capped, and every malformed shape
// throws persist::PersistError. A payload whose version is newer than
// this build also throws, so warm start skips it (counted as a load
// error) instead of misreading it.
#pragma once

#include <string>
#include <string_view>

#include "service/cache.hpp"

namespace medcc::service {

/// Version of the cache-record payload this build writes.
inline constexpr std::uint16_t kCacheRecordVersion = 1;

/// Decode guards (far above anything the service accepts today).
inline constexpr std::size_t kMaxPersistedModules = 1u << 20;
inline constexpr std::size_t kMaxPersistedString = 1u << 16;

/// Serializes one cache entry into a self-contained record payload.
[[nodiscard]] std::string encode_cache_record(const CacheEntry& entry);

/// Parses a record payload. Throws persist::PersistError on any
/// malformed or future-versioned payload.
[[nodiscard]] CacheEntry decode_cache_record(std::string_view payload);

}  // namespace medcc::service
