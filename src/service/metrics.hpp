// Metrics registry of the scheduling service: lock-free atomic counters
// on the request path plus fixed-bucket latency histograms, with a text
// dump for tables and a CSV dump for downstream plotting.
//
// Counters are monotonically increasing totals; queue depth is a gauge
// maintained by the service. Every counter bumped on the request path
// is a util::PaddedAtomic -- a relaxed atomic alone on its cache line
// -- so concurrent requests on different cores never false-share a
// line. Latency histograms use 40 exponential buckets from 1
// microsecond up (factor 2), recorded in seconds into per-thread
// shards that are folded only at snapshot time; p50/p95/p99/p999 are
// estimated from bucket counts with util::Histogram's mid-point rank
// interpolation, so a percentile is accurate to within one bucket
// width (~2x at the recorded magnitude).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "service/request.hpp"
#include "util/mutex.hpp"
#include "util/padded.hpp"
#include "util/stats.hpp"

namespace medcc::service {

/// Thread-safe fixed-bucket latency accumulator (seconds). Writers are
/// sharded by thread so concurrent record() calls from different
/// threads usually touch distinct cache lines; snapshot() folds the
/// shards into one histogram.
class LatencyRecorder {
public:
  LatencyRecorder();

  void record(double seconds);

  /// Folds the per-thread shards into an immutable util::Histogram
  /// (empty histogram when nothing was recorded yet).
  [[nodiscard]] util::Histogram snapshot() const;

  [[nodiscard]] std::uint64_t count() const;

private:
  struct alignas(util::kCacheLineSize) Shard {
    std::vector<std::atomic<std::uint64_t>> buckets;
    std::atomic<std::uint64_t> count{0};
  };

  const std::vector<double> edges_;  // immutable after construction
  /// Sized once in the constructor; only the atomics mutate after.
  std::vector<Shard> shards_;
};

class MetricsRegistry {
public:
  /// One immutable view of every metric, taken atomically enough for
  /// monitoring (individual counters are exact; cross-counter skew is
  /// bounded by in-flight requests).
  struct Snapshot {
    std::uint64_t requests_total = 0;
    std::uint64_t responses_ok = 0;
    std::uint64_t responses_failed = 0;
    std::uint64_t cache_hits_exact = 0;
    std::uint64_t cache_hits_isomorphic = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t cache_bypass = 0;
    std::uint64_t wire_fastpath_hits = 0;
    std::uint64_t wire_fastpath_misses = 0;
    std::uint64_t rejected_queue_full = 0;
    std::uint64_t rejected_shutting_down = 0;
    std::uint64_t rejected_deadline = 0;
    std::uint64_t rejected_unknown_solver = 0;
    std::uint64_t rejected_invalid = 0;
    std::uint64_t tenant_quota_rejections = 0;
    std::uint64_t rejected_flow_control = 0;
    std::int64_t queue_depth = 0;
    std::int64_t queue_depth_peak = 0;
    std::uint64_t persist_loaded_entries = 0;
    std::uint64_t persist_load_errors = 0;
    std::uint64_t persist_journal_appends = 0;
    std::uint64_t persist_replay_truncations = 0;
    std::uint64_t persist_flushes = 0;
    std::uint64_t cache_expired = 0;
    std::uint64_t repl_applied = 0;
    std::uint64_t repl_apply_errors = 0;
    std::map<std::string, std::uint64_t> per_solver;
    /// Per-solver end-to-end solve latency (seconds), keyed like
    /// per_solver; only solvers that completed at least one request
    /// appear.
    std::map<std::string, util::Histogram> per_solver_latency;
    util::Histogram queue_delay;   ///< seconds spent queued
    util::Histogram solve;         ///< seconds in the solver / cache path
    util::Histogram total;         ///< admission-to-response seconds
    util::Histogram persist_load;  ///< warm-start load seconds
    util::Histogram persist_flush; ///< snapshot flush seconds

    Snapshot(util::Histogram queue_delay_hist, util::Histogram solve_hist,
             util::Histogram total_hist, util::Histogram persist_load_hist,
             util::Histogram persist_flush_hist)
        : queue_delay(std::move(queue_delay_hist)),
          solve(std::move(solve_hist)),
          total(std::move(total_hist)),
          persist_load(std::move(persist_load_hist)),
          persist_flush(std::move(persist_flush_hist)) {}

    /// hits / (hits + misses); 0 when the cache saw no traffic.
    [[nodiscard]] double cache_hit_rate() const;
  };

  void count_request(std::string_view solver);
  void count_response(const SchedulingResponse& response);
  void record_queue_delay(double seconds) { queue_delay_.record(seconds); }
  void record_solve(double seconds) { solve_.record(seconds); }
  void record_total(double seconds) { total_.record(seconds); }
  /// Per-solver latency breakdown (the solver that actually answered,
  /// so cache hits count toward the solver whose result they reused).
  void record_solver_latency(std::string_view solver, double seconds);

  /// Encoded-frame fast-path outcome, driven by the network server's
  /// WireCache lookups (such requests never reach the solver path, so
  /// they are visible only through these two counters).
  void note_wire_fastpath(bool hit) {
    if (hit) {
      wire_fastpath_hits_.add();
    } else {
      wire_fastpath_misses_.add();
    }
  }

  /// Persistence counters, driven by the service's warm-start path and
  /// the durable store's flush callback.
  void add_persist_loaded(std::uint64_t n) { persist_loaded_entries_.add(n); }
  void persist_load_error() { persist_load_errors_.add(); }
  void persist_append() { persist_journal_appends_.add(); }
  void add_persist_truncations(std::uint64_t n) {
    persist_replay_truncations_.add(n);
  }
  void persist_flush(double seconds) {
    persist_flushes_.add();
    persist_flush_.record(seconds);
  }
  void record_persist_load(double seconds) { persist_load_.record(seconds); }

  /// TTL expiries (lazy find() drops plus sweep batches).
  void add_cache_expired(std::uint64_t n) { cache_expired_.add(n); }

  /// Replication counters, driven by apply_replicated_record().
  void repl_applied() { repl_applied_.add(); }
  void repl_apply_error() { repl_apply_errors_.add(); }

  /// Queue-depth gauge, driven by the service's admission/dispatch path.
  void queue_entered();
  void queue_left();
  [[nodiscard]] std::int64_t queue_depth() const {
    return queue_depth_.load();
  }

  [[nodiscard]] Snapshot snapshot() const;

  /// "name value" lines plus p50/p95/p99/p999 summaries, for logs and
  /// tables.
  [[nodiscard]] std::string dump_text() const;
  /// "metric,value" lines with a header, for CSV consumers.
  [[nodiscard]] std::string dump_csv() const;
  /// Prometheus text exposition format (# HELP/# TYPE lines, counters
  /// suffixed _total, histograms as cumulative le-buckets); scrapeable
  /// via the stats frame (StatsFormat::prometheus) or --metrics-dump.
  [[nodiscard]] std::string dump_prometheus() const;

private:
  util::PaddedAtomic<std::uint64_t> requests_total_;
  util::PaddedAtomic<std::uint64_t> responses_ok_;
  util::PaddedAtomic<std::uint64_t> responses_failed_;
  util::PaddedAtomic<std::uint64_t> cache_hits_exact_;
  util::PaddedAtomic<std::uint64_t> cache_hits_isomorphic_;
  util::PaddedAtomic<std::uint64_t> cache_misses_;
  util::PaddedAtomic<std::uint64_t> cache_bypass_;
  util::PaddedAtomic<std::uint64_t> wire_fastpath_hits_;
  util::PaddedAtomic<std::uint64_t> wire_fastpath_misses_;
  util::PaddedAtomic<std::uint64_t> rejected_queue_full_;
  util::PaddedAtomic<std::uint64_t> rejected_shutting_down_;
  util::PaddedAtomic<std::uint64_t> rejected_deadline_;
  util::PaddedAtomic<std::uint64_t> rejected_unknown_solver_;
  util::PaddedAtomic<std::uint64_t> rejected_invalid_;
  util::PaddedAtomic<std::uint64_t> tenant_quota_rejections_;
  util::PaddedAtomic<std::uint64_t> rejected_flow_control_;
  util::PaddedAtomic<std::int64_t> queue_depth_;
  util::PaddedAtomic<std::int64_t> queue_depth_peak_;
  util::PaddedAtomic<std::uint64_t> persist_loaded_entries_;
  util::PaddedAtomic<std::uint64_t> persist_load_errors_;
  util::PaddedAtomic<std::uint64_t> persist_journal_appends_;
  util::PaddedAtomic<std::uint64_t> persist_replay_truncations_;
  util::PaddedAtomic<std::uint64_t> persist_flushes_;
  util::PaddedAtomic<std::uint64_t> cache_expired_;
  util::PaddedAtomic<std::uint64_t> repl_applied_;
  util::PaddedAtomic<std::uint64_t> repl_apply_errors_;

  mutable util::SharedMutex per_solver_mutex_;
  /// The map structure is guarded; the pointed-to counters are atomics,
  /// bumped under a shared lock.
  std::map<std::string, std::unique_ptr<std::atomic<std::uint64_t>>,
           std::less<>>
      per_solver_ MEDCC_GUARDED_BY(per_solver_mutex_);
  /// Same double-checked discipline as per_solver_: the map structure
  /// is guarded, each LatencyRecorder is internally synchronized and
  /// recorded into under a shared lock.
  std::map<std::string, std::unique_ptr<LatencyRecorder>, std::less<>>
      per_solver_latency_ MEDCC_GUARDED_BY(per_solver_mutex_);

  /// Internally synchronized (atomic buckets).
  MEDCC_NOT_GUARDED LatencyRecorder queue_delay_;
  MEDCC_NOT_GUARDED LatencyRecorder solve_;
  MEDCC_NOT_GUARDED LatencyRecorder total_;
  MEDCC_NOT_GUARDED LatencyRecorder persist_load_;
  MEDCC_NOT_GUARDED LatencyRecorder persist_flush_;
};

}  // namespace medcc::service
