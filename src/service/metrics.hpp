// Metrics registry of the scheduling service: lock-free atomic counters
// on the request path plus fixed-bucket latency histograms, with a text
// dump for tables and a CSV dump for downstream plotting.
//
// Counters are monotonically increasing totals; queue depth is a gauge
// maintained by the service. Latency histograms use 40 exponential
// buckets from 1 microsecond up (factor 2), recorded in seconds; p50/p95/
// p99 are estimated from bucket counts with util::Histogram's mid-point
// rank interpolation, so a percentile is accurate to within one bucket
// width (~2x at the recorded magnitude).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "service/request.hpp"
#include "util/mutex.hpp"
#include "util/stats.hpp"

namespace medcc::service {

/// Thread-safe fixed-bucket latency accumulator (seconds).
class LatencyRecorder {
public:
  LatencyRecorder();

  void record(double seconds);

  /// Copies the atomic bucket counts into an immutable util::Histogram
  /// (empty histogram when nothing was recorded yet).
  [[nodiscard]] util::Histogram snapshot() const;

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

private:
  const std::vector<double> edges_;  // immutable after construction
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
};

class MetricsRegistry {
public:
  /// One immutable view of every metric, taken atomically enough for
  /// monitoring (individual counters are exact; cross-counter skew is
  /// bounded by in-flight requests).
  struct Snapshot {
    std::uint64_t requests_total = 0;
    std::uint64_t responses_ok = 0;
    std::uint64_t responses_failed = 0;
    std::uint64_t cache_hits_exact = 0;
    std::uint64_t cache_hits_isomorphic = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t cache_bypass = 0;
    std::uint64_t rejected_queue_full = 0;
    std::uint64_t rejected_shutting_down = 0;
    std::uint64_t rejected_deadline = 0;
    std::uint64_t rejected_unknown_solver = 0;
    std::uint64_t rejected_invalid = 0;
    std::uint64_t tenant_quota_rejections = 0;
    std::int64_t queue_depth = 0;
    std::int64_t queue_depth_peak = 0;
    std::uint64_t persist_loaded_entries = 0;
    std::uint64_t persist_load_errors = 0;
    std::uint64_t persist_journal_appends = 0;
    std::uint64_t persist_replay_truncations = 0;
    std::uint64_t persist_flushes = 0;
    std::map<std::string, std::uint64_t> per_solver;
    util::Histogram queue_delay;   ///< seconds spent queued
    util::Histogram solve;         ///< seconds in the solver / cache path
    util::Histogram total;         ///< admission-to-response seconds
    util::Histogram persist_load;  ///< warm-start load seconds
    util::Histogram persist_flush; ///< snapshot flush seconds

    Snapshot(util::Histogram queue_delay_hist, util::Histogram solve_hist,
             util::Histogram total_hist, util::Histogram persist_load_hist,
             util::Histogram persist_flush_hist)
        : queue_delay(std::move(queue_delay_hist)),
          solve(std::move(solve_hist)),
          total(std::move(total_hist)),
          persist_load(std::move(persist_load_hist)),
          persist_flush(std::move(persist_flush_hist)) {}

    /// hits / (hits + misses); 0 when the cache saw no traffic.
    [[nodiscard]] double cache_hit_rate() const;
  };

  void count_request(std::string_view solver);
  void count_response(const SchedulingResponse& response);
  void record_queue_delay(double seconds) { queue_delay_.record(seconds); }
  void record_solve(double seconds) { solve_.record(seconds); }
  void record_total(double seconds) { total_.record(seconds); }

  /// Persistence counters, driven by the service's warm-start path and
  /// the durable store's flush callback.
  void add_persist_loaded(std::uint64_t n) {
    persist_loaded_entries_.fetch_add(n, std::memory_order_relaxed);
  }
  void persist_load_error() {
    persist_load_errors_.fetch_add(1, std::memory_order_relaxed);
  }
  void persist_append() {
    persist_journal_appends_.fetch_add(1, std::memory_order_relaxed);
  }
  void add_persist_truncations(std::uint64_t n) {
    persist_replay_truncations_.fetch_add(n, std::memory_order_relaxed);
  }
  void persist_flush(double seconds) {
    persist_flushes_.fetch_add(1, std::memory_order_relaxed);
    persist_flush_.record(seconds);
  }
  void record_persist_load(double seconds) { persist_load_.record(seconds); }

  /// Queue-depth gauge, driven by the service's admission/dispatch path.
  void queue_entered();
  void queue_left();
  [[nodiscard]] std::int64_t queue_depth() const {
    return queue_depth_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] Snapshot snapshot() const;

  /// "name value" lines plus p50/p95/p99 summaries, for logs and tables.
  [[nodiscard]] std::string dump_text() const;
  /// "metric,value" lines with a header, for CSV consumers.
  [[nodiscard]] std::string dump_csv() const;

private:
  std::atomic<std::uint64_t> requests_total_{0};
  std::atomic<std::uint64_t> responses_ok_{0};
  std::atomic<std::uint64_t> responses_failed_{0};
  std::atomic<std::uint64_t> cache_hits_exact_{0};
  std::atomic<std::uint64_t> cache_hits_isomorphic_{0};
  std::atomic<std::uint64_t> cache_misses_{0};
  std::atomic<std::uint64_t> cache_bypass_{0};
  std::atomic<std::uint64_t> rejected_queue_full_{0};
  std::atomic<std::uint64_t> rejected_shutting_down_{0};
  std::atomic<std::uint64_t> rejected_deadline_{0};
  std::atomic<std::uint64_t> rejected_unknown_solver_{0};
  std::atomic<std::uint64_t> rejected_invalid_{0};
  std::atomic<std::uint64_t> tenant_quota_rejections_{0};
  std::atomic<std::int64_t> queue_depth_{0};
  std::atomic<std::int64_t> queue_depth_peak_{0};
  std::atomic<std::uint64_t> persist_loaded_entries_{0};
  std::atomic<std::uint64_t> persist_load_errors_{0};
  std::atomic<std::uint64_t> persist_journal_appends_{0};
  std::atomic<std::uint64_t> persist_replay_truncations_{0};
  std::atomic<std::uint64_t> persist_flushes_{0};

  mutable util::SharedMutex per_solver_mutex_;
  /// The map structure is guarded; the pointed-to counters are atomics,
  /// bumped under a shared lock.
  std::map<std::string, std::unique_ptr<std::atomic<std::uint64_t>>,
           std::less<>>
      per_solver_ MEDCC_GUARDED_BY(per_solver_mutex_);

  /// Internally synchronized (atomic buckets).
  MEDCC_NOT_GUARDED LatencyRecorder queue_delay_;
  MEDCC_NOT_GUARDED LatencyRecorder solve_;
  MEDCC_NOT_GUARDED LatencyRecorder total_;
  MEDCC_NOT_GUARDED LatencyRecorder persist_load_;
  MEDCC_NOT_GUARDED LatencyRecorder persist_flush_;
};

}  // namespace medcc::service
