// Encoded-frame memo for the network fast path.
//
// The result cache (service/cache.hpp) memoizes *results*; every exact
// hit still pays request decode, a queue hop, fingerprinting, and
// response re-encode before bytes reach the wire. The WireCache
// memoizes one level lower: it maps the exact bytes of a solve_request
// frame body to the fully encoded solve_response frame, so a verbatim
// duplicate request can be answered by copying cached bytes straight
// into a connection outbuf and patching the request id in the frame
// header -- no decode, no solver, no re-encode.
//
// Entries store a *template* frame: request id 0 and the per-request
// timing fields (queue_delay_ms, solve_ms) zeroed, with the cache
// outcome pinned to hit_exact. Everything else in a response is a pure
// function of the request bytes (solvers are deterministic), so no
// invalidation is needed: the memoized fields are exactly the
// hit-count-independent ones. The frame is held behind a
// shared_ptr<const std::string> so find() hands bytes out without
// copying under the shard lock.
//
// Keys are opaque bytes -- the cache never parses them -- which keeps
// this layer free of any codec dependency. Sharded and internally
// locked like ResultCache; safe from any thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/mutex.hpp"

namespace medcc::service {

class WireCache {
 public:
  struct Config {
    /// Entries across all shards; per-shard LRU eviction.
    std::size_t capacity = 1024;
    std::size_t shards = 8;
    /// Seconds a memoized frame may be served after insertion; 0
    /// disables expiry. Mirrors ResultCache so a TTL-configured service
    /// cannot serve fast-path bytes for an entry the result cache
    /// already dropped.
    std::int64_t ttl_s = 0;
    /// Injectable seconds source (tests); defaults to the steady clock.
    std::function<std::int64_t()> clock{};
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t expired = 0;
    std::size_t size = 0;
  };

  WireCache();
  explicit WireCache(Config config);

  /// Looks up the encoded template frame for the exact request-body
  /// bytes. Refreshes LRU order on hit; nullptr on miss. Equality is
  /// on the full byte string, so hash collisions cannot alias.
  [[nodiscard]] std::shared_ptr<const std::string> find(
      std::string_view request_body);

  /// Memoizes `frame` (an encoded template response, request id 0)
  /// under the request-body bytes, replacing any previous entry and
  /// evicting the shard's LRU tail when full.
  void insert(std::string_view request_body, std::string frame);

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  void clear();

 private:
  struct Entry {
    std::string key;  // exact request-body bytes
    std::shared_ptr<const std::string> frame;
    std::int64_t inserted_at = 0;  // cache-clock seconds
  };
  /// LRU list front = most recent; index views point into Entry::key,
  /// which is stable because list nodes never move.
  struct Shard {
    mutable util::Mutex mutex;
    std::list<Entry> lru MEDCC_GUARDED_BY(mutex);
    std::unordered_map<std::string_view, std::list<Entry>::iterator> index
        MEDCC_GUARDED_BY(mutex);
    std::uint64_t hits MEDCC_GUARDED_BY(mutex) = 0;
    std::uint64_t misses MEDCC_GUARDED_BY(mutex) = 0;
    std::uint64_t insertions MEDCC_GUARDED_BY(mutex) = 0;
    std::uint64_t evictions MEDCC_GUARDED_BY(mutex) = 0;
    std::uint64_t expired MEDCC_GUARDED_BY(mutex) = 0;
  };

  [[nodiscard]] Shard& shard_for(std::string_view key);
  [[nodiscard]] std::int64_t now() const { return clock_(); }

  std::size_t capacity_ = 0;
  std::size_t per_shard_capacity_ = 0;
  std::int64_t ttl_s_ = 0;
  std::function<std::int64_t()> clock_;
  /// Sized in the constructor, then structurally immutable (each shard
  /// locks itself).
  MEDCC_NOT_GUARDED std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace medcc::service
