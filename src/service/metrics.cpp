#include "service/metrics.hpp"

#include <functional>
#include <sstream>
#include <thread>

namespace medcc::service {

namespace {

constexpr double kFirstBucket = 1e-6;  // 1 microsecond
constexpr double kGrowth = 2.0;
constexpr std::size_t kBuckets = 40;   // up to ~1.1e6 seconds
/// Latency shards per recorder. Shard choice is a thread-id hash, so
/// this bounds -- not eliminates -- collisions; 8 shards keep two busy
/// threads apart with high probability without inflating the fold cost.
constexpr std::size_t kLatencyShards = 8;

/// Raises a relaxed atomic maximum.
void raise_peak(util::PaddedAtomic<std::int64_t>& peak, std::int64_t value) {
  std::int64_t seen = peak.load();
  while (seen < value && !peak.compare_exchange_weak(seen, value)) {
  }
}

/// Stable per-thread shard seed, hashed once per thread.
std::size_t thread_shard_seed() {
  thread_local const std::size_t seed =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return seed;
}

}  // namespace

LatencyRecorder::LatencyRecorder()
    : edges_(util::Histogram::exponential(kFirstBucket, kGrowth, kBuckets)
                 .edges()),
      shards_(kLatencyShards) {
  for (Shard& shard : shards_)
    shard.buckets = std::vector<std::atomic<std::uint64_t>>(kBuckets);
}

void LatencyRecorder::record(double seconds) {
  Shard& shard = shards_[thread_shard_seed() % shards_.size()];
  std::size_t b = 0;
  while (b + 1 < shard.buckets.size() && seconds >= edges_[b + 1]) ++b;
  shard.buckets[b].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
}

util::Histogram LatencyRecorder::snapshot() const {
  util::Histogram hist(edges_);
  for (std::size_t b = 0; b < kBuckets; ++b) {
    std::uint64_t n = 0;
    for (const Shard& shard : shards_)
      n += shard.buckets[b].load(std::memory_order_relaxed);
    hist.add_bucket(b, n);
  }
  return hist;
}

std::uint64_t LatencyRecorder::count() const {
  std::uint64_t n = 0;
  for (const Shard& shard : shards_)
    n += shard.count.load(std::memory_order_relaxed);
  return n;
}

double MetricsRegistry::Snapshot::cache_hit_rate() const {
  const std::uint64_t hits = cache_hits_exact + cache_hits_isomorphic;
  const std::uint64_t seen = hits + cache_misses;
  if (seen == 0) return 0.0;
  return static_cast<double>(hits) / static_cast<double>(seen);
}

void MetricsRegistry::count_request(std::string_view solver) {
  requests_total_.add();
  {
    const util::ReaderMutexLock lock(per_solver_mutex_);
    const auto it = per_solver_.find(solver);
    if (it != per_solver_.end()) {
      it->second->fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  const util::WriterMutexLock lock(per_solver_mutex_);
  auto& slot = per_solver_[std::string(solver)];
  if (slot == nullptr)
    slot = std::make_unique<std::atomic<std::uint64_t>>(0);
  slot->fetch_add(1, std::memory_order_relaxed);
}

void MetricsRegistry::count_response(const SchedulingResponse& response) {
  switch (response.status) {
    case ResponseStatus::ok:
      responses_ok_.add();
      break;
    case ResponseStatus::failed:
      responses_failed_.add();
      break;
    case ResponseStatus::rejected:
      switch (response.reject_reason) {
        case RejectReason::queue_full:
          rejected_queue_full_.add();
          break;
        case RejectReason::shutting_down:
          rejected_shutting_down_.add();
          break;
        case RejectReason::deadline_expired:
          rejected_deadline_.add();
          break;
        case RejectReason::unknown_solver:
          rejected_unknown_solver_.add();
          break;
        case RejectReason::tenant_quota:
          tenant_quota_rejections_.add();
          break;
        case RejectReason::flow_control:
          rejected_flow_control_.add();
          break;
        case RejectReason::invalid_request:
        case RejectReason::none:
          rejected_invalid_.add();
          break;
      }
      break;
  }
  if (response.status == ResponseStatus::ok ||
      response.status == ResponseStatus::failed) {
    switch (response.cache) {
      case CacheOutcome::hit_exact:
        cache_hits_exact_.add();
        break;
      case CacheOutcome::hit_isomorphic:
        cache_hits_isomorphic_.add();
        break;
      case CacheOutcome::miss:
        cache_misses_.add();
        break;
      case CacheOutcome::bypass:
        cache_bypass_.add();
        break;
    }
  }
}

void MetricsRegistry::record_solver_latency(std::string_view solver,
                                            double seconds) {
  {
    const util::ReaderMutexLock lock(per_solver_mutex_);
    const auto it = per_solver_latency_.find(solver);
    if (it != per_solver_latency_.end()) {
      it->second->record(seconds);
      return;
    }
  }
  const util::WriterMutexLock lock(per_solver_mutex_);
  auto& slot = per_solver_latency_[std::string(solver)];
  if (slot == nullptr) slot = std::make_unique<LatencyRecorder>();
  slot->record(seconds);
}

void MetricsRegistry::queue_entered() {
  const std::int64_t depth = queue_depth_.fetch_add(1) + 1;
  raise_peak(queue_depth_peak_, depth);
}

void MetricsRegistry::queue_left() { queue_depth_.sub(); }

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  Snapshot s(queue_delay_.snapshot(), solve_.snapshot(), total_.snapshot(),
             persist_load_.snapshot(), persist_flush_.snapshot());
  s.requests_total = requests_total_.load();
  s.responses_ok = responses_ok_.load();
  s.responses_failed = responses_failed_.load();
  s.cache_hits_exact = cache_hits_exact_.load();
  s.cache_hits_isomorphic = cache_hits_isomorphic_.load();
  s.cache_misses = cache_misses_.load();
  s.cache_bypass = cache_bypass_.load();
  s.wire_fastpath_hits = wire_fastpath_hits_.load();
  s.wire_fastpath_misses = wire_fastpath_misses_.load();
  s.rejected_queue_full = rejected_queue_full_.load();
  s.rejected_shutting_down = rejected_shutting_down_.load();
  s.rejected_deadline = rejected_deadline_.load();
  s.rejected_unknown_solver = rejected_unknown_solver_.load();
  s.rejected_invalid = rejected_invalid_.load();
  s.tenant_quota_rejections = tenant_quota_rejections_.load();
  s.rejected_flow_control = rejected_flow_control_.load();
  s.queue_depth = queue_depth_.load();
  s.queue_depth_peak = queue_depth_peak_.load();
  s.persist_loaded_entries = persist_loaded_entries_.load();
  s.persist_load_errors = persist_load_errors_.load();
  s.persist_journal_appends = persist_journal_appends_.load();
  s.persist_replay_truncations = persist_replay_truncations_.load();
  s.persist_flushes = persist_flushes_.load();
  s.cache_expired = cache_expired_.load();
  s.repl_applied = repl_applied_.load();
  s.repl_apply_errors = repl_apply_errors_.load();
  {
    const util::ReaderMutexLock lock(per_solver_mutex_);
    for (const auto& [name, counter] : per_solver_)
      s.per_solver[name] = counter->load(std::memory_order_relaxed);
    for (const auto& [name, recorder] : per_solver_latency_)
      s.per_solver_latency.emplace(name, recorder->snapshot());
  }
  return s;
}

namespace {

void emit(std::ostringstream& out, bool csv, std::string_view name,
          double value) {
  if (csv) {
    out << name << ',' << value << '\n';
  } else {
    out << name << ' ' << value << '\n';
  }
}

void emit(std::ostringstream& out, bool csv, std::string_view name,
          std::uint64_t value) {
  if (csv) {
    out << name << ',' << value << '\n';
  } else {
    out << name << ' ' << value << '\n';
  }
}

void emit_histogram(std::ostringstream& out, bool csv, std::string_view name,
                    const util::Histogram& hist) {
  std::ostringstream prefix;
  prefix << name;
  const std::string base = prefix.str();
  emit(out, csv, base + "_count", hist.count());
  // Suffix spelled explicitly: "p999" means the 99.9th percentile and
  // must not collapse to "p99" through an integer cast of 99.9.
  const std::pair<const char*, double> quantiles[] = {
      {"_p50", 50.0}, {"_p95", 95.0}, {"_p99", 99.0}, {"_p999", 99.9}};
  for (const auto& [suffix, p] : quantiles)
    emit(out, csv, base + suffix, hist.empty() ? 0.0 : hist.quantile(p));
}

std::string render(const MetricsRegistry::Snapshot& s, bool csv) {
  std::ostringstream out;
  if (csv) out << "metric,value\n";
  emit(out, csv, "requests_total", s.requests_total);
  emit(out, csv, "responses_ok", s.responses_ok);
  emit(out, csv, "responses_failed", s.responses_failed);
  emit(out, csv, "cache_hits_exact", s.cache_hits_exact);
  emit(out, csv, "cache_hits_isomorphic", s.cache_hits_isomorphic);
  emit(out, csv, "cache_misses", s.cache_misses);
  emit(out, csv, "cache_bypass", s.cache_bypass);
  emit(out, csv, "cache_hit_rate", s.cache_hit_rate());
  emit(out, csv, "wire_fastpath_hits", s.wire_fastpath_hits);
  emit(out, csv, "wire_fastpath_misses", s.wire_fastpath_misses);
  emit(out, csv, "rejected_queue_full", s.rejected_queue_full);
  emit(out, csv, "rejected_shutting_down", s.rejected_shutting_down);
  emit(out, csv, "rejected_deadline", s.rejected_deadline);
  emit(out, csv, "rejected_unknown_solver", s.rejected_unknown_solver);
  emit(out, csv, "rejected_invalid", s.rejected_invalid);
  emit(out, csv, "tenant_quota_rejections", s.tenant_quota_rejections);
  emit(out, csv, "rejected_flow_control", s.rejected_flow_control);
  emit(out, csv, "queue_depth",
       static_cast<std::uint64_t>(std::max<std::int64_t>(0, s.queue_depth)));
  emit(out, csv, "queue_depth_peak",
       static_cast<std::uint64_t>(
           std::max<std::int64_t>(0, s.queue_depth_peak)));
  emit(out, csv, "persist_loaded_entries", s.persist_loaded_entries);
  emit(out, csv, "persist_load_errors", s.persist_load_errors);
  emit(out, csv, "persist_journal_appends", s.persist_journal_appends);
  emit(out, csv, "persist_replay_truncations", s.persist_replay_truncations);
  emit(out, csv, "persist_flushes", s.persist_flushes);
  emit(out, csv, "cache_expired", s.cache_expired);
  emit(out, csv, "repl_applied", s.repl_applied);
  emit(out, csv, "repl_apply_errors", s.repl_apply_errors);
  for (const auto& [name, count] : s.per_solver)
    emit(out, csv, "requests_solver_" + name, count);
  emit_histogram(out, csv, "latency_queue_seconds", s.queue_delay);
  emit_histogram(out, csv, "latency_solve_seconds", s.solve);
  emit_histogram(out, csv, "latency_total_seconds", s.total);
  for (const auto& [name, hist] : s.per_solver_latency)
    emit_histogram(out, csv, "latency_solver_" + name + "_seconds", hist);
  emit_histogram(out, csv, "persist_load_seconds", s.persist_load);
  emit_histogram(out, csv, "persist_flush_seconds", s.persist_flush);
  return out.str();
}

// -- Prometheus text exposition -------------------------------------------

/// Formats a double the way Prometheus expects ("+Inf" aside, plain
/// shortest-round-trip is fine; exposition parsers accept any Go-style
/// float).
void prom_metric(std::ostringstream& out, std::string_view name,
                 std::string_view help, std::string_view type) {
  out << "# HELP " << name << ' ' << help << '\n'
      << "# TYPE " << name << ' ' << type << '\n';
}

void prom_counter(std::ostringstream& out, std::string_view name,
                  std::string_view help, std::uint64_t value,
                  std::string_view labels = {}) {
  prom_metric(out, name, help, "counter");
  out << name << labels << ' ' << value << '\n';
}

void prom_gauge(std::ostringstream& out, std::string_view name,
                std::string_view help, double value) {
  prom_metric(out, name, help, "gauge");
  out << name << ' ' << value << '\n';
}

/// One histogram as cumulative le-buckets. `labels` is the inner label
/// list without braces ("" or `solver="cg"`). The _sum series is
/// approximated from bucket midpoints (the recorder keeps counts, not
/// sums); the relative error is bounded by the bucket growth factor.
/// Interior zero-delta buckets are skipped -- the cumulative form
/// loses nothing by omission and the page stays small.
void prom_histogram(std::ostringstream& out, std::string_view name,
                    std::string_view help, const util::Histogram& hist,
                    std::string_view labels = {}, bool header = true) {
  if (header) prom_metric(out, name, help, "histogram");
  const std::string bucket_open =
      labels.empty() ? std::string("{")
                     : "{" + std::string(labels) + ",";
  const std::string plain =
      labels.empty() ? std::string() : "{" + std::string(labels) + "}";
  const auto& edges = hist.edges();
  std::uint64_t cumulative = 0;
  double sum = 0.0;
  for (std::size_t b = 0; b < hist.bucket_count(); ++b) {
    cumulative += hist.bucket(b);
    sum += static_cast<double>(hist.bucket(b)) *
           (edges[b] + edges[b + 1]) / 2.0;
    if (hist.bucket(b) == 0) continue;
    out << name << "_bucket" << bucket_open << "le=\"" << edges[b + 1]
        << "\"} " << cumulative << '\n';
  }
  out << name << "_bucket" << bucket_open << "le=\"+Inf\"} " << hist.count()
      << '\n'
      << name << "_sum" << plain << ' ' << sum << '\n'
      << name << "_count" << plain << ' ' << hist.count() << '\n';
}

std::string render_prometheus(const MetricsRegistry::Snapshot& s) {
  std::ostringstream out;
  prom_counter(out, "medcc_requests_total", "Requests admitted or rejected",
               s.requests_total);
  prom_metric(out, "medcc_responses_total", "Responses by outcome", "counter");
  out << "medcc_responses_total{status=\"ok\"} " << s.responses_ok << '\n'
      << "medcc_responses_total{status=\"failed\"} " << s.responses_failed
      << '\n';
  prom_metric(out, "medcc_cache_events_total", "Result-cache outcomes",
              "counter");
  out << "medcc_cache_events_total{outcome=\"hit_exact\"} "
      << s.cache_hits_exact << '\n'
      << "medcc_cache_events_total{outcome=\"hit_isomorphic\"} "
      << s.cache_hits_isomorphic << '\n'
      << "medcc_cache_events_total{outcome=\"miss\"} " << s.cache_misses
      << '\n'
      << "medcc_cache_events_total{outcome=\"bypass\"} " << s.cache_bypass
      << '\n'
      << "medcc_cache_events_total{outcome=\"expired\"} " << s.cache_expired
      << '\n';
  prom_metric(out, "medcc_wire_fastpath_total",
              "Wire-cache zero-copy fast path outcomes", "counter");
  out << "medcc_wire_fastpath_total{outcome=\"hit\"} " << s.wire_fastpath_hits
      << '\n'
      << "medcc_wire_fastpath_total{outcome=\"miss\"} "
      << s.wire_fastpath_misses << '\n';
  prom_metric(out, "medcc_rejected_total", "Rejections by reason", "counter");
  out << "medcc_rejected_total{reason=\"queue_full\"} "
      << s.rejected_queue_full << '\n'
      << "medcc_rejected_total{reason=\"shutting_down\"} "
      << s.rejected_shutting_down << '\n'
      << "medcc_rejected_total{reason=\"deadline_expired\"} "
      << s.rejected_deadline << '\n'
      << "medcc_rejected_total{reason=\"unknown_solver\"} "
      << s.rejected_unknown_solver << '\n'
      << "medcc_rejected_total{reason=\"invalid_request\"} "
      << s.rejected_invalid << '\n'
      << "medcc_rejected_total{reason=\"tenant_quota\"} "
      << s.tenant_quota_rejections << '\n'
      << "medcc_rejected_total{reason=\"flow_control\"} "
      << s.rejected_flow_control << '\n';
  prom_gauge(out, "medcc_queue_depth", "Requests currently queued",
             static_cast<double>(std::max<std::int64_t>(0, s.queue_depth)));
  prom_gauge(out, "medcc_queue_depth_peak", "High-water queue depth",
             static_cast<double>(
                 std::max<std::int64_t>(0, s.queue_depth_peak)));
  prom_counter(out, "medcc_persist_loaded_entries_total",
               "Cache entries warm-started from the durable store",
               s.persist_loaded_entries);
  prom_counter(out, "medcc_persist_load_errors_total",
               "Warm-start load failures", s.persist_load_errors);
  prom_counter(out, "medcc_persist_journal_appends_total",
               "Journal appends", s.persist_journal_appends);
  prom_counter(out, "medcc_persist_replay_truncations_total",
               "Torn journal tails cut at replay",
               s.persist_replay_truncations);
  prom_counter(out, "medcc_persist_flushes_total", "Snapshot flushes",
               s.persist_flushes);
  prom_counter(out, "medcc_repl_applied_total",
               "Replicated records applied from peers", s.repl_applied);
  prom_counter(out, "medcc_repl_apply_errors_total",
               "Replicated records that failed to apply",
               s.repl_apply_errors);
  prom_metric(out, "medcc_requests_by_solver_total", "Requests per solver",
              "counter");
  for (const auto& [name, count] : s.per_solver)
    out << "medcc_requests_by_solver_total{solver=\"" << name << "\"} "
        << count << '\n';
  prom_histogram(out, "medcc_latency_queue_seconds",
                 "Admission-queue wait", s.queue_delay);
  prom_histogram(out, "medcc_latency_solve_seconds",
                 "Solver / cache-path execution", s.solve);
  prom_histogram(out, "medcc_latency_total_seconds",
                 "Admission-to-response latency", s.total);
  prom_metric(out, "medcc_latency_by_solver_seconds",
              "Per-solver solve latency", "histogram");
  for (const auto& [name, hist] : s.per_solver_latency)
    prom_histogram(out, "medcc_latency_by_solver_seconds", "", hist,
                   "solver=\"" + name + "\"", /*header=*/false);
  prom_histogram(out, "medcc_persist_load_seconds", "Warm-start load time",
                 s.persist_load);
  prom_histogram(out, "medcc_persist_flush_seconds", "Snapshot flush time",
                 s.persist_flush);
  return out.str();
}

}  // namespace

std::string MetricsRegistry::dump_text() const {
  return render(snapshot(), /*csv=*/false);
}

std::string MetricsRegistry::dump_csv() const {
  return render(snapshot(), /*csv=*/true);
}

std::string MetricsRegistry::dump_prometheus() const {
  return render_prometheus(snapshot());
}

}  // namespace medcc::service
