#include "service/wire_cache.hpp"

#include <algorithm>
#include <chrono>
#include <functional>
#include <utility>

namespace medcc::service {

namespace {

std::int64_t steady_seconds() {
  return std::chrono::duration_cast<std::chrono::seconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

WireCache::WireCache() : WireCache(Config()) {}

WireCache::WireCache(Config config)
    : ttl_s_(config.ttl_s),
      clock_(config.clock ? std::move(config.clock) : steady_seconds) {
  capacity_ = std::max<std::size_t>(1, config.capacity);
  const std::size_t shard_count =
      std::max<std::size_t>(1, std::min(config.shards, capacity_));
  per_shard_capacity_ = (capacity_ + shard_count - 1) / shard_count;
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

WireCache::Shard& WireCache::shard_for(std::string_view key) {
  return *shards_[std::hash<std::string_view>{}(key) % shards_.size()];
}

std::shared_ptr<const std::string> WireCache::find(
    std::string_view request_body) {
  Shard& shard = shard_for(request_body);
  const std::int64_t at = now();
  const util::MutexLock lock(shard.mutex);
  const auto it = shard.index.find(request_body);
  if (it == shard.index.end()) {
    ++shard.misses;
    return nullptr;
  }
  if (ttl_s_ > 0 && at - it->second->inserted_at >= ttl_s_) {
    shard.lru.erase(it->second);
    shard.index.erase(it);
    ++shard.expired;
    ++shard.misses;
    return nullptr;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->frame;
}

void WireCache::insert(std::string_view request_body, std::string frame) {
  auto shared = std::make_shared<const std::string>(std::move(frame));
  Shard& shard = shard_for(request_body);
  const std::int64_t at = now();
  const util::MutexLock lock(shard.mutex);
  const auto it = shard.index.find(request_body);
  if (it != shard.index.end()) {
    it->second->frame = std::move(shared);
    it->second->inserted_at = at;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{std::string(request_body), std::move(shared), at});
  shard.index.emplace(std::string_view(shard.lru.front().key),
                      shard.lru.begin());
  ++shard.insertions;
  if (shard.lru.size() > per_shard_capacity_) {
    shard.index.erase(std::string_view(shard.lru.back().key));
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

WireCache::Stats WireCache::stats() const {
  Stats total;
  for (const auto& shard : shards_) {
    const util::MutexLock lock(shard->mutex);
    total.hits += shard->hits;
    total.misses += shard->misses;
    total.insertions += shard->insertions;
    total.evictions += shard->evictions;
    total.expired += shard->expired;
    total.size += shard->lru.size();
  }
  return total;
}

void WireCache::clear() {
  for (const auto& shard : shards_) {
    const util::MutexLock lock(shard->mutex);
    shard->index.clear();
    shard->lru.clear();
  }
}

}  // namespace medcc::service
