// Sharded LRU result cache keyed by canonical instance fingerprints.
//
// Entries are stored under the 128-bit order-independent key, so both
// verbatim duplicates and permuted duplicates of an earlier request hit.
// The two kinds are served differently:
//
//  * exact hit (the stored order-dependent hash also matches): the stored
//    Result is returned verbatim -- byte-identical to the fresh solve
//    that produced it.
//  * isomorphic hit (canonical key matches, layout differs): the stored
//    assignment is carried across as {module label -> assigned type hash}
//    pairs and re-indexed through the requesting instance's own labels.
//    This is only attempted when every module label and every type hash
//    is pairwise distinct on BOTH sides: distinct stabilized
//    Weisfeiler-Lehman labels force a unique label-matching bijection
//    that preserves the neighbourhood structure the labels encode, so
//    the re-mapped schedule assigns each module the same type as in the
//    solved twin. The service additionally re-evaluates the re-mapped
//    schedule against the requesting instance and falls back to a fresh
//    solve if it does not fit the budget, so a label collision can cost
//    performance but never correctness.
//
// Sharding: entries are distributed over `shards` independently locked
// LRU lists by fingerprint, so concurrent workers rarely contend.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sched/schedule.hpp"
#include "service/fingerprint.hpp"
#include "util/mutex.hpp"

namespace medcc::service {

/// A successful cache lookup.
struct CacheHit {
  /// The stored solver result (in the *cached* instance's index space;
  /// only returned verbatim when `exact`).
  sched::Result result;
  /// The stored layout matches the request index-for-index.
  bool exact = false;
  /// {module label, assigned type hash} sorted by label, for re-mapping.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> assignment;
  /// The cached side had pairwise-distinct module and type hashes.
  bool remappable = false;
};

/// One cache entry in exportable form: everything the persistence layer
/// snapshots/journals and everything restore() needs to rebuild the
/// entry so that warmed hits are byte-identical to live ones.
struct CacheEntry {
  Fingerprint key;
  /// Order-dependent layout hash; equality with a request's exact hash
  /// makes the hit verbatim.
  std::uint64_t exact = 0;
  /// Solver id that produced the result (metadata for inspection tools;
  /// the canonical key already encodes it).
  std::string solver;
  sched::Result result;
  /// {module label, assigned type hash} sorted by label.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> assignment;
  bool remappable = false;
  /// Times this entry answered a lookup (hit metadata; persisted).
  std::uint64_t hits = 0;
  /// Insertion timestamp in cache-clock seconds, stamped by the cache
  /// itself on upsert. Runtime-only: NOT part of the persisted record
  /// (the cache-record codec is unchanged), so restored and replicated
  /// entries start a fresh TTL on the receiving node.
  std::int64_t inserted_at = 0;
};

class ResultCache {
public:
  struct Config {
    /// Total entries across all shards (>= 1 effective per shard).
    std::size_t capacity = 4096;
    std::size_t shards = 8;
    /// Seconds an entry may answer lookups after its last upsert;
    /// 0 disables expiry. Expired entries are evicted lazily on find()
    /// and in bulk by sweep_expired().
    std::int64_t ttl_s = 0;
    /// Monotonic-ish seconds source; injectable so tests can age
    /// entries without sleeping. Defaults to the steady clock.
    std::function<std::int64_t()> clock{};
    /// Invoked (outside the shard lock) with the number of entries an
    /// operation expired; the service binds this to the cache_expired
    /// metric.
    std::function<void(std::size_t)> on_expired{};
  };

  struct Stats {
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t expired = 0;
    std::size_t size = 0;
  };

  explicit ResultCache(const Config& config);

  /// Looks `fp` up and refreshes its LRU position.
  [[nodiscard]] std::optional<CacheHit> find(const FingerprintDetail& fp);

  /// Builds the entry insert() would store for (`fp`, `result`) --
  /// exposed so the service can journal exactly what it caches.
  [[nodiscard]] static CacheEntry make_entry(const FingerprintDetail& fp,
                                             const sched::Result& result);

  /// Stores (or refreshes) the result solved for `fp`, evicting the
  /// least-recently-used entry of the shard when it is full.
  void insert(const FingerprintDetail& fp, const sched::Result& result);
  /// insert() for a pre-built entry (counts as an insertion).
  void insert(CacheEntry entry);

  /// Re-inserts a persisted entry during warm start: upserts like
  /// insert() but does not count towards Stats::insertions (restores
  /// are reported separately by the persist_* metrics).
  void restore(CacheEntry entry);

  /// Erases every entry whose TTL has lapsed and returns how many were
  /// dropped (0 when expiry is disabled). Called periodically by the
  /// service's snapshot source, i.e. on the persist flusher thread.
  std::size_t sweep_expired();

  /// Copies every entry out, least-recently-used first, so re-applying
  /// them in order (snapshot load, compaction) reproduces the LRU
  /// order. Order across shards is interleaved and insignificant.
  [[nodiscard]] std::vector<CacheEntry> export_entries() const;

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t capacity() const {
    return shard_capacity_ * shards_.size();
  }
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  void clear();

private:
  struct Shard {
    util::Mutex mutex;
    std::list<CacheEntry> lru MEDCC_GUARDED_BY(mutex);  // front == most recent
    std::unordered_map<Fingerprint, std::list<CacheEntry>::iterator,
                       FingerprintHash>
        index MEDCC_GUARDED_BY(mutex);
    std::uint64_t insertions MEDCC_GUARDED_BY(mutex) = 0;
    std::uint64_t evictions MEDCC_GUARDED_BY(mutex) = 0;
    std::uint64_t expired MEDCC_GUARDED_BY(mutex) = 0;
  };

  void upsert(CacheEntry entry, bool count_insertion);
  [[nodiscard]] std::int64_t now() const { return clock_(); }
  [[nodiscard]] bool expired(const CacheEntry& entry,
                             std::int64_t at) const {
    return ttl_s_ > 0 && at - entry.inserted_at >= ttl_s_;
  }
  void notify_expired(std::size_t count) const {
    if (count > 0 && on_expired_) on_expired_(count);
  }

  [[nodiscard]] Shard& shard_for(const Fingerprint& fp) {
    return *shards_[fp.hi % shards_.size()];
  }

  std::size_t shard_capacity_;
  std::int64_t ttl_s_;
  std::function<std::int64_t()> clock_;
  std::function<void(std::size_t)> on_expired_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Re-indexes a cached twin's schedule into the requesting instance's
/// module/type numbering, or nullopt when either side still has symmetric
/// (equal-label) modules or types, or a label fails to match.
[[nodiscard]] std::optional<sched::Schedule> remap_schedule(
    const CacheHit& hit, const FingerprintDetail& fp);

}  // namespace medcc::service
