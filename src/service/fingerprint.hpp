// Canonical instance fingerprinting for the scheduling-service cache.
//
// Two requests that describe the same MED-CC problem -- even when their
// modules and VM types were added in a different order -- must map to the
// same cache key. The fingerprint therefore hashes *structure*, not
// indices: per-type hashes are combined order-independently, per-module
// labels start from the module's execution-time/cost rows (keyed by type
// hash, not type index) and are refined Weisfeiler-Lehman-style over the
// dependency edges until each label encodes the module's whole
// neighbourhood, and the canonical key is an order-independent
// combination of the final labels plus the scalar fields (budget,
// billing quantum, network model, solver id, solver config).
//
// The canonical key is 128 bits (two independently seeded label runs).
// An additional order-*dependent* `exact` hash distinguishes a verbatim
// duplicate from a permuted one: equal exact hashes let the cache return
// the stored Result byte-for-byte, while a canonical-only match serves a
// permuted duplicate by re-mapping the stored schedule through the
// per-module labels (see cache.hpp for the correctness argument).
//
// Module and VM-type *names* are display-only and deliberately excluded;
// workloads enter via the TE/CE rows they induce, so a from_matrix
// instance and a from_model instance with identical matrices coincide.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sched/instance.hpp"
#include "service/request.hpp"

namespace medcc::service {

/// 128-bit order-independent cache key.
struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  [[nodiscard]] bool operator==(const Fingerprint&) const = default;
};

/// Fingerprint plus the per-entity labels the cache needs to re-map a
/// permuted duplicate's schedule.
struct FingerprintDetail {
  Fingerprint canonical;
  /// Order-dependent hash; equality means the request layouts are
  /// identical index-for-index.
  std::uint64_t exact = 0;
  /// Final canonical label of every module (indexed by NodeId).
  std::vector<std::uint64_t> module_hash;
  /// Canonical hash of every VM type (indexed by catalog position).
  std::vector<std::uint64_t> type_hash;
  /// All module labels pairwise distinct (no structural symmetry left);
  /// required on both sides before a permuted hit may be re-mapped.
  bool modules_distinct = false;
  /// All type hashes pairwise distinct.
  bool types_distinct = false;
  /// Solver id the request named (metadata carried into cache entries
  /// for inspection tools; the canonical key already hashes it).
  std::string solver;
};

/// Fingerprints (instance, budget, solver, config). `request.deadline_ms`
/// and `request.tenant` are quality-of-service knobs, not part of the
/// problem, and are excluded -- tenants share cached results.
[[nodiscard]] FingerprintDetail fingerprint(const SchedulingRequest& request);

[[nodiscard]] FingerprintDetail fingerprint_instance(
    const sched::Instance& instance, double budget, std::string_view solver,
    std::string_view config);

/// Hash support for unordered containers keyed by Fingerprint.
struct FingerprintHash {
  [[nodiscard]] std::size_t operator()(const Fingerprint& fp) const {
    return static_cast<std::size_t>(fp.hi ^ (fp.lo * 0x9e3779b97f4a7c15ULL));
  }
};

}  // namespace medcc::service
