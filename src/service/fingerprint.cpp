#include "service/fingerprint.hpp"

#include <algorithm>
#include <bit>

#include "util/prng.hpp"

namespace medcc::service {

namespace {

/// One SplitMix64 scramble of `x` -- the mixing primitive for all hashes.
std::uint64_t mix(std::uint64_t x) {
  return util::splitmix64(x);
}

/// Folds `value` into the running hash `h` (order-dependent chain).
std::uint64_t chain(std::uint64_t h, std::uint64_t value) {
  return mix(h ^ mix(value));
}

/// Bit pattern of a double with -0.0 normalized to +0.0 so numerically
/// equal fields hash equal.
std::uint64_t double_bits(double x) {
  if (x == 0.0) x = 0.0;
  return std::bit_cast<std::uint64_t>(x);
}

std::uint64_t chain_double(std::uint64_t h, double x) {
  return chain(h, double_bits(x));
}

std::uint64_t chain_string(std::uint64_t h, std::string_view s) {
  h = chain(h, s.size());
  for (const char c : s) h = chain(h, static_cast<unsigned char>(c));
  return h;
}

/// Per-type canonical hash: structure only (power, rate), no name/index.
std::uint64_t hash_type(const cloud::VmType& type, std::uint64_t seed) {
  std::uint64_t h = chain(seed, 0x7479706573ULL);  // "types" tag
  h = chain_double(h, type.processing_power);
  h = chain_double(h, type.cost_rate);
  return h;
}

/// True when the sorted copy of `hashes` has no duplicates.
bool all_distinct(std::vector<std::uint64_t> hashes) {
  std::sort(hashes.begin(), hashes.end());
  return std::adjacent_find(hashes.begin(), hashes.end()) == hashes.end();
}

/// Runs the full Weisfeiler-Lehman labeling under `seed` and returns the
/// final per-module labels; `canonical` receives the order-independent
/// 64-bit combination of everything.
std::vector<std::uint64_t> label_run(const sched::Instance& inst,
                                     double budget, std::string_view solver,
                                     std::string_view config,
                                     std::uint64_t seed,
                                     std::uint64_t& canonical) {
  const auto& wf = inst.workflow();
  const auto& graph = wf.graph();
  const std::size_t m = wf.module_count();
  const std::size_t n = inst.type_count();

  std::vector<std::uint64_t> type_hash(n);
  for (std::size_t j = 0; j < n; ++j)
    type_hash[j] = hash_type(inst.catalog().type(j), seed);

  // Initial label: the module's own rows of TE and CE, keyed by type hash
  // so the combination is invariant to catalog order.
  std::vector<std::uint64_t> label(m);
  for (workflow::NodeId i = 0; i < m; ++i) {
    std::uint64_t h = chain(seed, wf.module(i).is_fixed() ? 2u : 1u);
    std::uint64_t rows = 0;  // order-independent over types
    for (std::size_t j = 0; j < n; ++j) {
      std::uint64_t cell = chain(type_hash[j], 0x726f77ULL);  // "row" tag
      cell = chain_double(cell, inst.time(i, j));
      cell = chain_double(cell, inst.cost(i, j));
      rows += mix(cell);
    }
    label[i] = chain(h, rows);
  }

  // Refinement: each round folds in the multiset of labelled in- and
  // out-neighbourhoods (edge data size and transfer time included), so
  // after ~log2(m)+2 rounds a label encodes the module's whole
  // neighbourhood out to the graph's diameter on typical workflows.
  const int rounds =
      2 + std::bit_width(static_cast<std::uint64_t>(m) + 1);
  std::vector<std::uint64_t> next(m);
  for (int round = 0; round < rounds; ++round) {
    for (workflow::NodeId i = 0; i < m; ++i) {
      std::uint64_t in_sum = 0;
      for (const dag::EdgeId e : graph.in_edges(i)) {
        std::uint64_t h = chain(label[graph.edge(e).src], 0x696eULL);  // "in"
        h = chain_double(h, wf.data_size(e));
        h = chain_double(h, inst.edge_time(e));
        in_sum += mix(h);
      }
      std::uint64_t out_sum = 0;
      for (const dag::EdgeId e : graph.out_edges(i)) {
        std::uint64_t h =
            chain(label[graph.edge(e).dst], 0x6f7574ULL);  // "out"
        h = chain_double(h, wf.data_size(e));
        h = chain_double(h, inst.edge_time(e));
        out_sum += mix(h);
      }
      next[i] = chain(chain(label[i], in_sum), out_sum);
    }
    label.swap(next);
  }

  // Order-independent combination of labels, type hashes, and scalars.
  std::uint64_t h = chain(seed, 0x6d656463ULL);  // "medc" tag
  h = chain(h, m);
  h = chain(h, graph.edge_count());
  h = chain(h, n);
  std::uint64_t module_sum = 0;
  for (const std::uint64_t l : label) module_sum += mix(l);
  h = chain(h, module_sum);
  std::uint64_t type_sum = 0;
  for (const std::uint64_t t : type_hash) type_sum += mix(t);
  h = chain(h, type_sum);
  h = chain_double(h, budget);
  h = chain_double(h, inst.billing().quantum());
  h = chain_double(h, inst.network().bandwidth);
  h = chain_double(h, inst.network().link_delay);
  h = chain_double(h, inst.network().transfer_cost_rate);
  h = chain_string(h, solver);
  h = chain_string(h, config);
  canonical = h;
  return label;
}

/// Order-dependent hash of the request layout, index for index.
std::uint64_t exact_hash(const sched::Instance& inst, double budget,
                         std::string_view solver, std::string_view config) {
  const auto& wf = inst.workflow();
  const auto& graph = wf.graph();
  std::uint64_t h = 0x65786163ULL;  // "exac" tag
  h = chain(h, wf.module_count());
  h = chain(h, graph.edge_count());
  h = chain(h, inst.type_count());
  for (workflow::NodeId i = 0; i < wf.module_count(); ++i) {
    h = chain(h, wf.module(i).is_fixed() ? 2u : 1u);
    for (std::size_t j = 0; j < inst.type_count(); ++j) {
      h = chain_double(h, inst.time(i, j));
      h = chain_double(h, inst.cost(i, j));
    }
  }
  for (dag::EdgeId e = 0; e < graph.edge_count(); ++e) {
    h = chain(h, graph.edge(e).src);
    h = chain(h, graph.edge(e).dst);
    h = chain_double(h, wf.data_size(e));
    h = chain_double(h, inst.edge_time(e));
  }
  for (std::size_t j = 0; j < inst.type_count(); ++j) {
    h = chain_double(h, inst.catalog().type(j).processing_power);
    h = chain_double(h, inst.catalog().type(j).cost_rate);
  }
  h = chain_double(h, budget);
  h = chain_double(h, inst.billing().quantum());
  h = chain_double(h, inst.network().bandwidth);
  h = chain_double(h, inst.network().link_delay);
  h = chain_double(h, inst.network().transfer_cost_rate);
  h = chain_string(h, solver);
  h = chain_string(h, config);
  return h;
}

}  // namespace

FingerprintDetail fingerprint_instance(const sched::Instance& instance,
                                       double budget, std::string_view solver,
                                       std::string_view config) {
  FingerprintDetail detail;
  detail.module_hash = label_run(instance, budget, solver, config,
                                 0x243f6a8885a308d3ULL,  // pi digits
                                 detail.canonical.hi);
  std::uint64_t lo = 0;
  (void)label_run(instance, budget, solver, config,
                  0x13198a2e03707344ULL,  // more pi digits
                  lo);
  detail.canonical.lo = lo;
  detail.type_hash.resize(instance.type_count());
  for (std::size_t j = 0; j < instance.type_count(); ++j)
    detail.type_hash[j] =
        hash_type(instance.catalog().type(j), 0x243f6a8885a308d3ULL);
  detail.modules_distinct = all_distinct(detail.module_hash);
  detail.types_distinct = all_distinct(detail.type_hash);
  detail.exact = exact_hash(instance, budget, solver, config);
  detail.solver = std::string(solver);
  return detail;
}

FingerprintDetail fingerprint(const SchedulingRequest& request) {
  MEDCC_EXPECTS(request.instance != nullptr);
  return fingerprint_instance(*request.instance, request.budget,
                              request.solver, request.config);
}

}  // namespace medcc::service
