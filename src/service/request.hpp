// The request/response API of the MED-CC scheduling service.
//
// One SchedulingRequest names an instance, a budget, and a registered
// solver; the service answers with a SchedulingResponse that either
// carries the solver's Result (possibly served from the fingerprint
// cache) or states precisely why no schedule was produced -- admission
// rejection, queue-deadline expiry, or a solver error such as an
// infeasible budget.
#pragma once

#include <memory>
#include <string>

#include "obs/trace.hpp"
#include "sched/instance.hpp"
#include "sched/schedule.hpp"

namespace medcc::service {

/// One scheduling call: solve `instance` under `budget` with the solver
/// registered as `solver`.
struct SchedulingRequest {
  /// Shared so duplicate-heavy request streams never copy the instance;
  /// the service only reads it. Must be non-null.
  std::shared_ptr<const sched::Instance> instance;
  double budget = 0.0;
  /// Id in the service's SolverRegistry ("cg", "gain3", ...).
  std::string solver = "cg";
  /// Opaque solver-configuration tag. The service does not interpret it,
  /// but it participates in the instance fingerprint, so requests that
  /// expect differently-configured solvers never share cache entries.
  std::string config;
  /// Maximum time (milliseconds) the request may wait in the submission
  /// queue before solving starts; expired requests are answered with
  /// RejectReason::deadline_expired instead of being solved.
  /// 0 uses the service default.
  double deadline_ms = 0.0;
  /// Caller identity for per-tenant admission quotas
  /// (ServiceConfig::max_inflight_per_tenant). Like deadline_ms it is a
  /// quality-of-service knob, not part of the problem: it does not enter
  /// the cache fingerprint, so tenants share cached results. Empty names
  /// the anonymous tenant, which is quota-limited like any other.
  std::string tenant;
  /// Observability context (invalid id = untraced). Pure metadata: it
  /// does not enter the cache fingerprint or the response bytes, so
  /// traced and untraced duplicates share results bit-for-bit.
  obs::TraceContext trace;
  /// Span buffer when the request is span-captured (opened via
  /// obs::Tracer::open by the front end that minted/received the
  /// context); nullptr = aggregate-only accounting.
  std::shared_ptr<obs::Trace> trace_buffer;
};

enum class ResponseStatus {
  ok,        ///< result holds a verified schedule
  rejected,  ///< admission control or deadline refused the request
  failed,    ///< the solver threw (e.g. Infeasible); see error
};

enum class RejectReason {
  none,
  queue_full,        ///< bounded submission queue at capacity
  shutting_down,     ///< service drain/shutdown already started
  deadline_expired,  ///< spent longer than deadline_ms in the queue
  unknown_solver,    ///< no such id in the solver registry
  invalid_request,   ///< null instance or non-finite/negative budget
  tenant_quota,      ///< tenant already at max_inflight_per_tenant
  flow_control,      ///< connection exceeded max_inflight_frames
};

/// How the response was produced (mirrored into the metrics registry).
enum class CacheOutcome {
  bypass,           ///< cache disabled
  miss,             ///< solved fresh (and inserted)
  hit_exact,        ///< identical request: stored Result returned verbatim
  hit_isomorphic,   ///< permuted duplicate: stored schedule remapped
};

struct SchedulingResponse {
  ResponseStatus status = ResponseStatus::rejected;
  RejectReason reject_reason = RejectReason::none;
  /// Exception text when status == failed.
  std::string error;
  /// The schedule and its evaluation; meaningful when status == ok.
  sched::Result result;
  CacheOutcome cache = CacheOutcome::bypass;
  /// Solver id that produced (or would have produced) the result.
  std::string solver;
  /// Time spent queued before the worker picked the request up.
  double queue_delay_ms = 0.0;
  /// Time spent solving (or fingerprinting + serving the cache hit).
  double solve_ms = 0.0;

  [[nodiscard]] bool ok() const { return status == ResponseStatus::ok; }
};

[[nodiscard]] const char* to_string(ResponseStatus status);
[[nodiscard]] const char* to_string(RejectReason reason);
[[nodiscard]] const char* to_string(CacheOutcome outcome);

}  // namespace medcc::service
