#include "service/service.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "sched/verify_hook.hpp"
#include "service/persistence.hpp"
#include "util/log.hpp"

namespace medcc::service {

namespace {

double to_ms(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double, std::milli>(d).count();
}

double to_seconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

}  // namespace

struct SchedulingService::Ticket {
  SchedulingRequest request;
  std::function<void(SchedulingResponse)> done;
  std::chrono::steady_clock::time_point admitted;
  /// Tracer time base of `admitted` (only meaningful when tracing):
  /// spans always use the real steady clock even when config_.clock is
  /// an injected fake, so traces stay truthful under frozen-clock tests.
  std::int64_t admitted_ns = 0;
};

SchedulingService::SchedulingService(ServiceConfig config)
    : config_(std::move(config)),
      registry_(config_.registry != nullptr ? *config_.registry
                                            : sched::SolverRegistry::built_in()),
      clock_(config_.clock != nullptr
                 ? config_.clock
                 : [] { return std::chrono::steady_clock::now(); }),
      pool_(config_.threads) {
  MEDCC_EXPECTS(config_.queue_capacity > 0);
  MEDCC_EXPECTS(config_.cache_ttl_s >= 0);
  if (config_.cache_capacity > 0) {
    ResultCache::Config cache_config;
    cache_config.capacity = config_.cache_capacity;
    cache_config.shards = std::max<std::size_t>(1, config_.cache_shards);
    cache_config.ttl_s = config_.cache_ttl_s;
    cache_config.clock = config_.cache_clock;
    cache_config.on_expired = [this](std::size_t n) {
      metrics_.add_cache_expired(n);
    };
    cache_ = std::make_unique<ResultCache>(cache_config);
    if (config_.wire_cache_capacity > 0) {
      WireCache::Config wire_config;
      wire_config.capacity = config_.wire_cache_capacity;
      wire_config.shards = std::max<std::size_t>(1, config_.cache_shards);
      wire_config.ttl_s = config_.cache_ttl_s;
      wire_config.clock = config_.cache_clock;
      wire_cache_ = std::make_unique<WireCache>(wire_config);
    }
  }
  if (!config_.cache_dir.empty()) {
    MEDCC_EXPECTS(cache_ != nullptr);  // persistence requires the cache
    persist::StoreConfig store_config;
    store_config.dir = config_.cache_dir;
    store_config.snapshot_interval_s = config_.snapshot_interval_s;
    store_config.journal_rotate_bytes = config_.journal_rotate_bytes;
    store_config.fsync_appends = config_.persist_fsync;
    store_config.on_flush = [this](double seconds) {
      metrics_.persist_flush(seconds);
    };
    // Runs under the store lock: any concurrent insertion either made it
    // into this export (its cache update happened before) or its append
    // is still waiting on that lock and lands in the rotated journal.
    store_ = std::make_unique<persist::DurableStore>(
        std::move(store_config), [this] {
          // Piggyback the TTL sweep on the flusher's cadence so expired
          // entries neither serve lookups nor survive into the snapshot.
          cache_->sweep_expired();
          std::vector<std::string> payloads;
          for (const CacheEntry& entry : cache_->export_entries())
            payloads.push_back(encode_cache_record(entry));
          return payloads;
        });

    const auto load_started = clock_();
    const persist::LoadResult loaded = store_->load();
    std::uint64_t restored = 0;
    for (const std::string& payload : loaded.payloads) {
      try {
        cache_->restore(decode_cache_record(payload));
        ++restored;
      } catch (const persist::PersistError&) {
        // A record framed correctly (CRC passed) but undecodable --
        // foreign version or a writer bug. Skip it; warm start degrades
        // to a partial cache instead of failing.
        metrics_.persist_load_error();
      }
    }
    metrics_.add_persist_loaded(restored);
    metrics_.add_persist_truncations(loaded.truncations);
    metrics_.record_persist_load(to_seconds(clock_() - load_started));
    store_->start();
  }
}

SchedulingService::~SchedulingService() { shutdown(); }

std::future<SchedulingResponse> SchedulingService::submit(
    SchedulingRequest request) {
  auto promise = std::make_shared<std::promise<SchedulingResponse>>();
  auto future = promise->get_future();
  submit_async(std::move(request),
               [promise = std::move(promise)](SchedulingResponse response) {
                 promise->set_value(std::move(response));
               });
  return future;
}

std::vector<std::future<SchedulingResponse>> SchedulingService::submit_batch(
    std::vector<SchedulingRequest> requests) {
  std::vector<std::future<SchedulingResponse>> futures;
  futures.reserve(requests.size());
  for (auto& request : requests) futures.push_back(submit(std::move(request)));
  return futures;
}

void SchedulingService::submit_async(
    SchedulingRequest request, std::function<void(SchedulingResponse)> done) {
  MEDCC_EXPECTS(done != nullptr);
  auto ticket = std::make_shared<Ticket>();
  ticket->request = std::move(request);
  ticket->done = std::move(done);
  metrics_.count_request(ticket->request.solver);

  const auto reject = [&](RejectReason reason) {
    SchedulingResponse response;
    response.status = ResponseStatus::rejected;
    response.reject_reason = reason;
    response.solver = ticket->request.solver;
    metrics_.count_response(response);
    ticket->done(std::move(response));
  };

  if (!accepting_.load(std::memory_order_relaxed)) {
    reject(RejectReason::shutting_down);
    return;
  }
  if (ticket->request.instance == nullptr ||
      !std::isfinite(ticket->request.budget) ||
      ticket->request.budget < 0.0 || ticket->request.deadline_ms < 0.0) {
    reject(RejectReason::invalid_request);
    return;
  }
  if (!registry_.contains(ticket->request.solver)) {
    reject(RejectReason::unknown_solver);
    return;
  }
  if (!acquire_tenant_slot(ticket->request.tenant)) {
    reject(RejectReason::tenant_quota);
    return;
  }

  // Admission: reserve a queue slot atomically, give it back on overflow.
  if (pending_.fetch_add(1, std::memory_order_relaxed) >=
      config_.queue_capacity) {
    pending_.fetch_sub(1, std::memory_order_relaxed);
    release_tenant_slot(ticket->request.tenant);
    reject(RejectReason::queue_full);
    return;
  }
  metrics_.queue_entered();
  ticket->admitted = clock_();
  if (config_.tracer != nullptr) ticket->admitted_ns = obs::Tracer::now_ns();

  const bool submitted = pool_.try_submit([this, ticket] { run(*ticket); });
  if (!submitted) {
    pending_.fetch_sub(1, std::memory_order_relaxed);
    metrics_.queue_left();
    release_tenant_slot(ticket->request.tenant);
    reject(RejectReason::shutting_down);
  }
}

bool SchedulingService::acquire_tenant_slot(const std::string& tenant) {
  if (config_.max_inflight_per_tenant == 0) return true;
  const util::MutexLock lock(tenant_mutex_);
  std::size_t& inflight = tenant_inflight_[tenant];
  if (inflight >= config_.max_inflight_per_tenant) return false;
  ++inflight;
  return true;
}

void SchedulingService::release_tenant_slot(const std::string& tenant) {
  if (config_.max_inflight_per_tenant == 0) return;
  const util::MutexLock lock(tenant_mutex_);
  const auto it = tenant_inflight_.find(tenant);
  MEDCC_EXPECTS(it != tenant_inflight_.end() && it->second > 0);
  if (--it->second == 0) tenant_inflight_.erase(it);
}

void SchedulingService::run(Ticket& ticket) {
  const auto started = clock_();
  pending_.fetch_sub(1, std::memory_order_relaxed);
  metrics_.queue_left();

  // Stamp this worker's log lines with the request's trace id for the
  // duration of the request ("" = no stamp).
  const util::LogTraceScope log_scope(
      ticket.request.trace.valid() ? ticket.request.trace.id.to_hex()
                                   : std::string());
  obs::Tracer* const tracer = config_.tracer;
  std::int64_t solve_start_ns = 0;
  if (tracer != nullptr) {
    solve_start_ns = obs::Tracer::now_ns();
    tracer->record(ticket.request.trace_buffer, obs::Stage::queue_wait,
                   ticket.admitted_ns, solve_start_ns);
  }

  const double queue_delay_ms = to_ms(started - ticket.admitted);
  SchedulingResponse response;
  response.solver = ticket.request.solver;
  response.queue_delay_ms = queue_delay_ms;

  const double deadline_ms = ticket.request.deadline_ms > 0.0
                                 ? ticket.request.deadline_ms
                                 : config_.default_deadline_ms;
  if (deadline_ms > 0.0 && queue_delay_ms > deadline_ms) {
    response.status = ResponseStatus::rejected;
    response.reject_reason = RejectReason::deadline_expired;
  } else {
    try {
      SchedulingResponse solved = solve(ticket.request);
      solved.solver = std::move(response.solver);
      solved.queue_delay_ms = response.queue_delay_ms;
      response = std::move(solved);
    } catch (const std::exception& e) {
      response.status = ResponseStatus::failed;
      response.error = e.what();
    } catch (...) {
      response.status = ResponseStatus::failed;
      response.error = "unknown error";
    }
  }

  const auto finished = clock_();
  response.solve_ms = to_ms(finished - started);
  metrics_.record_queue_delay(to_seconds(started - ticket.admitted));
  metrics_.record_solve(to_seconds(finished - started));
  metrics_.record_total(to_seconds(finished - ticket.admitted));
  metrics_.record_solver_latency(response.solver,
                                 to_seconds(finished - started));
  metrics_.count_response(response);
  // Free the quota slot before completing, so a caller reacting to its
  // own response can immediately resubmit without bouncing off its quota.
  release_tenant_slot(ticket.request.tenant);
  ticket.done(std::move(response));
}

SchedulingResponse SchedulingService::solve(const SchedulingRequest& request) {
  const sched::Instance& instance = *request.instance;
  const sched::SolverFn* solver = registry_.find(request.solver);
  MEDCC_EXPECTS(solver != nullptr);  // admission already checked

  SchedulingResponse response;
  response.status = ResponseStatus::ok;

  obs::Tracer* const tracer = config_.tracer;
  const auto span_clock = [tracer]() -> std::int64_t {
    return tracer != nullptr ? obs::Tracer::now_ns() : 0;
  };

  if (cache_ == nullptr) {
    response.cache = CacheOutcome::bypass;
    const std::int64_t solver_start = span_clock();
    response.result = (*solver)(instance, request.budget);
    if (tracer != nullptr)
      tracer->record(request.trace_buffer, obs::Stage::solve, solver_start,
                     obs::Tracer::now_ns());
    sched::detail::check_schedule_invariants(
        instance, response.result.schedule, response.result.eval,
        request.budget, sched::detail::kUnconstrained, "service");
    return response;
  }

  const std::int64_t lookup_start = span_clock();
  const FingerprintDetail fp = fingerprint(request);
  auto hit = cache_->find(fp);
  if (tracer != nullptr)
    tracer->record(request.trace_buffer, obs::Stage::cache_lookup,
                   lookup_start, obs::Tracer::now_ns());
  if (hit) {
    if (hit->exact) {
      response.cache = CacheOutcome::hit_exact;
      response.result = std::move(hit->result);
      sched::detail::check_schedule_invariants(
          instance, response.result.schedule, response.result.eval,
          request.budget, sched::detail::kUnconstrained, "service-cache");
      return response;
    }
    if (auto remapped = remap_schedule(*hit, fp)) {
      sched::Result result;
      result.schedule = std::move(*remapped);
      result.eval = sched::evaluate(instance, result.schedule);
      result.iterations = hit->result.iterations;
      // A stale or colliding entry can only surface as an over-budget
      // re-mapped schedule; fall through to a fresh solve in that case.
      const double slack =
          1e-9 * std::max(1.0, std::abs(request.budget));
      if (result.eval.cost <= request.budget + slack) {
        response.cache = CacheOutcome::hit_isomorphic;
        response.result = std::move(result);
        sched::detail::check_schedule_invariants(
            instance, response.result.schedule, response.result.eval,
            request.budget, sched::detail::kUnconstrained, "service-cache");
        return response;
      }
    }
  }

  response.cache = CacheOutcome::miss;
  const std::int64_t solver_start = span_clock();
  response.result = (*solver)(instance, request.budget);
  if (tracer != nullptr)
    tracer->record(request.trace_buffer, obs::Stage::solve, solver_start,
                   obs::Tracer::now_ns());
  sched::detail::check_schedule_invariants(
      instance, response.result.schedule, response.result.eval,
      request.budget, sched::detail::kUnconstrained, "service");
  if (store_ == nullptr && config_.on_cache_insert == nullptr) {
    cache_->insert(fp, response.result);
  } else {
    // Insert BEFORE journaling: paired with the store's locked snapshot
    // source, this guarantees the entry is either in the next snapshot
    // or in the journal that survives it -- never dropped.
    CacheEntry entry = ResultCache::make_entry(fp, response.result);
    std::string payload = encode_cache_record(entry);
    cache_->insert(std::move(entry));
    if (store_ != nullptr) {
      const std::int64_t append_start = span_clock();
      store_->append(payload);
      if (tracer != nullptr)
        tracer->record(request.trace_buffer, obs::Stage::persist_append,
                       append_start, obs::Tracer::now_ns());
      metrics_.persist_append();
    }
    // Publish the locally solved entry to the replicator (peers apply
    // it via apply_replicated_record, which does not re-publish). The
    // request's trace context rides along so the replication hop stays
    // on the same trace.
    if (config_.on_cache_insert != nullptr) {
      const std::int64_t push_start = span_clock();
      config_.on_cache_insert(std::move(payload), request.trace);
      if (tracer != nullptr)
        tracer->record(request.trace_buffer, obs::Stage::repl_push,
                       push_start, obs::Tracer::now_ns());
    }
  }
  return response;
}

bool SchedulingService::apply_replicated_record(std::string_view payload) {
  if (cache_ == nullptr) {
    metrics_.repl_apply_error();
    return false;
  }
  try {
    cache_->restore(decode_cache_record(payload));
  } catch (const std::exception&) {
    // Malformed or foreign-version record from a peer: count and drop.
    metrics_.repl_apply_error();
    return false;
  }
  metrics_.repl_applied();
  return true;
}

std::size_t SchedulingService::sweep_expired() {
  if (cache_ == nullptr) return 0;
  return cache_->sweep_expired();
}

void SchedulingService::drain() { pool_.wait_idle(); }

void SchedulingService::shutdown() {
  accepting_.store(false, std::memory_order_relaxed);
  pool_.request_stop();
  pool_.wait_idle();
  if (store_ != nullptr) {
    // Workers are parked: fold the journal into a final snapshot so the
    // next boot loads one file, then stop the flusher.
    store_->flush_if_dirty();
    store_->stop();
  }
}

ResultCache::Stats SchedulingService::cache_stats() const {
  if (cache_ == nullptr) return {};
  return cache_->stats();
}

persist::DurableStore::Stats SchedulingService::persist_stats() const {
  if (store_ == nullptr) return {};
  return store_->stats();
}

void SchedulingService::flush_persistence() {
  MEDCC_EXPECTS(store_ != nullptr);
  store_->flush();
}

}  // namespace medcc::service
