// CRC32-framed record files: the on-disk container shared by the
// snapshot and the journal of the persistence subsystem.
//
// File layout (all integers little-endian; full tables in
// docs/FORMATS.md):
//
//   offset  size  field
//   0       4     magic ("MDSP" snapshot, "MDJL" journal)
//   4       2     format version (currently 1)
//   6       2     reserved (0)
//   8       ...   records, back to back
//
// Each record:
//
//   0       4     payload length in bytes (bounded by max_record_bytes)
//   4       4     CRC-32 (IEEE 802.3) of the payload bytes
//   8       n     payload (opaque to this layer)
//
// Reading is torn-tail tolerant by design: a record whose length field
// runs past the end of the file, whose CRC does not match, or whose
// length exceeds the configured bound marks the end of the valid prefix
// -- everything before it is returned, everything from it on is
// ignored, and `truncated` reports that a tail was dropped. A file
// shorter than its own header reads as empty-and-truncated. This is
// what makes a journal whose last append was cut short by a crash (or
// SIGKILL) replayable without UB: replay stops at the first bad CRC.
//
// A *wrong* file -- good length, bad magic or unsupported version -- is
// distinguished from a torn one and throws PersistError instead, so a
// snapshot accidentally pointed at a journal path fails loudly.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "persist/wire.hpp"

namespace medcc::persist {

inline constexpr std::uint32_t kSnapshotMagic = 0x5053444Du;  // "MDSP"
inline constexpr std::uint32_t kJournalMagic = 0x4C4A444Du;   // "MDJL"
inline constexpr std::uint16_t kFormatVersion = 1;
inline constexpr std::size_t kFileHeaderSize = 8;
inline constexpr std::size_t kRecordHeaderSize = 8;
/// Default ceiling on one record payload; corrupt length prefixes are
/// treated as a torn tail before any allocation happens.
inline constexpr std::size_t kDefaultMaxRecordBytes = 64u << 20;

/// Canonical file names inside a persistence directory.
inline constexpr const char* kSnapshotFileName = "snapshot.mdsp";
inline constexpr const char* kJournalFileName = "journal.mdjl";

/// The 8-byte file header for `magic`.
[[nodiscard]] std::string encode_file_header(std::uint32_t magic);

/// One framed record: length + CRC-32 + payload.
[[nodiscard]] std::string frame_record(std::string_view payload);

struct ReadResult {
  std::vector<std::string> payloads;
  /// A torn or corrupt tail (bad CRC, short record, short header) was
  /// dropped after `valid_bytes`.
  bool truncated = false;
  /// Length of the longest valid prefix (header + whole records); the
  /// journal is cut back to this before new appends go behind it.
  std::uint64_t valid_bytes = 0;
  /// False when the file does not exist (payloads empty, not truncated).
  bool exists = false;
};

/// Parses an in-memory record-file image. Throws PersistError only for
/// a wrong file (bad magic / unsupported version on an intact header);
/// every torn shape is tolerated and reported via `truncated`.
[[nodiscard]] ReadResult parse_record_file(
    std::string_view bytes, std::uint32_t magic,
    std::size_t max_record_bytes = kDefaultMaxRecordBytes);

/// Loads and parses `path`; a missing file is an empty result with
/// exists == false. Throws PersistError on IO failure or wrong magic.
[[nodiscard]] ReadResult read_record_file(
    const std::filesystem::path& path, std::uint32_t magic,
    std::size_t max_record_bytes = kDefaultMaxRecordBytes);

/// Serializes header + records into one buffer (for atomic_write_file).
[[nodiscard]] std::string encode_record_file(
    std::uint32_t magic, const std::vector<std::string>& payloads);

/// Atomically replaces `path` with a record file holding `payloads`
/// (temp file + fsync + rename via util::atomic_write_file).
void write_record_file(const std::filesystem::path& path, std::uint32_t magic,
                       const std::vector<std::string>& payloads);

}  // namespace medcc::persist
