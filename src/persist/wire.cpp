#include "persist/wire.hpp"

#include <bit>
#include <cstring>

namespace medcc::persist {

namespace {

template <typename T>
void put_le(std::string& out, T v) {
  for (std::size_t i = 0; i < sizeof(T); ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
}

}  // namespace

void Writer::u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
void Writer::u16(std::uint16_t v) { put_le(out_, v); }
void Writer::u32(std::uint32_t v) { put_le(out_, v); }
void Writer::u64(std::uint64_t v) { put_le(out_, v); }
void Writer::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void Writer::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  out_.append(s);
}

const char* Reader::take(std::size_t n) {
  if (remaining() < n)
    throw PersistError("persist: record truncated (need " +
                       std::to_string(n) + " bytes, have " +
                       std::to_string(remaining()) + ")");
  const char* p = data_.data() + pos_;
  pos_ += n;
  return p;
}

std::uint8_t Reader::u8() {
  return static_cast<std::uint8_t>(*take(1));
}

std::uint16_t Reader::u16() {
  const char* p = take(2);
  std::uint16_t v = 0;
  for (std::size_t i = 0; i < 2; ++i)
    v = static_cast<std::uint16_t>(
        v | static_cast<std::uint16_t>(static_cast<unsigned char>(p[i]))
                << (8 * i));
  return v;
}

std::uint32_t Reader::u32() {
  const char* p = take(4);
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  return v;
}

std::uint64_t Reader::u64() {
  const char* p = take(8);
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  return v;
}

double Reader::f64() { return std::bit_cast<double>(u64()); }

std::string Reader::str(std::size_t max_len) {
  const std::uint32_t len = u32();
  if (len > max_len)
    throw PersistError("persist: string length " + std::to_string(len) +
                       " exceeds limit " + std::to_string(max_len));
  const char* p = take(len);
  return std::string(p, len);
}

void Reader::expect_done() const {
  if (!done())
    throw PersistError("persist: " + std::to_string(remaining()) +
                       " trailing bytes after record payload");
}

void Reader::expect_fits(std::uint64_t count, std::size_t min_bytes_each) const {
  if (count > remaining() / (min_bytes_each == 0 ? 1 : min_bytes_each))
    throw PersistError("persist: element count " + std::to_string(count) +
                       " cannot fit in " + std::to_string(remaining()) +
                       " remaining bytes");
}

}  // namespace medcc::persist
