#include "persist/record_file.hpp"

#include "util/atomic_file.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"

namespace medcc::persist {

std::string encode_file_header(std::uint32_t magic) {
  Writer writer;
  writer.u32(magic);
  writer.u16(kFormatVersion);
  writer.u16(0);  // reserved
  return writer.take();
}

std::string frame_record(std::string_view payload) {
  Writer writer;
  writer.u32(static_cast<std::uint32_t>(payload.size()));
  writer.u32(util::crc32(payload));
  std::string out = writer.take();
  out.append(payload);
  return out;
}

ReadResult parse_record_file(std::string_view bytes, std::uint32_t magic,
                             std::size_t max_record_bytes) {
  ReadResult result;
  result.exists = true;
  if (bytes.empty()) {
    // A crash between creating the file and writing its header leaves
    // zero bytes; nothing was ever appended, so nothing was lost.
    return result;
  }
  if (bytes.size() < kFileHeaderSize) {
    result.truncated = true;
    return result;
  }
  Reader header(bytes.substr(0, kFileHeaderSize));
  const std::uint32_t seen_magic = header.u32();
  const std::uint16_t version = header.u16();
  (void)header.u16();  // reserved
  if (seen_magic != magic)
    throw PersistError("persist: wrong file magic (not the expected "
                       "snapshot/journal kind)");
  if (version != kFormatVersion)
    throw PersistError("persist: unsupported format version " +
                       std::to_string(version));

  std::size_t pos = kFileHeaderSize;
  result.valid_bytes = pos;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < kRecordHeaderSize) {
      result.truncated = true;
      break;
    }
    Reader record_header(bytes.substr(pos, kRecordHeaderSize));
    const std::uint32_t length = record_header.u32();
    const std::uint32_t crc = record_header.u32();
    if (length > max_record_bytes ||
        length > bytes.size() - pos - kRecordHeaderSize) {
      result.truncated = true;
      break;
    }
    const std::string_view payload =
        bytes.substr(pos + kRecordHeaderSize, length);
    if (util::crc32(payload) != crc) {
      result.truncated = true;
      break;
    }
    result.payloads.emplace_back(payload);
    pos += kRecordHeaderSize + length;
    result.valid_bytes = pos;
  }
  return result;
}

ReadResult read_record_file(const std::filesystem::path& path,
                            std::uint32_t magic,
                            std::size_t max_record_bytes) {
  if (!util::file_exists(path)) return {};
  std::string bytes;
  try {
    bytes = util::read_file(path);
  } catch (const IoError& e) {
    throw PersistError(std::string("persist: ") + e.what());
  }
  return parse_record_file(bytes, magic, max_record_bytes);
}

std::string encode_record_file(std::uint32_t magic,
                               const std::vector<std::string>& payloads) {
  std::string out = encode_file_header(magic);
  for (const std::string& payload : payloads)
    out.append(frame_record(payload));
  return out;
}

void write_record_file(const std::filesystem::path& path, std::uint32_t magic,
                       const std::vector<std::string>& payloads) {
  try {
    util::atomic_write_file(path, encode_record_file(magic, payloads));
  } catch (const IoError& e) {
    throw PersistError(std::string("persist: ") + e.what());
  }
}

}  // namespace medcc::persist
