// Little-endian record-payload primitives for the persistence
// subsystem, mirroring the bounds-checked decode discipline of the
// network codec (src/net/codec.hpp): every read goes through a
// length-checked Reader, element counts are validated against the bytes
// actually present before any allocation, and every failure --
// truncation, oversized prefixes, trailing garbage -- surfaces as a
// structured PersistError, never as UB. The persistence layer sits
// below src/service in the library graph, so it cannot reuse the
// net::WireReader/WireWriter types directly; the byte format (LE
// integers, IEEE-754 doubles via their bit pattern, u32-length-prefixed
// strings) is identical by construction.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/error.hpp"

namespace medcc::persist {

/// Malformed persisted bytes (or a filesystem-level persistence
/// failure); decoding never exhibits UB, it throws this.
class PersistError : public Error {
public:
  explicit PersistError(const std::string& what) : Error(what) {}
};

/// Append-only little-endian encoder.
class Writer {
public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// IEEE-754 bits via the u64 path: round-trips every double bit-exactly.
  void f64(double v);
  /// u32 length prefix + raw bytes.
  void str(std::string_view s);

  [[nodiscard]] const std::string& bytes() const { return out_; }
  [[nodiscard]] std::string take() { return std::move(out_); }

private:
  std::string out_;
};

/// Bounds-checked little-endian decoder over a borrowed buffer; every
/// underflow throws PersistError.
class Reader {
public:
  explicit Reader(std::string_view data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] double f64();
  /// Reads a length-prefixed string of at most `max_len` bytes.
  [[nodiscard]] std::string str(std::size_t max_len);

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool done() const { return pos_ == data_.size(); }
  /// Throws PersistError unless the buffer is exhausted.
  void expect_done() const;
  /// Throws PersistError when `count` elements of at least
  /// `min_bytes_each` cannot possibly fit in the remaining bytes -- the
  /// guard that keeps corrupt counts from driving huge allocations.
  void expect_fits(std::uint64_t count, std::size_t min_bytes_each) const;

private:
  [[nodiscard]] const char* take(std::size_t n);

  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace medcc::persist
