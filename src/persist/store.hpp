// DurableStore: crash-safe snapshot + journal persistence for an
// in-memory table of opaque record payloads (the service's result cache
// is the one client today).
//
// On-disk state inside one directory:
//
//   snapshot.mdsp  -- full dump of the table, replaced atomically
//                     (temp file + fsync + rename, util::atomic_file)
//   journal.mdjl   -- append-only log of the payloads added since the
//                     snapshot, fsynced per append by default
//
// Warm start: load() reads both files (tolerating torn tails -- replay
// stops at the first bad CRC, see record_file.hpp), returns snapshot
// payloads followed by journal payloads (newer last, so the caller's
// upsert order is correct), and cuts the journal back to its valid
// prefix so new appends land behind intact records.
//
// Steady state: the caller appends one payload per table insertion
// (AFTER applying the insertion to its in-memory table -- that ordering
// plus the store's internal locking is what guarantees no insertion can
// fall between a snapshot and the journal rotation that follows it).
// A background flusher thread (start()/stop()) snapshots the whole
// table when the snapshot interval elapses with new appends, or as soon
// as the journal exceeds its rotation threshold, then resets the
// journal; a crash between those two steps merely replays entries that
// are already in the snapshot, which upserts absorb.
//
// Replay after any crash point is therefore: snapshot (atomic, so
// either old or new) + journal prefix up to the first torn record --
// exactly the set of insertions whose append returned, minus nothing.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "persist/record_file.hpp"
#include "util/atomic_file.hpp"
#include "util/mutex.hpp"

namespace medcc::persist {

struct StoreConfig {
  /// Directory holding snapshot + journal; created on load() if absent.
  std::filesystem::path dir;
  /// Seconds between background snapshots (when there is anything new
  /// to flush); <= 0 disables the timer, leaving only size-triggered
  /// rotation and explicit flush() calls.
  double snapshot_interval_s = 30.0;
  /// Journal size (bytes) that triggers an immediate snapshot +
  /// rotation; 0 disables size-triggered rotation.
  std::size_t journal_rotate_bytes = 4u << 20;
  /// fsync the journal after every append. On: an insertion whose
  /// append returned survives SIGKILL. Off: faster, but a crash can
  /// lose the appends since the last sync.
  bool fsync_appends = true;
  /// Ceiling on one record payload (decode guard).
  std::size_t max_record_bytes = kDefaultMaxRecordBytes;
  /// Called after every successful flush with its duration in seconds
  /// (from any thread; must be thread-safe and must not throw).
  std::function<void(double seconds)> on_flush;
};

/// What a warm start recovered. Payloads are ordered snapshot-first,
/// journal-last, so applying them in order leaves the newest version of
/// a twice-present key.
struct LoadResult {
  std::vector<std::string> payloads;
  std::uint64_t snapshot_records = 0;
  std::uint64_t journal_records = 0;
  /// Torn tails dropped during replay (0, 1, or 2: snapshot, journal).
  std::uint64_t truncations = 0;
};

class DurableStore {
public:
  /// Produces the full current payload set of the table being
  /// persisted; called with the store lock held, so it must not call
  /// back into this store.
  using SnapshotSource = std::function<std::vector<std::string>()>;

  DurableStore(StoreConfig config, SnapshotSource source);
  ~DurableStore();  // stops the flusher; does NOT flush implicitly

  DurableStore(const DurableStore&) = delete;
  DurableStore& operator=(const DurableStore&) = delete;

  /// Reads snapshot + journal and prepares the journal for appends.
  /// Must be called exactly once, before append()/flush()/start().
  /// Throws PersistError on IO failure or a wrong-kind file; torn tails
  /// are tolerated and counted, never thrown.
  [[nodiscard]] LoadResult load();

  /// Journals one insertion (framed with CRC-32, fsynced per config).
  /// IO failures are absorbed and counted (append_errors) -- journaling
  /// degrades, the caller's in-memory table keeps working.
  void append(std::string_view payload);

  /// Snapshots via the source and resets the journal. Synchronous;
  /// throws PersistError on IO failure.
  void flush();
  /// flush(), but only when there is anything new, and absorbing IO
  /// failures (shutdown path).
  void flush_if_dirty();

  /// Starts / stops the background flusher thread. stop() is
  /// idempotent and implied by destruction.
  void start();
  void stop();

  struct Stats {
    std::uint64_t appends = 0;
    std::uint64_t append_errors = 0;
    std::uint64_t flushes = 0;
    std::uint64_t flush_errors = 0;
    std::uint64_t snapshot_records = 0;  ///< records in the last flush
    std::uint64_t journal_bytes = 0;     ///< current journal size
    double last_flush_seconds = 0.0;
  };
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] std::filesystem::path snapshot_path() const {
    return config_.dir / kSnapshotFileName;
  }
  [[nodiscard]] std::filesystem::path journal_path() const {
    return config_.dir / kJournalFileName;
  }

private:
  void flusher_main();
  void flush_locked() MEDCC_REQUIRES(mutex_);
  void reset_journal_locked() MEDCC_REQUIRES(mutex_);

  const StoreConfig config_;
  /// Set once in the constructor, then only called.
  MEDCC_NOT_GUARDED const SnapshotSource source_;

  mutable util::Mutex mutex_;
  util::File journal_ MEDCC_GUARDED_BY(mutex_);
  std::uint64_t journal_bytes_ MEDCC_GUARDED_BY(mutex_) = 0;
  bool loaded_ MEDCC_GUARDED_BY(mutex_) = false;
  /// Insertions (or recovered journal records) not yet in the snapshot.
  bool dirty_ MEDCC_GUARDED_BY(mutex_) = false;
  bool flush_requested_ MEDCC_GUARDED_BY(mutex_) = false;
  bool stop_ MEDCC_GUARDED_BY(mutex_) = false;
  std::uint64_t snapshot_records_ MEDCC_GUARDED_BY(mutex_) = 0;
  double last_flush_seconds_ MEDCC_GUARDED_BY(mutex_) = 0.0;

  std::atomic<std::uint64_t> appends_{0};
  std::atomic<std::uint64_t> append_errors_{0};
  std::atomic<std::uint64_t> flushes_{0};
  std::atomic<std::uint64_t> flush_errors_{0};

  std::condition_variable wake_;
  /// Started by start(), joined by stop(); managed from the owner's
  /// control thread only.
  MEDCC_NOT_GUARDED std::thread flusher_;
};

}  // namespace medcc::persist
