#include "persist/store.hpp"

#include <chrono>
#include <system_error>
#include <utility>

#include "util/error.hpp"

namespace medcc::persist {

namespace {

using Clock = std::chrono::steady_clock;

double to_seconds(Clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

}  // namespace

DurableStore::DurableStore(StoreConfig config, SnapshotSource source)
    : config_(std::move(config)), source_(std::move(source)) {
  MEDCC_EXPECTS(source_ != nullptr);
  MEDCC_EXPECTS(!config_.dir.empty());
}

DurableStore::~DurableStore() { stop(); }

LoadResult DurableStore::load() {
  const util::MutexLock lock(mutex_);
  MEDCC_EXPECTS(!loaded_);
  std::error_code ec;
  std::filesystem::create_directories(config_.dir, ec);
  if (ec)
    throw PersistError("persist: cannot create directory '" +
                       config_.dir.string() + "': " + ec.message());

  const ReadResult snapshot =
      read_record_file(snapshot_path(), kSnapshotMagic, config_.max_record_bytes);
  const ReadResult journal =
      read_record_file(journal_path(), kJournalMagic, config_.max_record_bytes);

  LoadResult result;
  result.snapshot_records = snapshot.payloads.size();
  result.journal_records = journal.payloads.size();
  result.truncations = (snapshot.truncated ? 1u : 0u) +
                       (journal.truncated ? 1u : 0u);
  result.payloads = snapshot.payloads;
  result.payloads.insert(result.payloads.end(), journal.payloads.begin(),
                         journal.payloads.end());

  try {
    if (!journal.exists || journal.valid_bytes < kFileHeaderSize) {
      // Missing, empty, or torn before the header: start a fresh journal.
      reset_journal_locked();
    } else {
      journal_ = util::File::append(journal_path());
      if (journal.truncated) {
        // Cut the torn tail off so new appends land behind intact
        // records instead of hiding behind a bad CRC forever.
        journal_.truncate(journal.valid_bytes);
        journal_.sync();
      }
      journal_bytes_ = journal.valid_bytes;
    }
  } catch (const IoError& e) {
    throw PersistError(std::string("persist: ") + e.what());
  }

  // Anything recovered from the journal (or dropped from a torn tail)
  // deserves folding into a fresh snapshot at the next flush.
  dirty_ = !snapshot.exists || result.journal_records > 0 ||
           result.truncations > 0;
  loaded_ = true;
  return result;
}

void DurableStore::append(std::string_view payload) {
  bool request_flush = false;
  {
    const util::MutexLock lock(mutex_);
    MEDCC_EXPECTS(loaded_);
    const std::string framed = frame_record(payload);
    try {
      journal_.write_all(framed);
      if (config_.fsync_appends) journal_.sync();
    } catch (const IoError&) {
      // Journaling degrades; the in-memory table stays authoritative.
      append_errors_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    journal_bytes_ += framed.size();
    dirty_ = true;
    appends_.fetch_add(1, std::memory_order_relaxed);
    if (config_.journal_rotate_bytes > 0 &&
        journal_bytes_ >= config_.journal_rotate_bytes && !flush_requested_) {
      flush_requested_ = true;
      request_flush = true;
    }
  }
  if (request_flush) wake_.notify_all();
}

void DurableStore::flush() {
  const util::MutexLock lock(mutex_);
  MEDCC_EXPECTS(loaded_);
  flush_locked();
}

void DurableStore::flush_if_dirty() {
  const util::MutexLock lock(mutex_);
  MEDCC_EXPECTS(loaded_);
  if (!dirty_) return;
  try {
    flush_locked();
  } catch (const PersistError&) {
    // Already counted by flush_locked's error path below; shutdown must
    // not throw.
  }
}

void DurableStore::flush_locked() {
  const auto started = Clock::now();
  try {
    // The source runs under the store lock: an insertion is either
    // visible to this snapshot (its table update happened before) or
    // its append is still waiting on the lock and lands in the fresh
    // journal after rotation. Nothing falls in between.
    const std::vector<std::string> payloads = source_();
    write_record_file(snapshot_path(), kSnapshotMagic, payloads);
    reset_journal_locked();
    snapshot_records_ = payloads.size();
  } catch (...) {
    flush_errors_.fetch_add(1, std::memory_order_relaxed);
    throw;
  }
  dirty_ = false;
  flush_requested_ = false;
  flushes_.fetch_add(1, std::memory_order_relaxed);
  last_flush_seconds_ = to_seconds(Clock::now() - started);
  if (config_.on_flush != nullptr) config_.on_flush(last_flush_seconds_);
}

void DurableStore::reset_journal_locked() {
  journal_.close();
  try {
    journal_ = util::File::create(journal_path());
    journal_.write_all(encode_file_header(kJournalMagic));
    journal_.sync();
  } catch (const IoError& e) {
    throw PersistError(std::string("persist: ") + e.what());
  }
  journal_bytes_ = kFileHeaderSize;
}

void DurableStore::start() {
  {
    const util::MutexLock lock(mutex_);
    MEDCC_EXPECTS(loaded_);
    stop_ = false;
  }
  MEDCC_EXPECTS(!flusher_.joinable());
  flusher_ = std::thread([this] { flusher_main(); });
}

void DurableStore::stop() {
  {
    const util::MutexLock lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  if (flusher_.joinable()) flusher_.join();
}

void DurableStore::flusher_main() {
  util::MutexLock lock(mutex_);
  const bool timed = config_.snapshot_interval_s > 0.0;
  const auto interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(
          timed ? config_.snapshot_interval_s : 1.0));
  auto deadline = Clock::now() + interval;
  while (!stop_) {
    const auto now = Clock::now();
    const bool interval_due = timed && now >= deadline;
    if (flush_requested_ || (interval_due && dirty_)) {
      try {
        flush_locked();
      } catch (const PersistError&) {
        // Counted; retry at the next trigger.
        flush_requested_ = false;
      }
    }
    if (interval_due) deadline = now + interval;
    // Explicit wait (not the predicate overload) so the thread-safety
    // analysis sees the guarded reads under the capability.
    if (timed) {
      wake_.wait_until(lock.native(), deadline);
    } else {
      wake_.wait(lock.native());
    }
  }
}

DurableStore::Stats DurableStore::stats() const {
  Stats stats;
  stats.appends = appends_.load(std::memory_order_relaxed);
  stats.append_errors = append_errors_.load(std::memory_order_relaxed);
  stats.flushes = flushes_.load(std::memory_order_relaxed);
  stats.flush_errors = flush_errors_.load(std::memory_order_relaxed);
  const util::MutexLock lock(mutex_);
  stats.snapshot_records = snapshot_records_;
  stats.journal_bytes = journal_bytes_;
  stats.last_flush_seconds = last_flush_seconds_;
  return stats;
}

}  // namespace medcc::persist
