#include "util/error.hpp"

#include <sstream>

namespace medcc::detail {

void contract_failure(const char* kind, const char* expr, const char* file,
                      int line) {
  std::ostringstream os;
  os << kind << " violated: (" << expr << ") at " << file << ':' << line;
  throw LogicError(os.str());
}

}  // namespace medcc::detail
