#include "util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/error.hpp"
#include "util/table.hpp"

namespace medcc::util {
namespace {

struct Range {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();

  void cover(double v) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  /// Expands degenerate ranges so that mapping to pixels is well defined.
  void regularize() {
    if (lo > hi) {
      lo = 0.0;
      hi = 1.0;
    } else if (lo == hi) {
      lo -= 0.5;
      hi += 0.5;
    }
  }
  [[nodiscard]] double span() const { return hi - lo; }
};

std::size_t to_pixel(double v, const Range& r, std::size_t extent) {
  const double unit = (v - r.lo) / r.span();
  auto px = static_cast<std::ptrdiff_t>(
      std::lround(unit * static_cast<double>(extent - 1)));
  px = std::clamp<std::ptrdiff_t>(px, 0,
                                  static_cast<std::ptrdiff_t>(extent) - 1);
  return static_cast<std::size_t>(px);
}

}  // namespace

std::string line_plot(std::span<const Series> series,
                      const PlotOptions& options) {
  MEDCC_EXPECTS(options.width >= 8 && options.height >= 4);
  Range xr, yr;
  for (const auto& s : series) {
    MEDCC_EXPECTS(s.xs.size() == s.ys.size());
    for (double x : s.xs) xr.cover(x);
    for (double y : s.ys) yr.cover(y);
  }
  xr.regularize();
  yr.regularize();

  std::vector<std::string> canvas(options.height,
                                  std::string(options.width, ' '));
  for (const auto& s : series) {
    // Connect consecutive points with linear interpolation so the staircase
    // of Fig. 6 and the trend lines of Figs. 8-10 read clearly.
    for (std::size_t i = 0; i + 1 < s.xs.size(); ++i) {
      const auto steps = static_cast<std::size_t>(options.width);
      for (std::size_t k = 0; k <= steps; ++k) {
        const double t = static_cast<double>(k) / static_cast<double>(steps);
        const double x = s.xs[i] + t * (s.xs[i + 1] - s.xs[i]);
        const double y = s.ys[i] + t * (s.ys[i + 1] - s.ys[i]);
        const std::size_t cx = to_pixel(x, xr, options.width);
        const std::size_t cy = to_pixel(y, yr, options.height);
        canvas[options.height - 1 - cy][cx] = '.';
      }
    }
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      const std::size_t cx = to_pixel(s.xs[i], xr, options.width);
      const std::size_t cy = to_pixel(s.ys[i], yr, options.height);
      canvas[options.height - 1 - cy][cx] = s.marker;
    }
  }

  std::ostringstream os;
  if (!options.title.empty()) os << options.title << '\n';
  for (const auto& s : series)
    os << "  [" << s.marker << "] " << s.name << '\n';
  const std::string ylo = fmt(yr.lo, 2), yhi = fmt(yr.hi, 2);
  const std::size_t lw = std::max(ylo.size(), yhi.size());
  for (std::size_t r = 0; r < options.height; ++r) {
    std::string label(lw, ' ');
    if (r == 0)
      label = std::string(lw - yhi.size(), ' ') + yhi;
    else if (r + 1 == options.height)
      label = std::string(lw - ylo.size(), ' ') + ylo;
    os << label << " |" << canvas[r] << '\n';
  }
  os << std::string(lw + 1, ' ') << '+' << std::string(options.width, '-')
     << '\n';
  const std::string xlo = fmt(xr.lo, 2), xhi = fmt(xr.hi, 2);
  os << std::string(lw + 2, ' ') << xlo
     << std::string(options.width > xlo.size() + xhi.size()
                        ? options.width - xlo.size() - xhi.size()
                        : 1,
                    ' ')
     << xhi << '\n';
  if (!options.x_label.empty())
    os << std::string(lw + 2, ' ') << "x: " << options.x_label
       << (options.y_label.empty() ? "" : ", y: " + options.y_label) << '\n';
  return os.str();
}

std::string heatmap(const std::vector<std::vector<double>>& cells,
                    const PlotOptions& options) {
  MEDCC_EXPECTS(!cells.empty());
  const std::size_t cols = cells.front().size();
  MEDCC_EXPECTS(cols > 0);
  for (const auto& row : cells) MEDCC_EXPECTS(row.size() == cols);

  Range vr;
  for (const auto& row : cells)
    for (double v : row) vr.cover(v);
  vr.regularize();

  static constexpr char kShades[] = " .:-=+*#%@";
  constexpr std::size_t kLevels = sizeof(kShades) - 2;

  std::ostringstream os;
  if (!options.title.empty()) os << options.title << '\n';
  // Print top row (largest row index) first so the y axis increases upward.
  for (std::size_t r = cells.size(); r-- > 0;) {
    os.width(4);
    os << r + 1;
    os << " |";
    for (std::size_t c = 0; c < cols; ++c) {
      const double unit = (cells[r][c] - vr.lo) / vr.span();
      const auto level = static_cast<std::size_t>(
          std::lround(unit * static_cast<double>(kLevels)));
      const char shade = kShades[std::min(level, kLevels)];
      os << shade << shade;  // double width for a square-ish aspect
    }
    os << '\n';
  }
  os << "     +" << std::string(cols * 2, '-') << '\n';
  os << "      1";
  if (cols > 1) {
    const std::string last = fmt(cols);
    os << std::string(cols * 2 > last.size() + 3 ? cols * 2 - last.size() - 1
                                                 : 1,
                      ' ')
       << last;
  }
  os << '\n';
  os << "scale: '" << kShades[0] << "' = " << fmt(vr.lo, 2) << "  ..  '"
     << kShades[kLevels] << "' = " << fmt(vr.hi, 2) << '\n';
  if (!options.x_label.empty())
    os << "x: " << options.x_label << ", y: " << options.y_label << '\n';
  return os.str();
}

std::string bar_chart(std::span<const std::string> labels,
                      std::span<const double> values,
                      const PlotOptions& options) {
  MEDCC_EXPECTS(labels.size() == values.size());
  Range vr;
  vr.cover(0.0);
  for (double v : values) vr.cover(v);
  vr.regularize();

  std::size_t lw = 0;
  for (const auto& l : labels) lw = std::max(lw, l.size());

  std::ostringstream os;
  if (!options.title.empty()) os << options.title << '\n';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const double unit = (values[i] - vr.lo) / vr.span();
    const auto len = static_cast<std::size_t>(
        std::lround(unit * static_cast<double>(options.width)));
    os << labels[i] << std::string(lw - labels[i].size(), ' ') << " |"
       << std::string(len, '#') << ' ' << fmt(values[i], 2) << '\n';
  }
  return os.str();
}

std::string grouped_bar_chart(std::span<const std::string> group_labels,
                              std::span<const std::string> series_names,
                              const std::vector<std::vector<double>>& values,
                              const PlotOptions& options) {
  MEDCC_EXPECTS(values.size() == series_names.size());
  for (const auto& row : values)
    MEDCC_EXPECTS(row.size() == group_labels.size());

  Range vr;
  vr.cover(0.0);
  for (const auto& row : values)
    for (double v : row) vr.cover(v);
  vr.regularize();

  static constexpr char kMarks[] = "#=+*%@";
  std::size_t lw = 0;
  for (const auto& l : group_labels) lw = std::max(lw, l.size());
  for (const auto& s : series_names) lw = std::max(lw, s.size() + 4);

  std::ostringstream os;
  if (!options.title.empty()) os << options.title << '\n';
  for (std::size_t s = 0; s < series_names.size(); ++s)
    os << "  [" << kMarks[s % (sizeof(kMarks) - 1)] << "] " << series_names[s]
       << '\n';
  for (std::size_t g = 0; g < group_labels.size(); ++g) {
    for (std::size_t s = 0; s < values.size(); ++s) {
      const std::string label = (s == 0) ? group_labels[g] : std::string{};
      const double unit = (values[s][g] - vr.lo) / vr.span();
      const auto len = static_cast<std::size_t>(
          std::lround(unit * static_cast<double>(options.width)));
      os << label << std::string(lw - label.size(), ' ') << " |"
         << std::string(len, kMarks[s % (sizeof(kMarks) - 1)]) << ' '
         << fmt(values[s][g], 2) << '\n';
    }
  }
  return os.str();
}

}  // namespace medcc::util
