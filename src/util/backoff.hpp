// Deterministic exponential backoff for retry loops (client reconnects,
// transient-failure polling).
//
// No jitter is built in: repo-wide reproducibility rules route all
// randomness through util::Prng, so callers that want decorrelated
// retries add their own jitter from a seeded stream. The sequence is
// initial, initial*factor, ... capped at `cap`.
#pragma once

#include "util/error.hpp"

namespace medcc::util {

class Backoff {
public:
  Backoff(double initial_ms, double cap_ms, double factor = 2.0)
      : initial_ms_(initial_ms),
        cap_ms_(cap_ms),
        factor_(factor),
        next_ms_(initial_ms) {
    MEDCC_EXPECTS(initial_ms > 0.0);
    MEDCC_EXPECTS(cap_ms >= initial_ms);
    MEDCC_EXPECTS(factor >= 1.0);
  }

  /// The delay to apply before the *next* attempt, advancing the state.
  [[nodiscard]] double next_ms() {
    const double delay = next_ms_;
    next_ms_ = delay * factor_ >= cap_ms_ ? cap_ms_ : delay * factor_;
    return delay;
  }

  /// The delay next_ms() would return, without advancing.
  [[nodiscard]] double peek_ms() const { return next_ms_; }

  /// Restarts the sequence from the initial delay (call after success).
  void reset() { next_ms_ = initial_ms_; }

private:
  double initial_ms_;
  double cap_ms_;
  double factor_;
  double next_ms_;
};

}  // namespace medcc::util
