// Terminal plots for regenerating the paper's figures without a GUI:
// line/staircase charts (Figs. 6, 8-10, 15) and a heatmap (Fig. 11).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace medcc::util {

/// One named series of (x, y) points for a LinePlot.
struct Series {
  std::string name;
  std::vector<double> xs;
  std::vector<double> ys;
  char marker = '*';
};

/// Options controlling plot rendering.
struct PlotOptions {
  std::size_t width = 72;   ///< interior columns of the canvas
  std::size_t height = 20;  ///< interior rows of the canvas
  std::string x_label;
  std::string y_label;
  std::string title;
};

/// Renders one or more series on a shared axis as ASCII art.
/// Each series is drawn with its marker; overlapping points show the
/// marker of the later series.
[[nodiscard]] std::string line_plot(std::span<const Series> series,
                                    const PlotOptions& options);

/// Renders a matrix as a shaded heatmap (low " .:-=+*#%@" high), with
/// row/column indices and a value scale; used for the Fig. 11 surface.
/// `cells[r][c]` maps row r (bottom-to-top as printed top-down) and col c.
[[nodiscard]] std::string heatmap(
    const std::vector<std::vector<double>>& cells, const PlotOptions& options);

/// Renders a horizontal bar chart: one labelled bar per entry.
[[nodiscard]] std::string bar_chart(std::span<const std::string> labels,
                                    std::span<const double> values,
                                    const PlotOptions& options);

/// Renders grouped bars (e.g. CG vs GAIN3 per budget, Fig. 15).
[[nodiscard]] std::string grouped_bar_chart(
    std::span<const std::string> group_labels,
    std::span<const std::string> series_names,
    const std::vector<std::vector<double>>& values,  // [series][group]
    const PlotOptions& options);

}  // namespace medcc::util
