// Minimal leveled logger for the library, the simulator, and the tool
// drivers.
//
// Logging is off (Warn) by default so tests and benches stay quiet;
// the simulator's trace facility (sim/trace.hpp) is the structured way
// to observe execution, this logger is for diagnostics only.
//
// Output is one structured key=value line per call:
//
//   level=ERROR trace=4fd1...9c msg="socket closed" peer=10.0.0.3
//
// The level and (when a LogTraceScope is active on the thread) the
// trace id are stamped first, the concatenated message travels as a
// quoted msg= value, so the lines grep and parse uniformly.
//
// Thread contract: everything here is thread-safe. The threshold is an
// atomic, and each line is emitted with a SINGLE write(2) to stderr --
// POSIX guarantees writes to the same pipe/file below PIPE_BUF don't
// interleave, so concurrent lines stay intact without any process-wide
// lock on the emission path.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace medcc::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Returns the process-wide minimum level that is actually emitted.
[[nodiscard]] LogLevel log_threshold();

/// Sets the process-wide log threshold. Thread-safe (atomic): callers
/// may flip it at any time; in-flight lines use whichever value they
/// observed.
void set_log_threshold(LogLevel level);

/// Emits one structured line to stderr if `level` passes the
/// threshold. `message` becomes the quoted msg= value.
void log_line(LogLevel level, const std::string& message);

/// Stamps every log line emitted by THIS thread inside the scope with
/// trace=<id> (the request's hex trace id). Scopes nest; the previous
/// stamp is restored on exit. The id travels as a plain string so util
/// stays independent of the obs subsystem.
class LogTraceScope {
public:
  explicit LogTraceScope(std::string_view trace_id);
  ~LogTraceScope();

  LogTraceScope(const LogTraceScope&) = delete;
  LogTraceScope& operator=(const LogTraceScope&) = delete;

private:
  std::string saved_;
};

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_threshold() <= LogLevel::Debug)
    log_line(LogLevel::Debug, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_info(Args&&... args) {
  if (log_threshold() <= LogLevel::Info)
    log_line(LogLevel::Info, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_warn(Args&&... args) {
  if (log_threshold() <= LogLevel::Warn)
    log_line(LogLevel::Warn, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_error(Args&&... args) {
  if (log_threshold() <= LogLevel::Error)
    log_line(LogLevel::Error, detail::concat(std::forward<Args>(args)...));
}

}  // namespace medcc::util
