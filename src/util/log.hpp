// Minimal leveled logger for the simulator and bench drivers.
//
// Logging is off (Warn) by default so tests and benches stay quiet;
// the simulator's trace facility (sim/trace.hpp) is the structured way
// to observe execution, this logger is for diagnostics only.
#pragma once

#include <sstream>
#include <string>

namespace medcc::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Returns the process-wide minimum level that is actually emitted.
[[nodiscard]] LogLevel log_threshold();

/// Sets the process-wide log threshold (not thread-safe; set at startup).
void set_log_threshold(LogLevel level);

/// Emits one line to stderr if `level` passes the threshold.
void log_line(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_threshold() <= LogLevel::Debug)
    log_line(LogLevel::Debug, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_info(Args&&... args) {
  if (log_threshold() <= LogLevel::Info)
    log_line(LogLevel::Info, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_warn(Args&&... args) {
  if (log_threshold() <= LogLevel::Warn)
    log_line(LogLevel::Warn, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_error(Args&&... args) {
  if (log_threshold() <= LogLevel::Error)
    log_line(LogLevel::Error, detail::concat(std::forward<Args>(args)...));
}

}  // namespace medcc::util
