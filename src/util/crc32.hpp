// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte
// buffers: the checksum that frames every record of the persistence
// subsystem (src/persist). Incremental use is supported by threading the
// previous return value back in as `seed`, so a record can be checksummed
// in pieces without concatenating buffers.
#pragma once

#include <cstdint>
#include <string_view>

namespace medcc::util {

/// CRC-32 of `bytes`, continuing from `seed` (0 starts a fresh sum).
/// crc32(a + b) == crc32(b, crc32(a)).
[[nodiscard]] std::uint32_t crc32(std::string_view bytes,
                                  std::uint32_t seed = 0);

}  // namespace medcc::util
