#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace medcc::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  MEDCC_EXPECTS(n_ > 0);
  return mean_;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  MEDCC_EXPECTS(n_ > 0);
  return min_;
}

double RunningStats::max() const {
  MEDCC_EXPECTS(n_ > 0);
  return max_;
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double mean(std::span<const double> xs) {
  MEDCC_EXPECTS(!xs.empty());
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double percentile(std::span<const double> xs, double p) {
  MEDCC_EXPECTS(!xs.empty());
  MEDCC_EXPECTS(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

std::vector<std::size_t> histogram(std::span<const double> xs, double lo,
                                   double hi, std::size_t bins) {
  MEDCC_EXPECTS(bins > 0);
  MEDCC_EXPECTS(lo < hi);
  std::vector<std::size_t> counts(bins, 0);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (double x : xs) {
    auto idx = static_cast<std::ptrdiff_t>((x - lo) / width);
    idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                     static_cast<std::ptrdiff_t>(bins) - 1);
    ++counts[static_cast<std::size_t>(idx)];
  }
  return counts;
}

}  // namespace medcc::util
