#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace medcc::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  MEDCC_EXPECTS(n_ > 0);
  return mean_;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  MEDCC_EXPECTS(n_ > 0);
  return min_;
}

double RunningStats::max() const {
  MEDCC_EXPECTS(n_ > 0);
  return max_;
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double mean(std::span<const double> xs) {
  MEDCC_EXPECTS(!xs.empty());
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double percentile(std::span<const double> xs, double p) {
  MEDCC_EXPECTS(!xs.empty());
  MEDCC_EXPECTS(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

std::vector<std::size_t> histogram(std::span<const double> xs, double lo,
                                   double hi, std::size_t bins) {
  MEDCC_EXPECTS(bins > 0);
  MEDCC_EXPECTS(lo < hi);
  std::vector<std::size_t> counts(bins, 0);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (double x : xs) {
    auto idx = static_cast<std::ptrdiff_t>((x - lo) / width);
    idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                     static_cast<std::ptrdiff_t>(bins) - 1);
    ++counts[static_cast<std::size_t>(idx)];
  }
  return counts;
}

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
  MEDCC_EXPECTS(edges_.size() >= 2);
  for (std::size_t i = 1; i < edges_.size(); ++i)
    MEDCC_EXPECTS(edges_[i - 1] < edges_[i]);
  counts_.assign(edges_.size() - 1, 0);
}

Histogram Histogram::uniform(double lo, double hi, std::size_t bins) {
  MEDCC_EXPECTS(bins > 0);
  MEDCC_EXPECTS(lo < hi);
  std::vector<double> edges(bins + 1);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (std::size_t i = 0; i <= bins; ++i)
    edges[i] = lo + width * static_cast<double>(i);
  edges.back() = hi;  // exact upper edge despite fp accumulation
  return Histogram(std::move(edges));
}

Histogram Histogram::exponential(double lo, double growth, std::size_t bins) {
  MEDCC_EXPECTS(bins > 0);
  MEDCC_EXPECTS(lo > 0.0);
  MEDCC_EXPECTS(growth > 1.0);
  std::vector<double> edges(bins + 1);
  double edge = lo;
  for (std::size_t i = 0; i <= bins; ++i, edge *= growth) edges[i] = edge;
  return Histogram(std::move(edges));
}

void Histogram::add(double x) {
  std::size_t b = 0;
  while (b + 1 < counts_.size() && x >= edges_[b + 1]) ++b;
  ++counts_[b];
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
}

void Histogram::add_bucket(std::size_t b, std::uint64_t n) {
  MEDCC_EXPECTS(b < counts_.size());
  if (n == 0) return;
  counts_[b] += n;
  if (count_ == 0) {
    min_ = edges_[b];
    max_ = edges_[b + 1];
  } else {
    min_ = std::min(min_, edges_[b]);
    max_ = std::max(max_, edges_[b + 1]);
  }
  count_ += n;
}

double Histogram::min() const {
  MEDCC_EXPECTS(count_ > 0);
  return min_;
}

double Histogram::max() const {
  MEDCC_EXPECTS(count_ > 0);
  return max_;
}

double Histogram::quantile(double p) const {
  MEDCC_EXPECTS(count_ > 0);
  MEDCC_EXPECTS(p >= 0.0 && p <= 100.0);
  const double rank = p / 100.0 * static_cast<double>(count_ - 1);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::uint64_t n = counts_[b];
    if (n == 0) continue;
    if (rank <= static_cast<double>(cum + n - 1)) {
      const double lo = edges_[b];
      const double hi = edges_[b + 1];
      const double within = rank - static_cast<double>(cum) + 0.5;
      const double estimate =
          lo + (hi - lo) * within / static_cast<double>(n);
      return std::clamp(estimate, min_, max_);
    }
    cum += n;
  }
  return max_;  // rank == count-1 in the last non-empty bucket
}

void Histogram::merge(const Histogram& other) {
  MEDCC_EXPECTS(edges_ == other.edges_);
  if (other.count_ == 0) return;
  for (std::size_t b = 0; b < counts_.size(); ++b)
    counts_[b] += other.counts_[b];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
}

}  // namespace medcc::util
