// POSIX file-descriptor RAII and the small set of socket helpers the
// net/ layer builds on: EINTR-safe send/recv wrappers and poll-based
// readiness waits with millisecond deadlines.
//
// This layer is deliberately exception-free: every helper reports
// failure through its return value (with errno left intact), so the
// transport code above it decides what is fatal. Only FdHandle touches
// ownership.
#pragma once

#include <cstddef>
#include <utility>

namespace medcc::util {

/// Move-only owner of a POSIX file descriptor; closes on destruction.
class FdHandle {
public:
  FdHandle() = default;
  explicit FdHandle(int fd) : fd_(fd) {}
  ~FdHandle() { close(); }

  FdHandle(const FdHandle&) = delete;
  FdHandle& operator=(const FdHandle&) = delete;

  FdHandle(FdHandle&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  FdHandle& operator=(FdHandle&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  explicit operator bool() const { return valid(); }

  /// Releases ownership without closing; returns the descriptor.
  [[nodiscard]] int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// Closes now (idempotent); EINTR on close is ignored per POSIX advice.
  void close();

  /// Takes ownership of `fd`, closing any previously held descriptor.
  void reset(int fd = -1) {
    close();
    fd_ = fd;
  }

private:
  int fd_ = -1;
};

/// Sets or clears O_NONBLOCK. Returns false (errno set) on failure.
[[nodiscard]] bool set_nonblocking(int fd, bool on);

/// Disables Nagle's algorithm (TCP_NODELAY); best-effort.
void set_tcp_nodelay(int fd);

/// Outcome of a poll-based readiness wait.
enum class WaitResult { ready, timeout, error };

/// Waits until `fd` is readable, for up to `timeout_ms` (< 0 = forever).
[[nodiscard]] WaitResult wait_readable(int fd, double timeout_ms);

/// Waits until `fd` is writable, for up to `timeout_ms` (< 0 = forever).
[[nodiscard]] WaitResult wait_writable(int fd, double timeout_ms);

/// EINTR-retrying send of the full buffer on a *blocking* descriptor.
/// Returns false (errno set) on any terminal error.
[[nodiscard]] bool send_all(int fd, const char* data, std::size_t size);

/// One EINTR-retrying recv. Returns bytes read, 0 on orderly shutdown,
/// -1 on error (errno set; EAGAIN/EWOULDBLOCK mean "no data yet" on
/// non-blocking descriptors).
[[nodiscard]] long recv_some(int fd, char* out, std::size_t capacity);

}  // namespace medcc::util
