#include "util/table.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace medcc::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  MEDCC_EXPECTS(!headers_.empty());
  alignment_.assign(headers_.size(), Align::Right);
  alignment_.front() = Align::Left;
}

void Table::set_alignment(std::vector<Align> alignment) {
  MEDCC_EXPECTS(alignment.size() == headers_.size());
  alignment_ = std::move(alignment);
}

void Table::add_row(std::vector<std::string> cells) {
  MEDCC_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit_row = [&](std::ostringstream& os,
                      const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << "  ";
      const auto pad = widths[c] - row[c].size();
      if (alignment_[c] == Align::Right) os << std::string(pad, ' ');
      os << row[c];
      if (alignment_[c] == Align::Left && c + 1 != row.size())
        os << std::string(pad, ' ');
    }
    os << '\n';
  };

  std::ostringstream os;
  emit_row(os, headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    total += widths[c] + (c == 0 ? 0 : 2);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(os, row);
  return os.str();
}

std::string Table::render_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string fmt(double value, int digits) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(digits);
  os << value;
  return os.str();
}

std::string fmt(std::size_t value) { return std::to_string(value); }
std::string fmt(int value) { return std::to_string(value); }

}  // namespace medcc::util
