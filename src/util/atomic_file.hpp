// RAII file handles and the temp-file + fsync + rename atomic-write
// helper shared by everything that persists state to disk.
//
// util::File wraps a POSIX file descriptor (library code never touches
// raw fopen/FILE* -- the raw-fopen lint rule enforces this): it closes
// on destruction, reports every failure as medcc::IoError with errno
// text, and exposes exactly the operations durable storage needs --
// append, fsync, truncate, whole-file reads.
//
// atomic_write_file() is the crash-safe publication primitive: the new
// contents are written to `<path>.tmp` in the same directory, fsynced,
// renamed over `path`, and the directory entry is fsynced too. A reader
// therefore observes either the old file or the complete new one, never
// a torn mixture; a crash mid-write leaves at worst a stale `.tmp` that
// the next write overwrites. Callers are expected to be single-writer
// per path (the persistence subsystem serializes writers with a mutex).
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>

namespace medcc::util {

/// Move-only RAII POSIX file descriptor.
class File {
public:
  File() = default;
  ~File();

  File(File&& other) noexcept;
  File& operator=(File&& other) noexcept;
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  /// Creates (or truncates) `path` for writing. Throws medcc::IoError.
  [[nodiscard]] static File create(const std::filesystem::path& path);
  /// Opens (creating if absent) `path` for appending.
  [[nodiscard]] static File append(const std::filesystem::path& path);
  /// Opens `path` read-only.
  [[nodiscard]] static File open_read(const std::filesystem::path& path);

  [[nodiscard]] bool is_open() const { return fd_ >= 0; }

  /// Writes all of `bytes` (retrying short writes). Throws IoError.
  void write_all(std::string_view bytes);
  /// Flushes file contents and metadata to stable storage (fsync).
  void sync();
  /// Truncates (or extends with zeros) to `size` bytes.
  void truncate(std::uint64_t size);
  /// Current size in bytes (fstat).
  [[nodiscard]] std::uint64_t size() const;
  /// Reads the whole file from offset 0 (open_read handles only).
  [[nodiscard]] std::string read_all() const;

  /// Closes early; the destructor then has nothing to do. Idempotent.
  void close();

private:
  explicit File(int fd, std::filesystem::path path)
      : fd_(fd), path_(std::move(path)) {}

  int fd_ = -1;
  std::filesystem::path path_;  // for error messages only
};

/// True when `path` exists as a regular file.
[[nodiscard]] bool file_exists(const std::filesystem::path& path);

/// Reads a whole file into a string. Throws medcc::IoError (including
/// when the file does not exist).
[[nodiscard]] std::string read_file(const std::filesystem::path& path);

/// Atomically replaces `path` with `bytes`: write `<path>.tmp`, fsync,
/// rename, fsync the parent directory. Throws medcc::IoError; on
/// failure the target is untouched (a stale `.tmp` may remain).
void atomic_write_file(const std::filesystem::path& path,
                       std::string_view bytes);

}  // namespace medcc::util
