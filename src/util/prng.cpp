#include "util/prng.hpp"

#include <cmath>
#include <numeric>

namespace medcc::util {

double Prng::normal(double mean, double stddev) {
  MEDCC_EXPECTS(stddev >= 0.0);
  // Box-Muller; u in (0,1] to keep the log finite.
  const double u = 1.0 - uniform_real(0.0, 1.0);
  const double v = uniform_real(0.0, 1.0);
  const double z =
      std::sqrt(-2.0 * std::log(u)) * std::cos(2.0 * 3.14159265358979323846 * v);
  return mean + stddev * z;
}

std::vector<std::size_t> Prng::sample_indices(std::size_t n, std::size_t k) {
  MEDCC_EXPECTS(k <= n);
  // Partial Fisher-Yates over an index vector: O(n) setup, O(k) swaps.
  std::vector<std::size_t> pool(n);
  std::iota(pool.begin(), pool.end(), std::size_t{0});
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(static_cast<std::int64_t>(i),
                    static_cast<std::int64_t>(n) - 1));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace medcc::util
