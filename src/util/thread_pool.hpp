// A small fixed-size thread pool with a deterministic parallel_for.
//
// The experiment harness evaluates thousands of independent (instance,
// budget) cells; parallel_for_index distributes them over worker threads
// while keeping results deterministic: each index writes only to its own
// output slot and derives randomness from a per-index forked PRNG stream,
// so the schedule of workers never affects the numbers.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/error.hpp"
#include "util/mutex.hpp"

namespace medcc::util {

/// Fixed-size worker pool executing queued tasks FIFO.
class ThreadPool {
public:
  /// Creates `threads` workers (>=1). Defaults to hardware concurrency.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues a task for asynchronous execution.
  /// Precondition: request_stop() has not been called (throws LogicError
  /// otherwise); use try_submit when submission races with shutdown.
  void submit(std::function<void()> task);

  /// Non-blocking submission path for admission control: enqueues `task`
  /// and returns true, or returns false -- without blocking, throwing, or
  /// enqueuing -- once request_stop() has been called. Services draining
  /// during shutdown therefore never deadlock on a rejected submit.
  [[nodiscard]] bool try_submit(std::function<void()> task);

  /// Initiates shutdown: submit() starts throwing and try_submit()
  /// returning false. Tasks already queued still run to completion
  /// (drain with wait_idle(); the destructor joins the workers).
  /// Idempotent and safe to call from any thread, including a worker.
  void request_stop();

  /// True once request_stop() (or destruction) has begun.
  [[nodiscard]] bool stop_requested() const;

  /// Blocks until every submitted task has finished.
  /// Rethrows the first exception raised by any task, if there was one.
  void wait_idle();

private:
  void worker_loop();

  Mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_ MEDCC_GUARDED_BY(mutex_);
  /// Populated by the constructor, joined by the destructor; never
  /// touched while the pool is running.
  MEDCC_NOT_GUARDED std::vector<std::thread> workers_;
  std::size_t in_flight_ MEDCC_GUARDED_BY(mutex_) = 0;
  /// Written under mutex_ (so the condition variables stay race-free) but
  /// atomic so stop_requested() can poll without taking the lock.
  std::atomic<bool> stopping_{false};
  std::exception_ptr first_error_ MEDCC_GUARDED_BY(mutex_);
};

/// Runs body(i) for every i in [0, count) using `pool`, blocking until done.
/// body must not throw across indices it does not own; exceptions are
/// captured and rethrown from the calling thread.
void parallel_for_index(ThreadPool& pool, std::size_t count,
                        const std::function<void(std::size_t)>& body,
                        std::size_t grain = 1);

/// Process-wide pool, sized from the MEDCC_THREADS environment variable
/// when set, else hardware concurrency. Intended for bench/example drivers;
/// library code takes a ThreadPool& parameter instead.
[[nodiscard]] ThreadPool& global_pool();

}  // namespace medcc::util
