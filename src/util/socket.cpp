#include "util/socket.hpp"

#include <cerrno>
#include <cmath>

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace medcc::util {

void FdHandle::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int next = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return ::fcntl(fd, F_SETFL, next) == 0;
}

void set_tcp_nodelay(int fd) {
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

namespace {

WaitResult wait_for(int fd, short events, double timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  // poll takes whole milliseconds; round sub-millisecond waits up so a
  // positive timeout never degenerates into a busy spin.
  int ms = -1;
  if (timeout_ms >= 0.0)
    ms = static_cast<int>(std::ceil(std::min(timeout_ms, 2.0e9)));
  for (;;) {
    const int rc = ::poll(&pfd, 1, ms);
    if (rc > 0) {
      if ((pfd.revents & (POLLERR | POLLNVAL)) != 0) return WaitResult::error;
      return WaitResult::ready;
    }
    if (rc == 0) return WaitResult::timeout;
    if (errno == EINTR) continue;
    return WaitResult::error;
  }
}

}  // namespace

WaitResult wait_readable(int fd, double timeout_ms) {
  return wait_for(fd, POLLIN, timeout_ms);
}

WaitResult wait_writable(int fd, double timeout_ms) {
  return wait_for(fd, POLLOUT, timeout_ms);
}

bool send_all(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

long recv_some(int fd, char* out, std::size_t capacity) {
  for (;;) {
    const ssize_t n = ::recv(fd, out, capacity, 0);
    if (n < 0 && errno == EINTR) continue;
    return static_cast<long>(n);
  }
}

}  // namespace medcc::util
