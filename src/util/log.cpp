#include "util/log.hpp"

#include <unistd.h>

#include <atomic>
#include <utility>

namespace medcc::util {
namespace {

std::atomic<LogLevel> g_threshold{LogLevel::Warn};

/// The current thread's trace stamp ("" = none), managed by
/// LogTraceScope. thread_local, so no synchronization is needed.
thread_local std::string t_trace_id;  // NOLINT(runtime/string)

constexpr const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

/// msg= values are double-quoted; escape the three characters that
/// would break the quoting or the one-line framing.
void append_quoted(std::string& out, const std::string& text) {
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out.append("\\\""); break;
      case '\\': out.append("\\\\"); break;
      case '\n': out.append("\\n"); break;
      default: out.push_back(c);
    }
  }
  out.push_back('"');
}

/// One write(2) per line keeps concurrent lines from interleaving
/// (atomic for writes up to PIPE_BUF; log lines are far below it).
/// Short writes -- possible on weird stderr targets -- are continued;
/// a failed write is dropped, logging must never throw.
void write_line(const std::string& line) {
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n =
        ::write(STDERR_FILENO, line.data() + off, line.size() - off);
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

LogLevel log_threshold() { return g_threshold.load(std::memory_order_relaxed); }

void set_log_threshold(LogLevel level) {
  g_threshold.store(level, std::memory_order_relaxed);
}

void log_line(LogLevel level, const std::string& message) {
  std::string line = "level=";
  line.append(level_name(level));
  if (!t_trace_id.empty()) {
    line.append(" trace=");
    line.append(t_trace_id);
  }
  line.append(" msg=");
  append_quoted(line, message);
  line.push_back('\n');
  write_line(line);
}

LogTraceScope::LogTraceScope(std::string_view trace_id)
    : saved_(std::move(t_trace_id)) {
  t_trace_id.assign(trace_id);
}

LogTraceScope::~LogTraceScope() { t_trace_id = std::move(saved_); }

}  // namespace medcc::util
