#include "util/log.hpp"

#include <atomic>
#include <iostream>

#include "util/mutex.hpp"

namespace medcc::util {
namespace {

std::atomic<LogLevel> g_threshold{LogLevel::Warn};
/// Serializes writes to std::cerr so concurrent log lines never
/// interleave mid-line. The stream itself is the guarded resource; the
/// capability cannot name it, so the discipline is: all emission goes
/// through log_line(), which takes this lock.
Mutex g_emit_mutex;

constexpr const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_threshold() { return g_threshold.load(std::memory_order_relaxed); }

void set_log_threshold(LogLevel level) {
  g_threshold.store(level, std::memory_order_relaxed);
}

void log_line(LogLevel level, const std::string& message) {
  const MutexLock lock(g_emit_mutex);
  std::cerr << "[medcc:" << level_name(level) << "] " << message << '\n';
}

}  // namespace medcc::util
