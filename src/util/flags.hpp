// Strict whole-string numeric flag parsing for the tool drivers.
//
// std::stoul / std::stod quietly accept trailing junk ("12x"), leading
// whitespace, and -- for the unsigned forms -- negative values that wrap
// around. Every tool that parses a --threads/--port/--timeout flag needs
// the same strict behaviour, so it lives here once: the whole string
// must be the number, overflow is an error, and failures throw
// medcc::InvalidArgument with the offending text in the message (the
// tools catch it and answer with their usage string).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/error.hpp"

namespace medcc::util {

/// Parses a non-negative decimal integer ("0", "42"). Rejects empty
/// strings, signs, whitespace, trailing characters, and values that do
/// not fit std::size_t. Throws medcc::InvalidArgument.
[[nodiscard]] std::size_t parse_flag_size(const std::string& text);

/// parse_flag_size restricted to the TCP port range [0, 65535].
[[nodiscard]] std::uint16_t parse_flag_port(const std::string& text);

/// Parses a finite decimal floating-point value ("2.5", "1e3", "-1").
/// Rejects empty strings, whitespace, trailing characters, and
/// non-finite results ("inf", "nan"). Throws medcc::InvalidArgument.
[[nodiscard]] double parse_flag_double(const std::string& text);

}  // namespace medcc::util
