// Contract checking and error types shared across the medcc libraries.
//
// Follows the C++ Core Guidelines (I.6 / E.x): preconditions are checked with
// MEDCC_EXPECTS, postconditions with MEDCC_ENSURES, and recoverable errors are
// reported with exceptions derived from medcc::Error.
#pragma once

#include <stdexcept>
#include <string>

namespace medcc {

/// Base class for all recoverable errors thrown by medcc libraries.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a function argument violates its documented domain.
class InvalidArgument : public Error {
public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when a problem instance admits no feasible solution
/// (e.g. budget below the least-cost schedule in MED-CC).
class Infeasible : public Error {
public:
  explicit Infeasible(const std::string& what) : Error(what) {}
};

/// Thrown when an operating-system file or socket operation fails;
/// carries the errno text of the failing call.
class IoError : public Error {
public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// Thrown when an internal invariant is violated; indicates a bug.
class LogicError : public std::logic_error {
public:
  explicit LogicError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void contract_failure(const char* kind, const char* expr,
                                   const char* file, int line);
}  // namespace detail

}  // namespace medcc

/// Precondition check; throws medcc::LogicError on violation.
#define MEDCC_EXPECTS(expr)                                                  \
  do {                                                                       \
    if (!(expr))                                                             \
      ::medcc::detail::contract_failure("Precondition", #expr, __FILE__,     \
                                        __LINE__);                           \
  } while (false)

/// Postcondition check; throws medcc::LogicError on violation.
#define MEDCC_ENSURES(expr)                                                  \
  do {                                                                       \
    if (!(expr))                                                             \
      ::medcc::detail::contract_failure("Postcondition", #expr, __FILE__,    \
                                        __LINE__);                           \
  } while (false)
