// Clang thread-safety (capability) analysis annotations.
//
// These macros attach compile-time lock-discipline contracts to mutexes,
// the data they guard, and the functions that acquire them. Under Clang
// with -Wthread-safety (wired up by cmake/StaticAnalysis.cmake and the
// clang CI leg, where it is combined with -Werror) the compiler rejects
// code that touches a MEDCC_GUARDED_BY field without holding its mutex,
// that double-acquires, or that leaks a capability. Under every other
// compiler the macros expand to nothing, so the annotated code costs
// nothing and builds everywhere.
//
// The annotated lock types these macros are designed for live in
// util/mutex.hpp (util::Mutex, util::SharedMutex and their scoped
// lockers); annotate-by-example recipes are in docs/analysis.md.
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define MEDCC_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define MEDCC_THREAD_ANNOTATION__(x)  // no-op outside Clang
#endif

/// Marks a type as a capability (a lock). `x` names the capability kind
/// in diagnostics, e.g. MEDCC_CAPABILITY("mutex").
#define MEDCC_CAPABILITY(x) MEDCC_THREAD_ANNOTATION__(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases
/// a capability (std::scoped_lock-style).
#define MEDCC_SCOPED_CAPABILITY MEDCC_THREAD_ANNOTATION__(scoped_lockable)

/// Field annotation: reading or writing the field requires holding `x`.
#define MEDCC_GUARDED_BY(x) MEDCC_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer-field annotation: the *pointee* is protected by `x` (the
/// pointer itself may be read freely).
#define MEDCC_PT_GUARDED_BY(x) MEDCC_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Function annotation: the caller must already hold the capability.
#define MEDCC_REQUIRES(...) \
  MEDCC_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Function annotation: the caller must hold `x` at least shared.
#define MEDCC_REQUIRES_SHARED(...) \
  MEDCC_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// Function annotation: the function acquires the capability exclusively
/// and does not release it before returning.
#define MEDCC_ACQUIRE(...) \
  MEDCC_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// Shared-acquisition counterpart of MEDCC_ACQUIRE.
#define MEDCC_ACQUIRE_SHARED(...) \
  MEDCC_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

/// Function annotation: the function releases a held capability.
#define MEDCC_RELEASE(...) \
  MEDCC_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// Shared-release counterpart of MEDCC_RELEASE.
#define MEDCC_RELEASE_SHARED(...) \
  MEDCC_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

/// Releases a capability whether it is held shared or exclusively; the
/// right release form for a scoped locker that supports both modes.
#define MEDCC_RELEASE_GENERIC(...) \
  MEDCC_THREAD_ANNOTATION__(release_generic_capability(__VA_ARGS__))

/// Function annotation: tries to acquire; the first argument is the
/// return value that means success, e.g. MEDCC_TRY_ACQUIRE(true, mu).
#define MEDCC_TRY_ACQUIRE(...) \
  MEDCC_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// Function annotation: the caller must NOT hold the capability
/// (deadlock prevention for functions that acquire it themselves).
#define MEDCC_EXCLUDES(...) \
  MEDCC_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (for code reachable
/// only with the lock taken where the analysis cannot see the acquire).
#define MEDCC_ASSERT_CAPABILITY(x) \
  MEDCC_THREAD_ANNOTATION__(assert_capability(x))

/// Function annotation: returns a reference to the named capability.
#define MEDCC_RETURN_CAPABILITY(x) MEDCC_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment explaining why the discipline cannot be expressed;
/// the tree under src/ is required to have none (docs/analysis.md).
#define MEDCC_NO_THREAD_SAFETY_ANALYSIS \
  MEDCC_THREAD_ANNOTATION__(no_thread_safety_analysis)

/// Lint-only marker (expands to nothing everywhere): declares that a
/// field of a mutex-bearing class is *intentionally* not guarded --
/// because it is confined to one thread, written only during
/// construction, or internally synchronized -- and must carry a comment
/// saying which. medcc_lint's mutable-field-near-mutex-without-guarded-by
/// rule accepts it as an explicit opt-out.
#define MEDCC_NOT_GUARDED

namespace medcc::util {

/// True when this translation unit was compiled with the capability
/// analysis attributes enabled (Clang); lets tests and diagnostics
/// report whether the discipline was actually checked.
#if defined(__clang__) && !defined(SWIG)
inline constexpr bool kThreadSafetyAnalysisEnabled = true;
#else
inline constexpr bool kThreadSafetyAnalysisEnabled = false;
#endif

}  // namespace medcc::util
