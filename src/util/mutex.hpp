// Annotated mutex wrappers for the Clang thread-safety analysis.
//
// std::mutex cannot carry capability annotations, so the concurrent
// subsystems lock through these thin wrappers instead: util::Mutex and
// util::SharedMutex are the capabilities, util::MutexLock /
// util::ReaderMutexLock / util::WriterMutexLock the scoped acquirers.
// Under Clang -Wthread-safety the compiler then proves every access to
// a MEDCC_GUARDED_BY field happens with the right lock held; under
// other compilers everything inlines down to the std primitives.
//
// Condition variables: MutexLock exposes the underlying
// std::unique_lock through native() so std::condition_variable can
// wait on it. Write waits as explicit `while (!pred) cv.wait(...)`
// loops in the locked scope -- the analysis then sees the predicate
// reads under the capability (a wait() predicate lambda would be
// analyzed as an unannotated function and rejected).
#pragma once

#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.hpp"

namespace medcc::util {

/// Annotated exclusive mutex (wraps std::mutex).
class MEDCC_CAPABILITY("mutex") Mutex {
public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MEDCC_ACQUIRE() { m_.lock(); }
  void unlock() MEDCC_RELEASE() { m_.unlock(); }
  [[nodiscard]] bool try_lock() MEDCC_TRY_ACQUIRE(true) {
    return m_.try_lock();
  }

  /// The wrapped std::mutex, for condition-variable plumbing only.
  [[nodiscard]] std::mutex& native() { return m_; }

private:
  std::mutex m_;
};

/// Annotated reader/writer mutex (wraps std::shared_mutex).
class MEDCC_CAPABILITY("shared_mutex") SharedMutex {
public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() MEDCC_ACQUIRE() { m_.lock(); }
  void unlock() MEDCC_RELEASE() { m_.unlock(); }
  void lock_shared() MEDCC_ACQUIRE_SHARED() { m_.lock_shared(); }
  void unlock_shared() MEDCC_RELEASE_SHARED() { m_.unlock_shared(); }

private:
  std::shared_mutex m_;
};

/// Scoped exclusive lock on a util::Mutex (std::scoped_lock analogue).
class MEDCC_SCOPED_CAPABILITY MutexLock {
public:
  explicit MutexLock(Mutex& mutex) MEDCC_ACQUIRE(mutex)
      : lock_(mutex.native()) {}
  ~MutexLock() MEDCC_RELEASE() {}  // lock_'s destructor releases

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases early (the destructor then has nothing to do).
  void unlock() MEDCC_RELEASE() { lock_.unlock(); }

  /// The underlying std::unique_lock, for std::condition_variable::wait
  /// only; the capability is modelled as held across the wait.
  [[nodiscard]] std::unique_lock<std::mutex>& native() { return lock_; }

private:
  std::unique_lock<std::mutex> lock_;
};

/// Scoped shared (reader) lock on a util::SharedMutex.
class MEDCC_SCOPED_CAPABILITY ReaderMutexLock {
public:
  explicit ReaderMutexLock(SharedMutex& mutex) MEDCC_ACQUIRE_SHARED(mutex)
      : mutex_(mutex) {
    mutex_.lock_shared();
  }
  ~ReaderMutexLock() MEDCC_RELEASE_GENERIC() { mutex_.unlock_shared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

private:
  SharedMutex& mutex_;
};

/// Scoped exclusive (writer) lock on a util::SharedMutex.
class MEDCC_SCOPED_CAPABILITY WriterMutexLock {
public:
  explicit WriterMutexLock(SharedMutex& mutex) MEDCC_ACQUIRE(mutex)
      : mutex_(mutex) {
    mutex_.lock();
  }
  ~WriterMutexLock() MEDCC_RELEASE() { mutex_.unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

private:
  SharedMutex& mutex_;
};

}  // namespace medcc::util
