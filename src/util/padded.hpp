// Cache-line padded atomics for hot-path statistics.
//
// A block of plain std::atomic counters packs ~8 counters per cache
// line, so every relaxed increment from one thread invalidates the
// line under seven unrelated counters on every other core (false
// sharing). PaddedAtomic gives each counter its own line. All accesses
// are memory_order_relaxed: the counters are monotonic statistics, not
// synchronization edges -- readers tolerate torn *sets* of counters
// (a snapshot may see counter A from after an event and counter B from
// before it), which is the usual contract for metrics.
#pragma once

#include <atomic>
#include <cstddef>

namespace medcc::util {

/// Destructive-interference distance. std::hardware_destructive_
/// interference_size exists but is not implemented by every libstdc++
/// in the support window; 64 bytes is correct for the x86-64 and most
/// AArch64 parts this project targets.
inline constexpr std::size_t kCacheLineSize = 64;

/// A relaxed-order atomic alone on its own cache line. T must be an
/// integral type.
template <typename T>
struct alignas(kCacheLineSize) PaddedAtomic {
  std::atomic<T> value{T{}};

  void add(T n = T{1}) { value.fetch_add(n, std::memory_order_relaxed); }
  void sub(T n = T{1}) { value.fetch_sub(n, std::memory_order_relaxed); }
  [[nodiscard]] T load() const {
    return value.load(std::memory_order_relaxed);
  }
  void store(T v) { value.store(v, std::memory_order_relaxed); }
  [[nodiscard]] T fetch_add(T n = T{1}) {
    return value.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] bool compare_exchange_weak(T& expected, T desired) {
    return value.compare_exchange_weak(expected, desired,
                                       std::memory_order_relaxed);
  }
};

}  // namespace medcc::util
