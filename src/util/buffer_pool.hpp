// A bounded free list of reusable byte buffers.
//
// The network layer assembles every response into chunked connection
// outbufs; without pooling each flush cycle frees its chunks and the
// next burst reallocates them. BufferPool recycles the backing
// std::string allocations: acquire() hands out an empty string whose
// capacity is already reserved, release() clears and parks it (up to
// max_pooled; the excess is simply freed). Internally locked --
// acquire/release are safe from any thread, though the intended use is
// one pool per reactor so the mutex is effectively uncontended.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/mutex.hpp"

namespace medcc::util {

class BufferPool {
 public:
  struct Config {
    /// Capacity reserved in every pooled buffer.
    std::size_t buffer_capacity = 64 * 1024;
    /// Free-list bound; released buffers beyond it are freed.
    std::size_t max_pooled = 64;
  };

  struct Stats {
    std::uint64_t acquired = 0;   ///< total acquire() calls
    std::uint64_t reused = 0;     ///< acquires served from the free list
    std::uint64_t released = 0;   ///< total release() calls
    std::uint64_t discarded = 0;  ///< releases dropped (pool full/shrunk)
    std::size_t pooled = 0;       ///< buffers currently parked
  };

  BufferPool();
  explicit BufferPool(Config config);

  /// Returns an empty buffer with at least buffer_capacity reserved.
  [[nodiscard]] std::string acquire();

  /// Returns a buffer to the pool. Buffers that grew past
  /// buffer_capacity (a large frame was moved in) and buffers beyond
  /// max_pooled are freed instead of parked, so the pool's footprint
  /// stays bounded by max_pooled * buffer_capacity.
  void release(std::string buffer);

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t buffer_capacity() const {
    return config_.buffer_capacity;
  }

 private:
  const Config config_;  // immutable after construction
  mutable util::Mutex mutex_;
  std::vector<std::string> free_ MEDCC_GUARDED_BY(mutex_);
  std::uint64_t acquired_ MEDCC_GUARDED_BY(mutex_) = 0;
  std::uint64_t reused_ MEDCC_GUARDED_BY(mutex_) = 0;
  std::uint64_t released_ MEDCC_GUARDED_BY(mutex_) = 0;
  std::uint64_t discarded_ MEDCC_GUARDED_BY(mutex_) = 0;
};

}  // namespace medcc::util
