#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

namespace medcc::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  request_stop();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  MEDCC_EXPECTS(task != nullptr);
  {
    const MutexLock lock(mutex_);
    MEDCC_EXPECTS(!stopping_.load(std::memory_order_relaxed));
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
}

bool ThreadPool::try_submit(std::function<void()> task) {
  MEDCC_EXPECTS(task != nullptr);
  {
    const MutexLock lock(mutex_);
    if (stopping_.load(std::memory_order_relaxed)) return false;
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
  return true;
}

void ThreadPool::request_stop() {
  {
    const MutexLock lock(mutex_);
    stopping_.store(true, std::memory_order_relaxed);
  }
  wake_.notify_all();
}

bool ThreadPool::stop_requested() const {
  return stopping_.load(std::memory_order_relaxed);
}

void ThreadPool::wait_idle() {
  MutexLock lock(mutex_);
  // Explicit wait loop (not the predicate overload): the analysis then
  // sees the guarded reads happen inside the locked scope.
  while (!(queue_.empty() && in_flight_ == 0)) idle_.wait(lock.native());
  if (first_error_) {
    auto error = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stopping_.load(std::memory_order_relaxed) && queue_.empty())
        wake_.wait(lock.native());
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    try {
      task();
    } catch (...) {
      const MutexLock lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      const MutexLock lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

void parallel_for_index(ThreadPool& pool, std::size_t count,
                        const std::function<void(std::size_t)>& body,
                        std::size_t grain) {
  MEDCC_EXPECTS(grain >= 1);
  if (count == 0) return;
  for (std::size_t begin = 0; begin < count; begin += grain) {
    const std::size_t end = std::min(begin + grain, count);
    pool.submit([&body, begin, end] {
      for (std::size_t i = begin; i < end; ++i) body(i);
    });
  }
  pool.wait_idle();
}

ThreadPool& global_pool() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("MEDCC_THREADS")) {
      const long parsed = std::strtol(env, nullptr, 10);
      if (parsed > 0) return static_cast<std::size_t>(parsed);
    }
    return std::size_t{0};
  }());
  return pool;
}

}  // namespace medcc::util
