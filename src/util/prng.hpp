// Deterministic pseudo-random number generation for reproducible experiments.
//
// Every experiment in the reproduction derives its randomness from an
// explicit 64-bit seed so that any table or figure can be regenerated
// bit-for-bit. The generator is xoshiro256** seeded through SplitMix64
// (the combination recommended by the xoshiro authors); independent
// sub-streams for parallel sweeps are derived with Prng::fork().
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/error.hpp"

namespace medcc::util {

/// SplitMix64 step; used for seeding and stream derivation.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG with convenience sampling helpers.
///
/// Satisfies std::uniform_random_bit_generator, so it can also be used
/// with <random> distributions when needed.
class Prng {
public:
  using result_type = std::uint64_t;

  /// Constructs a generator from a 64-bit seed (any value is valid).
  explicit Prng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  /// Reseeds in place; equivalent to constructing a fresh Prng(seed).
  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit output.
  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Derives an independent generator for sub-experiment `index`.
  /// fork(i) streams are decorrelated from each other and from *this.
  [[nodiscard]] Prng fork(std::uint64_t index) const {
    std::uint64_t mix = state_[0] ^ rotl(state_[3], 13) ^
                        (index + 0x632be59bd9b4e019ULL);
    Prng child(splitmix64(mix));
    return child;
  }

  /// Uniform integer in the closed range [lo, hi].
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    MEDCC_EXPECTS(lo <= hi);
    const auto span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
    return lo + static_cast<std::int64_t>(bounded(span));
  }

  /// Uniform real in the half-open range [lo, hi).
  [[nodiscard]] double uniform_real(double lo, double hi) {
    MEDCC_EXPECTS(lo <= hi);
    const double unit =
        static_cast<double>((*this)() >> 11) * 0x1.0p-53;  // [0,1)
    return lo + unit * (hi - lo);
  }

  /// Bernoulli trial with success probability p in [0,1].
  [[nodiscard]] bool bernoulli(double p) { return uniform_real(0.0, 1.0) < p; }

  /// Gaussian sample via Box-Muller (one value per call; no caching so
  /// the stream stays position-independent).
  [[nodiscard]] double normal(double mean = 0.0, double stddev = 1.0);

  /// Uniformly selects one element of a non-empty container.
  template <typename Container>
  [[nodiscard]] const auto& choice(const Container& items) {
    MEDCC_EXPECTS(!items.empty());
    const auto idx = static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(items.size()) - 1));
    return items[idx];
  }

  /// Fisher–Yates shuffle.
  template <typename Container>
  void shuffle(Container& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  [[nodiscard]] std::vector<std::size_t> sample_indices(std::size_t n,
                                                        std::size_t k);

private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  /// Unbiased bounded sampling (Lemire-style rejection).
  [[nodiscard]] std::uint64_t bounded(std::uint64_t span) {
    const std::uint64_t threshold = (0 - span) % span;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % span;
    }
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace medcc::util
