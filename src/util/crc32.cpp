#include "util/crc32.hpp"

#include <array>

namespace medcc::util {

namespace {

constexpr std::uint32_t kPolynomial = 0xEDB88320u;

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit)
      crc = (crc >> 1) ^ ((crc & 1u) != 0 ? kPolynomial : 0u);
    table[i] = crc;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32(std::string_view bytes, std::uint32_t seed) {
  std::uint32_t crc = ~seed;
  for (const char c : bytes)
    crc = (crc >> 8) ^ kTable[(crc ^ static_cast<unsigned char>(c)) & 0xFFu];
  return ~crc;
}

}  // namespace medcc::util
