#include "util/flags.hpp"

#include <charconv>
#include <cmath>
#include <system_error>

namespace medcc::util {

namespace {

[[noreturn]] void bad_flag(const std::string& text, const char* why) {
  throw InvalidArgument("flag value '" + text + "': " + why);
}

}  // namespace

std::size_t parse_flag_size(const std::string& text) {
  if (text.empty()) bad_flag(text, "empty");
  std::size_t value = 0;
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec == std::errc::result_out_of_range) bad_flag(text, "out of range");
  if (ec != std::errc{}) bad_flag(text, "not a non-negative integer");
  if (ptr != end) bad_flag(text, "trailing characters");
  return value;
}

std::uint16_t parse_flag_port(const std::string& text) {
  const std::size_t value = parse_flag_size(text);
  if (value > 65535) bad_flag(text, "port out of range");
  return static_cast<std::uint16_t>(value);
}

double parse_flag_double(const std::string& text) {
  if (text.empty()) bad_flag(text, "empty");
  double value = 0.0;
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec == std::errc::result_out_of_range) bad_flag(text, "out of range");
  if (ec != std::errc{}) bad_flag(text, "not a number");
  if (ptr != end) bad_flag(text, "trailing characters");
  if (!std::isfinite(value)) bad_flag(text, "not finite");
  return value;
}

}  // namespace medcc::util
