// Column-aligned plain-text tables, used by the bench drivers to print the
// paper's tables in a diff-friendly format.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace medcc::util {

/// How the contents of a column are padded.
enum class Align { Left, Right };

/// A simple text table: set headers once, append rows, render.
///
///   Table t({"size", "CG", "GAIN3", "Imp (%)"});
///   t.add_row({"(5,6,3)", "8.63", "8.63", "0.00"});
///   std::cout << t.render();
class Table {
public:
  explicit Table(std::vector<std::string> headers);

  /// Sets per-column alignment; by default every column is right-aligned
  /// except the first (label) column.
  void set_alignment(std::vector<Align> alignment);

  /// Appends one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const { return headers_.size(); }

  /// Renders the table with a header separator line.
  [[nodiscard]] std::string render() const;

  /// Renders as comma-separated values (no padding).
  [[nodiscard]] std::string render_csv() const;

private:
  std::vector<std::string> headers_;
  std::vector<Align> alignment_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` places after the decimal point.
[[nodiscard]] std::string fmt(double value, int digits = 2);

/// Formats an integer count.
[[nodiscard]] std::string fmt(std::size_t value);
[[nodiscard]] std::string fmt(int value);

}  // namespace medcc::util
