#include "util/buffer_pool.hpp"

#include <utility>

namespace medcc::util {

BufferPool::BufferPool() : BufferPool(Config()) {}

BufferPool::BufferPool(Config config) : config_(config) {}

std::string BufferPool::acquire() {
  {
    const util::MutexLock lock(mutex_);
    ++acquired_;
    if (!free_.empty()) {
      ++reused_;
      std::string buffer = std::move(free_.back());
      free_.pop_back();
      return buffer;
    }
  }
  std::string buffer;
  buffer.reserve(config_.buffer_capacity);
  return buffer;
}

void BufferPool::release(std::string buffer) {
  buffer.clear();
  const util::MutexLock lock(mutex_);
  ++released_;
  if (free_.size() >= config_.max_pooled ||
      buffer.capacity() < config_.buffer_capacity ||
      buffer.capacity() > 2 * config_.buffer_capacity) {
    ++discarded_;
    return;  // freed on scope exit
  }
  free_.push_back(std::move(buffer));
}

BufferPool::Stats BufferPool::stats() const {
  const util::MutexLock lock(mutex_);
  return Stats{acquired_, reused_, released_, discarded_, free_.size()};
}

}  // namespace medcc::util
