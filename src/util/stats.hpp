// Streaming and batch descriptive statistics used by the experiment harness.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace medcc::util {

/// Numerically stable streaming accumulator (Welford's algorithm).
class RunningStats {
public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }
  [[nodiscard]] double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Arithmetic mean of a non-empty span.
[[nodiscard]] double mean(std::span<const double> xs);

/// Sample standard deviation of a span (0 for fewer than two samples).
[[nodiscard]] double stddev(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0,100]; span must be non-empty.
/// Does not require the input to be sorted.
[[nodiscard]] double percentile(std::span<const double> xs, double p);

/// Median (50th percentile).
[[nodiscard]] double median(std::span<const double> xs);

/// Fixed-width histogram over [lo, hi] with `bins` buckets.
/// Values outside the range are clamped into the edge buckets.
[[nodiscard]] std::vector<std::size_t> histogram(std::span<const double> xs,
                                                 double lo, double hi,
                                                 std::size_t bins);

}  // namespace medcc::util
