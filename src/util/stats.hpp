// Streaming and batch descriptive statistics used by the experiment harness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace medcc::util {

/// Numerically stable streaming accumulator (Welford's algorithm).
class RunningStats {
public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }
  [[nodiscard]] double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Arithmetic mean of a non-empty span.
[[nodiscard]] double mean(std::span<const double> xs);

/// Sample standard deviation of a span (0 for fewer than two samples).
[[nodiscard]] double stddev(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0,100]; span must be non-empty.
/// Does not require the input to be sorted.
[[nodiscard]] double percentile(std::span<const double> xs, double p);

/// Median (50th percentile).
[[nodiscard]] double median(std::span<const double> xs);

/// Fixed-width histogram over [lo, hi] with `bins` buckets.
/// Values outside the range are clamped into the edge buckets.
[[nodiscard]] std::vector<std::size_t> histogram(std::span<const double> xs,
                                                 double lo, double hi,
                                                 std::size_t bins);

/// Fixed-bucket histogram with quantile estimation, the accumulator
/// behind the service metrics registry's latency percentiles.
///
/// `edges` (strictly increasing, >= 2 entries) define bucket b as
/// [edges[b], edges[b+1]); samples outside [edges.front(), edges.back()]
/// are clamped into the edge buckets, matching the free histogram()
/// above. quantile() uses the mid-point-rank estimator: with rank
/// r = p/100 * (count-1) falling into bucket b after `cum` earlier
/// samples, the estimate is
///   edges[b] + (edges[b+1]-edges[b]) * (r - cum + 0.5) / n_b,
/// clamped into the observed [min, max] so a single-sample histogram
/// returns that sample exactly for every p.
class Histogram {
public:
  explicit Histogram(std::vector<double> edges);

  /// `bins` equal-width buckets spanning [lo, hi].
  [[nodiscard]] static Histogram uniform(double lo, double hi,
                                         std::size_t bins);
  /// `bins` buckets with exponentially growing edges lo * growth^i
  /// (growth > 1) -- the natural shape for latency distributions.
  [[nodiscard]] static Histogram exponential(double lo, double growth,
                                             std::size_t bins);

  void add(double x);
  /// Adds `n` samples attributed to bucket `b` (bulk fill when
  /// snapshotting external atomic counters); the observed range is
  /// widened to the bucket's edges.
  void add_bucket(std::size_t b, std::uint64_t n);

  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t b) const {
    MEDCC_EXPECTS(b < counts_.size());
    return counts_[b];
  }
  [[nodiscard]] const std::vector<double>& edges() const { return edges_; }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Estimated p-th percentile, p in [0,100]; throws on an empty
  /// histogram (see the class comment for the estimator).
  [[nodiscard]] double quantile(double p) const;

  /// Merges another histogram with identical edges (parallel reduction).
  void merge(const Histogram& other);

private:
  std::vector<double> edges_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace medcc::util
