#include "util/atomic_file.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/error.hpp"

namespace medcc::util {

namespace {

[[noreturn]] void fail(const std::string& op,
                       const std::filesystem::path& path) {
  throw IoError(op + " '" + path.string() + "': " + std::strerror(errno));
}

int open_retry(const char* path, int flags, mode_t mode) {
  int fd = -1;
  do {
    fd = ::open(path, flags, mode);  // NOLINT(cppcoreguidelines-pro-type-vararg)
  } while (fd < 0 && errno == EINTR);
  return fd;
}

}  // namespace

File::~File() { close(); }

File::File(File&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), path_(std::move(other.path_)) {}

File& File::operator=(File&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
  }
  return *this;
}

File File::create(const std::filesystem::path& path) {
  const int fd =
      open_retry(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) fail("create", path);
  return File(fd, path);
}

File File::append(const std::filesystem::path& path) {
  const int fd =
      open_retry(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) fail("open for append", path);
  return File(fd, path);
}

File File::open_read(const std::filesystem::path& path) {
  const int fd = open_retry(path.c_str(), O_RDONLY | O_CLOEXEC, 0);
  if (fd < 0) fail("open", path);
  return File(fd, path);
}

void File::write_all(std::string_view bytes) {
  MEDCC_EXPECTS(is_open());
  const char* data = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    const ssize_t n = ::write(fd_, data, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("write", path_);
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
}

void File::sync() {
  MEDCC_EXPECTS(is_open());
  if (::fsync(fd_) != 0) fail("fsync", path_);
}

void File::truncate(std::uint64_t size) {
  MEDCC_EXPECTS(is_open());
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) fail("truncate", path_);
}

std::uint64_t File::size() const {
  MEDCC_EXPECTS(is_open());
  struct stat st{};
  if (::fstat(fd_, &st) != 0) fail("stat", path_);
  return static_cast<std::uint64_t>(st.st_size);
}

std::string File::read_all() const {
  MEDCC_EXPECTS(is_open());
  std::string out;
  out.reserve(size());
  char buffer[1 << 16];
  if (::lseek(fd_, 0, SEEK_SET) < 0) fail("seek", path_);
  for (;;) {
    const ssize_t n = ::read(fd_, buffer, sizeof buffer);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("read", path_);
    }
    if (n == 0) break;
    out.append(buffer, static_cast<std::size_t>(n));
  }
  return out;
}

void File::close() {
  if (fd_ >= 0) {
    ::close(fd_);  // double-close is worse than a lost late error
    fd_ = -1;
  }
}

bool file_exists(const std::filesystem::path& path) {
  std::error_code ec;
  return std::filesystem::is_regular_file(path, ec);
}

std::string read_file(const std::filesystem::path& path) {
  return File::open_read(path).read_all();
}

void atomic_write_file(const std::filesystem::path& path,
                       std::string_view bytes) {
  std::filesystem::path tmp = path;
  tmp += ".tmp";
  {
    File file = File::create(tmp);
    file.write_all(bytes);
    file.sync();
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int saved = errno;
    ::unlink(tmp.c_str());
    errno = saved;
    fail("rename", path);
  }
  // fsync the directory so the rename itself survives a power cut.
  const std::filesystem::path dir =
      path.has_parent_path() ? path.parent_path() : ".";
  const int dir_fd = open_retry(dir.c_str(), O_RDONLY | O_DIRECTORY, 0);
  if (dir_fd < 0) fail("open directory", dir);
  const int rc = ::fsync(dir_fd);
  ::close(dir_fd);
  if (rc != 0) fail("fsync directory", dir);
}

}  // namespace medcc::util
