#include "cluster/replicator.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "net/client.hpp"
#include "util/backoff.hpp"

namespace medcc::cluster {

Replicator::Replicator(ClusterConfig config) : config_(std::move(config)) {
  validate(config_);
  peers_.reserve(config_.peers.size());
  for (const net::Endpoint& endpoint : config_.peers) {
    auto peer = std::make_unique<Peer>();
    peer->endpoint = endpoint;
    peers_.push_back(std::move(peer));
  }
}

Replicator::~Replicator() { stop(); }

void Replicator::start() {
  if (started_.exchange(true)) return;
  for (auto& peer : peers_)
    peer->thread = std::thread([this, raw = peer.get()] { sender_loop(*raw); });
}

void Replicator::stop() {
  if (!started_.load(std::memory_order_relaxed)) return;
  if (stop_.exchange(true)) return;
  for (auto& peer : peers_) {
    {
      const util::MutexLock lock(peer->mutex);
    }
    peer->cv.notify_all();
  }
  for (auto& peer : peers_)
    if (peer->thread.joinable()) peer->thread.join();
}

void Replicator::publish(const std::string& payload,
                         obs::TraceContext trace) {
  if (stop_.load(std::memory_order_relaxed)) return;
  for (auto& peer : peers_) {
    {
      const util::MutexLock lock(peer->mutex);
      if (peer->queue.size() >= config_.queue_capacity) {
        peer->queue.pop_front();  // oldest loses to freshest
        ++peer->dropped;
      }
      peer->queue.push_back(net::ReplRecord{payload, trace});
    }
    peer->cv.notify_one();
  }
}

net::ClusterStatus Replicator::status() const {
  net::ClusterStatus status;
  status.node_id = config_.node_id;
  status.protocol_version = net::kMaxVersion;
  status.peers.reserve(peers_.size());
  for (const auto& peer : peers_) {
    net::ClusterPeerStatus p;
    p.address = net::to_string(peer->endpoint);
    const util::MutexLock lock(peer->mutex);
    p.state = peer->state;
    p.peer_version = peer->version;
    p.queued = peer->queue.size();
    p.sent = peer->sent;
    p.acked = peer->acked;
    p.dropped = peer->dropped;
    p.send_errors = peer->send_errors;
    status.peers.push_back(std::move(p));
  }
  return status;
}

void Replicator::interruptible_sleep(Peer& peer, double ms) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(std::max(0.0, ms)));
  util::MutexLock lock(peer.mutex);
  while (!stop_.load(std::memory_order_relaxed) &&
         std::chrono::steady_clock::now() < deadline)
    peer.cv.wait_until(lock.native(), deadline);
}

void Replicator::sender_loop(Peer& peer) {
  net::ClientConfig client_config;
  client_config.host = peer.endpoint.host;
  client_config.port = peer.endpoint.port;
  client_config.connect_attempts = 1;  // our backoff paces the retries
  client_config.connect_timeout_ms = config_.connect_timeout_ms;
  client_config.request_timeout_ms = config_.request_timeout_ms;
  net::Client client(std::move(client_config));

  util::Backoff backoff(config_.backoff_initial_ms, config_.backoff_cap_ms);
  bool replicating = false;
  bool peer_tracing = false;

  while (!stop_.load(std::memory_order_relaxed)) {
    if (!replicating) {
      // (Re-)handshake. A v1 peer answers the hello with a protocol
      // error -- surfaced as granted version 1 -- and is left alone
      // for v1_retry_ms; a transport fault backs off exponentially.
      net::Hello offer;
      offer.version = net::kMaxVersion;
      offer.features = net::kFeatureReplication | net::kFeatureTracing;
      offer.node_id = config_.node_id;
      try {
        const net::Hello granted = client.hello(offer);
        if (granted.version >= net::kVersion2 &&
            (granted.features & net::kFeatureReplication) != 0) {
          replicating = true;
          // Trace suffixes only go to peers that negotiated them: a
          // pre-tracing v2 peer would reject the trailing bytes.
          peer_tracing = (granted.features & net::kFeatureTracing) != 0;
          backoff.reset();
          const util::MutexLock lock(peer.mutex);
          peer.state = "connected";
          peer.version = granted.version;
        } else {
          {
            const util::MutexLock lock(peer.mutex);
            peer.state = "v1-peer";
            peer.version = granted.version;
          }
          interruptible_sleep(peer, config_.v1_retry_ms);
          continue;
        }
      } catch (const std::exception&) {
        // Transport fault or a malformed reply -- either way the
        // stream is useless until re-established.
        {
          const util::MutexLock lock(peer.mutex);
          peer.state = "down";
        }
        interruptible_sleep(peer, backoff.next_ms());
        continue;
      }
    }

    // Drain a burst (blocking until records arrive or stop()).
    std::vector<net::ReplRecord> batch;
    {
      util::MutexLock lock(peer.mutex);
      while (!stop_.load(std::memory_order_relaxed) && peer.queue.empty())
        peer.cv.wait(lock.native());
      while (!peer.queue.empty() && batch.size() < config_.batch_max) {
        batch.push_back(std::move(peer.queue.front()));
        peer.queue.pop_front();
      }
    }
    if (batch.empty()) continue;  // woken by stop()
    if (!peer_tracing)
      for (net::ReplRecord& record : batch) record.trace = {};

    try {
      const std::vector<net::ReplAck> acks = client.repl_insert_batch(batch);
      backoff.reset();
      const util::MutexLock lock(peer.mutex);
      peer.sent += batch.size();
      for (const net::ReplAck& ack : acks)
        if (ack.applied) ++peer.acked;
    } catch (const std::exception&) {
      // Peer lost mid-burst: requeue the whole batch at the front (the
      // receiver applies records idempotently, so re-sending a record
      // the peer acked before the fault is harmless) and go back to
      // the handshake.
      replicating = false;
      {
        const util::MutexLock lock(peer.mutex);
        ++peer.send_errors;
        peer.state = "connecting";
        for (auto it = batch.rbegin(); it != batch.rend(); ++it)
          peer.queue.push_front(std::move(*it));
        while (peer.queue.size() > config_.queue_capacity) {
          peer.queue.pop_front();  // oldest loses, as in publish()
          ++peer.dropped;
        }
      }
      interruptible_sleep(peer, backoff.next_ms());
    }
  }

  const util::MutexLock lock(peer.mutex);
  peer.state = "down";
}

}  // namespace medcc::cluster
