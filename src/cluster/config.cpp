#include "cluster/config.hpp"

namespace medcc::cluster {

std::vector<net::Endpoint> parse_peer_list(std::string_view text) {
  std::vector<net::Endpoint> peers;
  if (text.empty()) return peers;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t comma = text.find(',', begin);
    const std::string_view item =
        text.substr(begin, comma == std::string_view::npos ? std::string_view::npos
                                                           : comma - begin);
    const auto endpoint = net::parse_endpoint(item);
    if (!endpoint)
      throw ClusterError("cluster: bad peer '" + std::string(item) +
                         "' (expected host:port)");
    for (const net::Endpoint& seen : peers)
      if (seen == *endpoint)
        throw ClusterError("cluster: duplicate peer '" +
                           net::to_string(*endpoint) + "'");
    peers.push_back(*endpoint);
    if (comma == std::string_view::npos) break;
    begin = comma + 1;
  }
  return peers;
}

void validate(const ClusterConfig& config) {
  if (config.queue_capacity == 0)
    throw ClusterError("cluster: queue_capacity must be positive");
  if (config.batch_max == 0)
    throw ClusterError("cluster: batch_max must be positive");
  if (config.request_timeout_ms < 0.0)
    throw ClusterError("cluster: request_timeout_ms must be >= 0");
  if (config.connect_timeout_ms < 0.0)
    throw ClusterError("cluster: connect_timeout_ms must be >= 0");
  if (config.backoff_initial_ms <= 0.0)
    throw ClusterError("cluster: backoff_initial_ms must be positive");
  if (config.backoff_cap_ms < config.backoff_initial_ms)
    throw ClusterError("cluster: backoff_cap_ms must be >= backoff_initial_ms");
  if (config.v1_retry_ms <= 0.0)
    throw ClusterError("cluster: v1_retry_ms must be positive");
  for (std::size_t i = 0; i < config.peers.size(); ++i)
    for (std::size_t j = i + 1; j < config.peers.size(); ++j)
      if (config.peers[i] == config.peers[j])
        throw ClusterError("cluster: duplicate peer '" +
                           net::to_string(config.peers[i]) + "'");
}

}  // namespace medcc::cluster
