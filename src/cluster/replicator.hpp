// Cross-replica cache replication: pushes locally solved cache records
// to every configured peer.
//
// One sender thread per peer owns a private net::Client and drives a
// small state machine:
//
//   connecting --hello ok, v2+replication--> connected
//   connecting --hello ok, v1 granted-----> v1-peer (recheck later)
//   connecting --transport fault----------> down (backoff, retry)
//   connected  --transport fault----------> connecting (records requeued)
//
// The handshake is the codec's hello exchange; a pre-v2 peer rejects
// the frame and that rejection is the negotiation result (state
// "v1-peer"), re-probed every v1_retry_ms in case the peer was
// upgraded. Once connected, records are drained from a bounded
// per-peer queue and pipelined in repl_insert bursts; on peer loss the
// un-acked burst is requeued at the front, so a bounce loses nothing
// that still fits the queue.
//
// publish() is called from the service's on_cache_insert hook (worker
// threads): it only copies the record into each peer queue and rings
// the peer's cv -- no IO on the solve path. When a queue is full the
// OLDEST record is dropped (counted per peer): fresh entries are the
// ones duplicate traffic is about to ask for. Replication is
// best-effort by design -- a dropped record costs a peer one cache
// miss, never correctness.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/config.hpp"
#include "net/codec.hpp"
#include "util/mutex.hpp"

namespace medcc::cluster {

class Replicator {
public:
  /// Validates `config` (throws ClusterError) but starts nothing.
  explicit Replicator(ClusterConfig config);
  /// stop()s implicitly.
  ~Replicator();

  Replicator(const Replicator&) = delete;
  Replicator& operator=(const Replicator&) = delete;

  /// Starts one sender thread per peer. Idempotent.
  void start();
  /// Signals every sender, joins them, leaves queued records unsent.
  /// Idempotent; the destructor calls it.
  void stop();

  /// Enqueues one encoded cache record for every peer (bounded queues,
  /// oldest dropped on overflow). Thread-safe and cheap -- called from
  /// solve workers via ServiceConfig::on_cache_insert. `trace` is the
  /// context of the solve that produced the record (invalid = untraced);
  /// it rides the repl_insert frame to peers that negotiated
  /// kFeatureTracing, so the apply on the far side stays on the origin
  /// request's trace id.
  void publish(const std::string& payload, obs::TraceContext trace = {});

  /// Per-peer replication view (addresses, states, counters). The
  /// node-level fields (repl_applied and friends) are left zero: they
  /// live in the service's MetricsRegistry and the caller merges them.
  [[nodiscard]] net::ClusterStatus status() const;

  [[nodiscard]] std::size_t peer_count() const { return peers_.size(); }

private:
  struct Peer {
    /// Immutable after construction.
    MEDCC_NOT_GUARDED net::Endpoint endpoint;
    mutable util::Mutex mutex;
    /// Internally synchronized; always signalled with `mutex` held.
    MEDCC_NOT_GUARDED std::condition_variable cv;
    std::deque<net::ReplRecord> queue MEDCC_GUARDED_BY(mutex);
    std::string state MEDCC_GUARDED_BY(mutex) = "connecting";
    std::uint16_t version MEDCC_GUARDED_BY(mutex) = 0;
    std::uint64_t sent MEDCC_GUARDED_BY(mutex) = 0;
    std::uint64_t acked MEDCC_GUARDED_BY(mutex) = 0;
    std::uint64_t dropped MEDCC_GUARDED_BY(mutex) = 0;
    std::uint64_t send_errors MEDCC_GUARDED_BY(mutex) = 0;
    /// Touched only by start()/stop(), which are externally serialized.
    MEDCC_NOT_GUARDED std::thread thread;
  };

  void sender_loop(Peer& peer);
  /// Sleeps up to `ms` on the peer's cv; cut short by stop().
  void interruptible_sleep(Peer& peer, double ms);

  const ClusterConfig config_;  // immutable after construction
  std::atomic<bool> stop_{false};
  std::atomic<bool> started_{false};
  /// Sized in the constructor, structurally immutable afterwards (each
  /// peer locks itself).
  MEDCC_NOT_GUARDED std::vector<std::unique_ptr<Peer>> peers_;
};

}  // namespace medcc::cluster
