// Static cluster membership: the parsed, validated form of
// `medcc_server --peers host:port,...`.
//
// Membership is deliberately static for now (docs/cluster.md): every
// replica is launched with the same total topology minus itself, so no
// discovery protocol, no epochs, no split-brain. Dynamic membership
// layers on top of this config type later without touching the
// replication channel.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "net/endpoint.hpp"
#include "util/error.hpp"

namespace medcc::cluster {

/// Invalid cluster configuration (bad peer syntax, duplicates, ...).
class ClusterError : public Error {
public:
  explicit ClusterError(const std::string& what) : Error(what) {}
};

struct ClusterConfig {
  /// This node's name, reported in hello and cluster_status ("" =
  /// anonymous).
  std::string node_id;
  /// Replication targets (this node must NOT list itself; the config
  /// cannot check that, the operator script does).
  std::vector<net::Endpoint> peers;
  /// Bounded per-peer replication queue: when full the OLDEST record
  /// is dropped (and counted) in favour of the new one -- fresher
  /// entries are the ones duplicate traffic will ask for.
  std::size_t queue_capacity = 4096;
  /// Records pipelined per repl_insert burst.
  std::size_t batch_max = 64;
  /// Wall-clock bound on one replication exchange with a peer.
  double request_timeout_ms = 5000.0;
  /// TCP connect bound per attempt.
  double connect_timeout_ms = 2000.0;
  /// Reconnect/re-handshake backoff on peer loss (exponential).
  double backoff_initial_ms = 50.0;
  double backoff_cap_ms = 2000.0;
  /// How long a peer that negotiated down to v1 (no replication) is
  /// left alone before the handshake is retried -- it may have been
  /// upgraded and restarted since.
  double v1_retry_ms = 5000.0;
};

/// Parses "host:port,host:port,..." (the --peers flag). Throws
/// ClusterError on empty entries, malformed endpoints, or duplicates;
/// an empty string yields an empty list (clustering disabled).
[[nodiscard]] std::vector<net::Endpoint> parse_peer_list(
    std::string_view text);

/// Validates field ranges (positive capacities, sane timeouts) and
/// peer uniqueness; throws ClusterError naming the offending field.
void validate(const ClusterConfig& config);

}  // namespace medcc::cluster
