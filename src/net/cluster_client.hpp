// Cluster-aware client: one logical connection to N medcc_server
// replicas.
//
// Routing is a consistent-hash ring: every endpoint contributes
// `virtual_nodes` points keyed by its "host:port" text, and a tenant id
// hashes to the first point at-or-after it (wrapping). That gives each
// tenant a stable primary replica -- so its requests keep hitting the
// same warm cache -- while adding or removing one endpoint only remaps
// the tenants whose arc it owned.
//
// Failover: when the primary fails at the transport level (connect or
// stream fault), the client marks it down for `down_cooldown_ms`,
// walks the ring to the next distinct live endpoint, and retries the
// request there. Retrying is safe because solves are deterministic and
// server-side idempotent (a duplicate request is a cache hit). When
// replication seeded the peer's cache (docs/cluster.md), the failover
// target answers warm -- the 3-replica failover test asserts
// byte-identical results. Down peers are retried after the cooldown
// (and immediately when every candidate is down, so a full outage
// still surfaces the real error rather than "all marked down").
//
// Like Client, a ClusterClient is NOT thread-safe: callers wanting
// concurrency open one per thread.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "net/client.hpp"
#include "net/endpoint.hpp"

namespace medcc::net {

struct ClusterClientConfig {
  /// Replica endpoints; at least one. Order is insignificant (routing
  /// is by hash), but duplicates are rejected.
  std::vector<Endpoint> endpoints;
  /// Ring points per endpoint; more points = smoother tenant spread.
  std::size_t virtual_nodes = 64;
  /// Per-exchange wall-clock bound, as ClientConfig; 0 = no bound.
  double request_timeout_ms = 0.0;
  double connect_timeout_ms = 10000.0;
  /// Connect attempts per endpoint per solve; kept low so failover to
  /// the next replica is fast (the ring walk is the retry loop).
  std::size_t connect_attempts = 1;
  double backoff_initial_ms = 10.0;
  double backoff_cap_ms = 200.0;
  /// How long a transport-failed endpoint is skipped before being
  /// probed again.
  double down_cooldown_ms = 1000.0;
  std::size_t max_frame_body = kDefaultMaxBody;
  /// Injectable time source for the down-cooldown (tests).
  std::function<std::chrono::steady_clock::time_point()> clock{};
  /// When set, every logical solve carries ONE trace context across all
  /// of its failover attempts (minted here unless the request already
  /// has one), so a retried request keeps a single trace id from the
  /// first attempt through the survivor that answered. The client
  /// records client_attempt / client_failover spans into this tracer
  /// under origin "client". Not owned; must outlive the ClusterClient.
  obs::Tracer* tracer = nullptr;
};

class ClusterClient {
public:
  /// Per-endpoint outcome counters (stable endpoint order = config
  /// order).
  struct EndpointStats {
    Endpoint endpoint;
    std::uint64_t sent = 0;       ///< solve attempts routed here
    std::uint64_t ok = 0;         ///< responses returned to the caller
    std::uint64_t errors = 0;     ///< transport faults (marked down)
    std::uint64_t failovers = 0;  ///< attempts arriving via the ring walk
    bool down = false;            ///< inside the cooldown window now
  };

  explicit ClusterClient(ClusterClientConfig config);

  /// Routes by request.tenant, failing over along the ring; returns
  /// the first replica's response. Throws NetError only when every
  /// endpoint failed (carrying the last transport error).
  [[nodiscard]] service::SchedulingResponse solve(
      const service::SchedulingRequest& request);

  /// The endpoint index `tenant` routes to first.
  [[nodiscard]] std::size_t primary_index(std::string_view tenant) const;
  /// Full failover order for `tenant`: every endpoint index exactly
  /// once, ring order starting at the primary.
  [[nodiscard]] std::vector<std::size_t> route(std::string_view tenant) const;

  [[nodiscard]] const std::vector<Endpoint>& endpoints() const {
    return endpoints_;
  }
  [[nodiscard]] std::vector<EndpointStats> stats() const;

private:
  struct Peer {
    std::unique_ptr<Client> client;
    std::chrono::steady_clock::time_point down_until{};
    std::uint64_t sent = 0;
    std::uint64_t ok = 0;
    std::uint64_t errors = 0;
    std::uint64_t failovers = 0;
  };
  struct Node {
    std::uint64_t hash = 0;
    std::size_t index = 0;
  };

  const ClusterClientConfig config_;  // immutable after construction
  std::vector<Endpoint> endpoints_;
  std::function<std::chrono::steady_clock::time_point()> clock_;
  std::vector<Node> ring_;  ///< sorted by hash; built once
  std::vector<Peer> peers_;
};

}  // namespace medcc::net
