// Blocking client for the MED-CC wire protocol.
//
// One Client owns one TCP connection. connect() retries with
// exponential backoff (util::Backoff); solve() performs one
// request/response exchange; solve_batch() pipelines N requests on the
// connection in one burst and gathers the responses by request id, so
// a slow solve never blocks the ones behind it server-side; stats()
// fetches the service's metrics dump over the wire.
//
// Deadlines: every exchange is bounded by ClientConfig::request_timeout_ms
// (0 = wait forever). A timeout -- like any transport or framing error --
// leaves the stream position unknown, so the client closes the
// connection and throws NetError; the next call reconnects. Per-request
// *queue* deadlines (SchedulingRequest::deadline_ms) are enforced
// server-side and come back as ordinary rejected responses.
//
// The client is not thread-safe: callers wanting concurrency open one
// Client per thread (the server multiplexes them all on one epoll loop).
//
// MultiClient is the load-generation counterpart: one thread driving
// many connections with a bounded pipeline window each, sending
// verbatim copies of a single pre-encoded request (only the header id
// differs per send). bench/net_throughput uses it to saturate the
// multi-reactor server and its wire-cache fast path.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/codec.hpp"
#include "service/request.hpp"
#include "util/socket.hpp"

namespace medcc::net {

struct ClientConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// connect() attempts before giving up.
  std::size_t connect_attempts = 5;
  /// Bound on each TCP connection-establishment attempt, so a
  /// black-holed host cannot hang the caller for the kernel default
  /// (minutes); 0 = no bound.
  double connect_timeout_ms = 10000.0;
  /// Exponential backoff between connect attempts.
  double backoff_initial_ms = 10.0;
  double backoff_cap_ms = 1000.0;
  /// Wall-clock bound on one request/response exchange; 0 = no bound.
  double request_timeout_ms = 0.0;
  std::size_t max_frame_body = kDefaultMaxBody;
};

class Client {
public:
  explicit Client(ClientConfig config);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Establishes the connection, retrying with backoff. No-op when
  /// already connected. Throws NetError after the final failed attempt.
  void connect();
  [[nodiscard]] bool connected() const { return fd_.valid(); }
  void close();

  /// One round trip. Protocol-level faults that the server scopes to
  /// this request (an error frame echoing our id) come back as a
  /// `failed` response carrying the fault text; stream-level faults
  /// close the connection and throw NetError. A request carrying a
  /// valid trace context goes out as a traced_solve_request (v2
  /// tracing feature) -- the response bytes are identical either way.
  [[nodiscard]] service::SchedulingResponse solve(
      const service::SchedulingRequest& request);

  /// Pipelines all requests on this connection, then collects the
  /// responses (which the server may produce in any order) back into
  /// request order.
  [[nodiscard]] std::vector<service::SchedulingResponse> solve_batch(
      const std::vector<service::SchedulingRequest>& requests);

  /// The server's metrics dump (docs/service.md) over the wire.
  [[nodiscard]] std::string stats(StatsFormat format = StatsFormat::text);

  /// Version/feature negotiation (docs/cluster.md). Sends `offer` and
  /// returns what the server granted. A pre-v2 peer answers the
  /// unknown frame with a protocol error and closes; that comes back
  /// as Hello{version = 1, features = 0} (the caller's signal to stay
  /// on the v1 feature set) with the connection closed. Stream faults
  /// still throw NetError.
  [[nodiscard]] Hello hello(const Hello& offer);

  /// Pipelines one repl_insert per record (encoded cache record +
  /// optional trace context) and collects the acks back into record
  /// order. Replication is a v2-only exchange: call hello() first and
  /// only replicate when the peer granted kVersion2 +
  /// kFeatureReplication; only attach trace contexts when it also
  /// granted kFeatureTracing.
  [[nodiscard]] std::vector<ReplAck> repl_insert_batch(
      const std::vector<ReplRecord>& records);
  /// Payload-only convenience: every record untraced.
  [[nodiscard]] std::vector<ReplAck> repl_insert_batch(
      const std::vector<std::string>& payloads);

  /// The server's membership/replication view (medcc_clusterctl).
  [[nodiscard]] ClusterStatus cluster_status();

  /// Reads back the server's tracer state: counters, per-stage
  /// aggregates, and up to `max_traces` retained traces (newest first;
  /// 0 = counters only). A tracerless server answers with enabled =
  /// false. Tracing is a v2-only exchange, gated like replication.
  [[nodiscard]] TraceDump trace_dump(std::uint32_t max_traces = 64);

private:
  struct Deadline;  // steady-clock deadline helper (see client.cpp)

  void send_bytes(std::string_view bytes, const Deadline& deadline);
  /// Reads exactly one frame (header + body); returns the body bytes.
  std::string read_frame(FrameHeader& header, const Deadline& deadline);
  [[nodiscard]] service::SchedulingResponse response_from_frame(
      const FrameHeader& header, std::string_view body,
      std::uint64_t expected_min_id, std::uint64_t expected_max_id);

  ClientConfig config_;
  util::FdHandle fd_;
  std::string inbuf_;  ///< bytes received beyond the last consumed frame
  std::uint64_t next_id_ = 1;
};

// -- load generation -------------------------------------------------------

struct MultiClientConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Connections driven concurrently by the one calling thread.
  std::size_t connections = 4;
  /// In-flight (pipelined) requests per connection.
  std::size_t window = 16;
  /// Bound on each TCP connection establishment; 0 = no bound.
  double connect_timeout_ms = 10000.0;
  std::size_t max_frame_body = kDefaultMaxBody;
  /// When set, every send goes out as a traced_solve_request with a
  /// freshly minted context (patched in place next to the request id,
  /// leaving the inner body verbatim so the server's wire cache still
  /// hits). bench/net_throughput --trace-overhead uses this to price
  /// tracing on the fast path. Not owned; must outlive run().
  obs::Tracer* tracer = nullptr;
};

/// Aggregate outcome of one MultiClient::run.
struct LoadStats {
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;      ///< solve_response frames received
  std::uint64_t failed = 0;  ///< error frames received
  double wall_seconds = 0.0;
  /// Enqueue-to-response latency of every completed request, in
  /// arrival order (unsorted).
  std::vector<double> latency_seconds;

  [[nodiscard]] double throughput_rps() const;
  /// Latency quantile, `percent` in [0, 100]; 0 when no samples.
  [[nodiscard]] double latency_quantile(double percent) const;
};

/// Single-threaded pipelined load generator over several connections.
/// Not thread-safe; benchmarks run one MultiClient per thread.
class MultiClient {
public:
  MultiClient();
  explicit MultiClient(MultiClientConfig config);

  /// Encodes `request` once and sends `total` verbatim copies -- the
  /// request id in the frame header is patched per send, so every body
  /// is byte-identical, which is exactly what the server's wire-cache
  /// fast path keys on. Keeps up to `window` requests in flight per
  /// connection; returns once every response has arrived. Throws
  /// NetError on connect or stream failure.
  [[nodiscard]] LoadStats run(const service::SchedulingRequest& request,
                              std::size_t total);

private:
  struct Conn;  // per-connection pipeline state (see client.cpp)

  MultiClientConfig config_;
};

}  // namespace medcc::net
