#include "net/client.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/backoff.hpp"

namespace medcc::net {

/// Absolute steady-clock deadline; unbounded when the config timeout is 0.
struct Client::Deadline {
  std::chrono::steady_clock::time_point at;
  bool bounded = false;

  static Deadline from_timeout(double timeout_ms) {
    Deadline d;
    if (timeout_ms > 0.0) {
      d.bounded = true;
      d.at = std::chrono::steady_clock::now() +
             std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                 std::chrono::duration<double, std::milli>(timeout_ms));
    }
    return d;
  }

  /// Milliseconds left (clamped at 0), or -1 when unbounded.
  [[nodiscard]] double remaining_ms() const {
    if (!bounded) return -1.0;
    const double left = std::chrono::duration<double, std::milli>(
                            at - std::chrono::steady_clock::now())
                            .count();
    return left > 0.0 ? left : 0.0;
  }

  [[nodiscard]] bool expired() const {
    return bounded && std::chrono::steady_clock::now() >= at;
  }
};

Client::Client(ClientConfig config) : config_(std::move(config)) {}

Client::~Client() { close(); }

void Client::close() {
  fd_.close();
  inbuf_.clear();
}

void Client::connect() {
  if (connected()) return;

  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV;
  const std::string port = std::to_string(config_.port);
  addrinfo* found = nullptr;
  const int rc = ::getaddrinfo(config_.host.c_str(), port.c_str(), &hints,
                               &found);
  if (rc != 0 || found == nullptr)
    throw NetError("client: cannot resolve " + config_.host + ": " +
                   ::gai_strerror(rc));

  util::Backoff backoff(config_.backoff_initial_ms, config_.backoff_cap_ms);
  std::string last_error = "no attempts made";
  const std::size_t attempts = std::max<std::size_t>(1, config_.connect_attempts);
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0)
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          backoff.next_ms()));
    for (const addrinfo* ai = found; ai != nullptr; ai = ai->ai_next) {
      // Non-blocking from the start so connect_timeout_ms bounds
      // establishment too, mirroring the send/recv deadline handling.
      util::FdHandle fd(::socket(
          ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC | SOCK_NONBLOCK,
          ai->ai_protocol));
      if (!fd) {
        last_error = std::strerror(errno);
        continue;
      }
      if (::connect(fd.get(), ai->ai_addr, ai->ai_addrlen) != 0) {
        // EINTR also means the handshake continues asynchronously.
        if (errno != EINPROGRESS && errno != EINTR) {
          last_error = std::strerror(errno);
          continue;
        }
        const double wait_ms =
            config_.connect_timeout_ms > 0.0 ? config_.connect_timeout_ms
                                             : -1.0;
        const auto wait = util::wait_writable(fd.get(), wait_ms);
        if (wait == util::WaitResult::timeout) {
          last_error = "connect timed out";
          continue;
        }
        // A refused/unreachable connect surfaces as POLLERR (WaitResult::
        // error); SO_ERROR carries the real cause either way.
        int soerr = 0;
        socklen_t len = sizeof(soerr);
        if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &soerr, &len) != 0) {
          last_error = std::strerror(errno);
          continue;
        }
        if (soerr != 0) {
          last_error = std::strerror(soerr);
          continue;
        }
        if (wait == util::WaitResult::error) {
          last_error = "poll failed while connecting";
          continue;
        }
      }
      util::set_tcp_nodelay(fd.get());
      fd_ = std::move(fd);
      ::freeaddrinfo(found);
      return;
    }
  }
  ::freeaddrinfo(found);
  throw NetError("client: connect to " + config_.host + ":" + port +
                 " failed after " + std::to_string(attempts) +
                 " attempts: " + last_error);
}

void Client::send_bytes(std::string_view bytes, const Deadline& deadline) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_.get(), bytes.data() + sent,
                             bytes.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (deadline.expired()) throw NetError("client: send timed out");
      const auto wait =
          util::wait_writable(fd_.get(), deadline.remaining_ms());
      if (wait == util::WaitResult::timeout)
        throw NetError("client: send timed out");
      if (wait == util::WaitResult::error)
        throw NetError("client: connection failed while sending");
      continue;
    }
    throw NetError(std::string("client: send failed: ") +
                   std::strerror(errno));
  }
}

std::string Client::read_frame(FrameHeader& header, const Deadline& deadline) {
  for (;;) {
    const auto parsed = parse_frame_header(inbuf_, config_.max_frame_body);
    if (parsed &&
        inbuf_.size() >= kHeaderSize + parsed->body_size) {
      header = *parsed;
      std::string body = inbuf_.substr(kHeaderSize, parsed->body_size);
      inbuf_.erase(0, kHeaderSize + parsed->body_size);
      return body;
    }

    if (deadline.expired()) throw NetError("client: response timed out");
    const auto wait = util::wait_readable(fd_.get(), deadline.remaining_ms());
    if (wait == util::WaitResult::timeout)
      throw NetError("client: response timed out");
    if (wait == util::WaitResult::error)
      throw NetError("client: connection failed while waiting");

    char chunk[16 * 1024];
    const long n = util::recv_some(fd_.get(), chunk, sizeof(chunk));
    if (n > 0) {
      inbuf_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) continue;
    if (n == 0) throw NetError("client: connection closed by server");
    throw NetError(std::string("client: recv failed: ") +
                   std::strerror(errno));
  }
}

service::SchedulingResponse Client::response_from_frame(
    const FrameHeader& header, std::string_view body,
    std::uint64_t expected_min_id, std::uint64_t expected_max_id) {
  if (header.request_id < expected_min_id ||
      header.request_id > expected_max_id)
    throw NetError("client: response for unknown request id " +
                   std::to_string(header.request_id));
  switch (header.type) {
    case FrameType::solve_response:
      return decode_solve_response(body);
    case FrameType::error: {
      // The server scoped this fault to our request (echoed id): surface
      // it as a failed response rather than poisoning the connection.
      const WireFault fault = decode_error(body);
      service::SchedulingResponse response;
      response.status = service::ResponseStatus::failed;
      response.error = std::string("wire ") + to_string(fault.code) + ": " +
                       fault.message;
      return response;
    }
    default:
      throw NetError("client: unexpected frame type in response");
  }
}

service::SchedulingResponse Client::solve(
    const service::SchedulingRequest& request) {
  connect();
  const auto deadline = Deadline::from_timeout(config_.request_timeout_ms);
  const std::uint64_t id = next_id_++;
  try {
    send_bytes(encode_solve_request(request, id), deadline);
    FrameHeader header;
    const std::string body = read_frame(header, deadline);
    return response_from_frame(header, body, id, id);
  } catch (...) {
    // Timeouts and stream faults leave the framing position unknown.
    close();
    throw;
  }
}

std::vector<service::SchedulingResponse> Client::solve_batch(
    const std::vector<service::SchedulingRequest>& requests) {
  if (requests.empty()) return {};
  connect();
  // One deadline bounds the whole pipelined burst.
  const auto deadline = Deadline::from_timeout(config_.request_timeout_ms);
  const std::uint64_t base = next_id_;
  next_id_ += requests.size();
  try {
    std::string burst;
    for (std::size_t i = 0; i < requests.size(); ++i)
      burst += encode_solve_request(requests[i], base + i);
    send_bytes(burst, deadline);

    std::vector<service::SchedulingResponse> responses(requests.size());
    std::vector<bool> seen(requests.size(), false);
    for (std::size_t done = 0; done < requests.size(); ++done) {
      FrameHeader header;
      const std::string body = read_frame(header, deadline);
      auto response = response_from_frame(header, body, base,
                                          base + requests.size() - 1);
      const std::size_t slot =
          static_cast<std::size_t>(header.request_id - base);
      if (seen[slot])
        throw NetError("client: duplicate response for request id " +
                       std::to_string(header.request_id));
      seen[slot] = true;
      responses[slot] = std::move(response);
    }
    return responses;
  } catch (...) {
    close();
    throw;
  }
}

std::string Client::stats(StatsFormat format) {
  connect();
  const auto deadline = Deadline::from_timeout(config_.request_timeout_ms);
  const std::uint64_t id = next_id_++;
  try {
    send_bytes(encode_stats_request(format, id), deadline);
    FrameHeader header;
    const std::string body = read_frame(header, deadline);
    if (header.type != FrameType::stats_response || header.request_id != id) {
      if (header.type == FrameType::error) {
        const WireFault fault = decode_error(body);
        throw NetError(std::string("client: stats failed: wire ") +
                       to_string(fault.code) + ": " + fault.message);
      }
      throw NetError("client: unexpected frame answering stats request");
    }
    return decode_stats_response(body);
  } catch (...) {
    close();
    throw;
  }
}

}  // namespace medcc::net
