#include "net/client.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/backoff.hpp"

namespace medcc::net {

/// Absolute steady-clock deadline; unbounded when the config timeout is 0.
struct Client::Deadline {
  std::chrono::steady_clock::time_point at;
  bool bounded = false;

  static Deadline from_timeout(double timeout_ms) {
    Deadline d;
    if (timeout_ms > 0.0) {
      d.bounded = true;
      d.at = std::chrono::steady_clock::now() +
             std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                 std::chrono::duration<double, std::milli>(timeout_ms));
    }
    return d;
  }

  /// Milliseconds left (clamped at 0), or -1 when unbounded.
  [[nodiscard]] double remaining_ms() const {
    if (!bounded) return -1.0;
    const double left = std::chrono::duration<double, std::milli>(
                            at - std::chrono::steady_clock::now())
                            .count();
    return left > 0.0 ? left : 0.0;
  }

  [[nodiscard]] bool expired() const {
    return bounded && std::chrono::steady_clock::now() >= at;
  }
};

Client::Client(ClientConfig config) : config_(std::move(config)) {}

Client::~Client() { close(); }

void Client::close() {
  fd_.close();
  inbuf_.clear();
}

void Client::connect() {
  if (connected()) return;

  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV;
  const std::string port = std::to_string(config_.port);
  addrinfo* found = nullptr;
  const int rc = ::getaddrinfo(config_.host.c_str(), port.c_str(), &hints,
                               &found);
  if (rc != 0 || found == nullptr)
    throw NetError("client: cannot resolve " + config_.host + ": " +
                   ::gai_strerror(rc));

  util::Backoff backoff(config_.backoff_initial_ms, config_.backoff_cap_ms);
  std::string last_error = "no attempts made";
  const std::size_t attempts = std::max<std::size_t>(1, config_.connect_attempts);
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0)
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          backoff.next_ms()));
    for (const addrinfo* ai = found; ai != nullptr; ai = ai->ai_next) {
      // Non-blocking from the start so connect_timeout_ms bounds
      // establishment too, mirroring the send/recv deadline handling.
      util::FdHandle fd(::socket(
          ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC | SOCK_NONBLOCK,
          ai->ai_protocol));
      if (!fd) {
        last_error = std::strerror(errno);
        continue;
      }
      if (::connect(fd.get(), ai->ai_addr, ai->ai_addrlen) != 0) {
        // EINTR also means the handshake continues asynchronously.
        if (errno != EINPROGRESS && errno != EINTR) {
          last_error = std::strerror(errno);
          continue;
        }
        const double wait_ms =
            config_.connect_timeout_ms > 0.0 ? config_.connect_timeout_ms
                                             : -1.0;
        const auto wait = util::wait_writable(fd.get(), wait_ms);
        if (wait == util::WaitResult::timeout) {
          last_error = "connect timed out";
          continue;
        }
        // A refused/unreachable connect surfaces as POLLERR (WaitResult::
        // error); SO_ERROR carries the real cause either way.
        int soerr = 0;
        socklen_t len = sizeof(soerr);
        if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &soerr, &len) != 0) {
          last_error = std::strerror(errno);
          continue;
        }
        if (soerr != 0) {
          last_error = std::strerror(soerr);
          continue;
        }
        if (wait == util::WaitResult::error) {
          last_error = "poll failed while connecting";
          continue;
        }
      }
      util::set_tcp_nodelay(fd.get());
      fd_ = std::move(fd);
      ::freeaddrinfo(found);
      return;
    }
  }
  ::freeaddrinfo(found);
  throw NetError("client: connect to " + config_.host + ":" + port +
                 " failed after " + std::to_string(attempts) +
                 " attempts: " + last_error);
}

void Client::send_bytes(std::string_view bytes, const Deadline& deadline) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_.get(), bytes.data() + sent,
                             bytes.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (deadline.expired()) throw NetError("client: send timed out");
      const auto wait =
          util::wait_writable(fd_.get(), deadline.remaining_ms());
      if (wait == util::WaitResult::timeout)
        throw NetError("client: send timed out");
      if (wait == util::WaitResult::error)
        throw NetError("client: connection failed while sending");
      continue;
    }
    throw NetError(std::string("client: send failed: ") +
                   std::strerror(errno));
  }
}

std::string Client::read_frame(FrameHeader& header, const Deadline& deadline) {
  for (;;) {
    const auto parsed = parse_frame_header(inbuf_, config_.max_frame_body);
    if (parsed &&
        inbuf_.size() >= kHeaderSize + parsed->body_size) {
      header = *parsed;
      std::string body = inbuf_.substr(kHeaderSize, parsed->body_size);
      inbuf_.erase(0, kHeaderSize + parsed->body_size);
      return body;
    }

    if (deadline.expired()) throw NetError("client: response timed out");
    const auto wait = util::wait_readable(fd_.get(), deadline.remaining_ms());
    if (wait == util::WaitResult::timeout)
      throw NetError("client: response timed out");
    if (wait == util::WaitResult::error)
      throw NetError("client: connection failed while waiting");

    char chunk[16 * 1024];
    const long n = util::recv_some(fd_.get(), chunk, sizeof(chunk));
    if (n > 0) {
      inbuf_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) continue;
    if (n == 0) throw NetError("client: connection closed by server");
    throw NetError(std::string("client: recv failed: ") +
                   std::strerror(errno));
  }
}

service::SchedulingResponse Client::response_from_frame(
    const FrameHeader& header, std::string_view body,
    std::uint64_t expected_min_id, std::uint64_t expected_max_id) {
  if (header.request_id < expected_min_id ||
      header.request_id > expected_max_id)
    throw NetError("client: response for unknown request id " +
                   std::to_string(header.request_id));
  switch (header.type) {
    case FrameType::solve_response:
      return decode_solve_response(body);
    case FrameType::error: {
      // The server scoped this fault to our request (echoed id): surface
      // it as a failed response rather than poisoning the connection.
      const WireFault fault = decode_error(body);
      service::SchedulingResponse response;
      response.status = service::ResponseStatus::failed;
      response.error = std::string("wire ") + to_string(fault.code) + ": " +
                       fault.message;
      return response;
    }
    default:
      throw NetError("client: unexpected frame type in response");
  }
}

service::SchedulingResponse Client::solve(
    const service::SchedulingRequest& request) {
  connect();
  const auto deadline = Deadline::from_timeout(config_.request_timeout_ms);
  const std::uint64_t id = next_id_++;
  try {
    send_bytes(request.trace.valid()
                   ? encode_traced_solve_request(request, request.trace, id)
                   : encode_solve_request(request, id),
               deadline);
    FrameHeader header;
    const std::string body = read_frame(header, deadline);
    return response_from_frame(header, body, id, id);
  } catch (...) {
    // Timeouts and stream faults leave the framing position unknown.
    close();
    throw;
  }
}

std::vector<service::SchedulingResponse> Client::solve_batch(
    const std::vector<service::SchedulingRequest>& requests) {
  if (requests.empty()) return {};
  connect();
  // One deadline bounds the whole pipelined burst.
  const auto deadline = Deadline::from_timeout(config_.request_timeout_ms);
  const std::uint64_t base = next_id_;
  next_id_ += requests.size();
  try {
    std::string burst;
    for (std::size_t i = 0; i < requests.size(); ++i)
      burst += requests[i].trace.valid()
                   ? encode_traced_solve_request(requests[i],
                                                 requests[i].trace, base + i)
                   : encode_solve_request(requests[i], base + i);
    send_bytes(burst, deadline);

    std::vector<service::SchedulingResponse> responses(requests.size());
    std::vector<bool> seen(requests.size(), false);
    for (std::size_t done = 0; done < requests.size(); ++done) {
      FrameHeader header;
      const std::string body = read_frame(header, deadline);
      auto response = response_from_frame(header, body, base,
                                          base + requests.size() - 1);
      const std::size_t slot =
          static_cast<std::size_t>(header.request_id - base);
      if (seen[slot])
        throw NetError("client: duplicate response for request id " +
                       std::to_string(header.request_id));
      seen[slot] = true;
      responses[slot] = std::move(response);
    }
    return responses;
  } catch (...) {
    close();
    throw;
  }
}

// -- MultiClient -----------------------------------------------------------

double LoadStats::throughput_rps() const {
  if (wall_seconds <= 0.0) return 0.0;
  return static_cast<double>(ok + failed) / wall_seconds;
}

double LoadStats::latency_quantile(double percent) const {
  if (latency_seconds.empty()) return 0.0;
  std::vector<double> sorted = latency_seconds;
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::min(std::max(percent, 0.0), 100.0);
  const auto rank = static_cast<std::size_t>(
      clamped / 100.0 * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

/// One connection's pipeline: bytes waiting to go out, bytes received
/// beyond the last consumed frame, and the send timestamp of every
/// in-flight request id (ids are globally unique, so responses -- which
/// come back on the connection that sent them -- always resolve here).
struct MultiClient::Conn {
  util::FdHandle fd;
  std::string outbuf;
  std::size_t out_off = 0;
  std::string inbuf;
  std::unordered_map<std::uint64_t, std::chrono::steady_clock::time_point>
      in_flight;
};

namespace {

/// One blocking-with-timeout TCP connect (the load generator does not
/// retry: a bench against a dead server should fail fast).
util::FdHandle multi_connect(const std::string& host, std::uint16_t port,
                             double timeout_ms) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV;
  const std::string service = std::to_string(port);
  addrinfo* found = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &found);
  if (rc != 0 || found == nullptr)
    throw NetError("multi-client: cannot resolve " + host + ": " +
                   ::gai_strerror(rc));
  std::string last_error = "no usable address";
  for (const addrinfo* ai = found; ai != nullptr; ai = ai->ai_next) {
    util::FdHandle fd(::socket(
        ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC | SOCK_NONBLOCK,
        ai->ai_protocol));
    if (!fd) {
      last_error = std::strerror(errno);
      continue;
    }
    if (::connect(fd.get(), ai->ai_addr, ai->ai_addrlen) != 0) {
      if (errno != EINPROGRESS && errno != EINTR) {
        last_error = std::strerror(errno);
        continue;
      }
      const auto wait = util::wait_writable(
          fd.get(), timeout_ms > 0.0 ? timeout_ms : -1.0);
      if (wait == util::WaitResult::timeout) {
        last_error = "connect timed out";
        continue;
      }
      int soerr = 0;
      socklen_t len = sizeof(soerr);
      if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &soerr, &len) != 0 ||
          soerr != 0) {
        last_error = std::strerror(soerr != 0 ? soerr : errno);
        continue;
      }
    }
    util::set_tcp_nodelay(fd.get());
    ::freeaddrinfo(found);
    return fd;
  }
  ::freeaddrinfo(found);
  throw NetError("multi-client: connect to " + host + ":" + service +
                 " failed: " + last_error);
}

/// Patches the little-endian request id at byte 8 of the frame that
/// starts at `at` in `buffer`.
void patch_request_id(std::string& buffer, std::size_t at, std::uint64_t id) {
  for (std::size_t i = 0; i < 8; ++i)
    buffer[at + 8 + i] = static_cast<char>((id >> (8 * i)) & 0xffu);
}

/// Patches the 17-byte trace context at the start of the body of the
/// traced_solve_request frame that starts at `at` in `buffer` (little-
/// endian id halves + flags byte, mirroring append_trace_context). The
/// inner solve_request bytes behind it stay verbatim.
void patch_trace_context(std::string& buffer, std::size_t at,
                         const obs::TraceContext& context) {
  const std::size_t base = at + kHeaderSize;
  for (std::size_t i = 0; i < 8; ++i)
    buffer[base + i] = static_cast<char>((context.id.hi >> (8 * i)) & 0xffu);
  for (std::size_t i = 0; i < 8; ++i)
    buffer[base + 8 + i] =
        static_cast<char>((context.id.lo >> (8 * i)) & 0xffu);
  buffer[base + 16] = static_cast<char>(context.sampled ? 1 : 0);
}

}  // namespace

MultiClient::MultiClient() : MultiClient(MultiClientConfig()) {}

MultiClient::MultiClient(MultiClientConfig config)
    : config_(std::move(config)) {}

LoadStats MultiClient::run(const service::SchedulingRequest& request,
                           std::size_t total) {
  LoadStats stats;
  if (total == 0) return stats;

  obs::Tracer* const tracer = config_.tracer;
  const std::string frame =
      tracer != nullptr
          ? encode_traced_solve_request(request, tracer->new_context(), 0)
          : encode_solve_request(request, 0);
  const std::size_t n_conns =
      std::min(std::max<std::size_t>(1, config_.connections), total);
  const std::size_t window = std::max<std::size_t>(1, config_.window);

  std::vector<Conn> conns(n_conns);
  for (Conn& conn : conns)
    conn.fd = multi_connect(config_.host, config_.port,
                            config_.connect_timeout_ms);

  std::uint64_t next_id = 1;
  std::size_t assigned = 0;
  std::size_t completed = 0;
  stats.latency_seconds.reserve(total);

  const auto enqueue = [&](Conn& conn) {
    while (assigned < total && conn.in_flight.size() < window) {
      const std::size_t at = conn.outbuf.size();
      conn.outbuf.append(frame);
      patch_request_id(conn.outbuf, at, next_id);
      if (tracer != nullptr)
        patch_trace_context(conn.outbuf, at, tracer->new_context());
      conn.in_flight.emplace(next_id, std::chrono::steady_clock::now());
      ++next_id;
      ++assigned;
      ++stats.sent;
    }
  };
  for (Conn& conn : conns) enqueue(conn);

  const auto started = std::chrono::steady_clock::now();
  std::vector<pollfd> fds(n_conns);
  while (completed < total) {
    for (std::size_t i = 0; i < n_conns; ++i) {
      fds[i].fd = conns[i].fd.get();
      fds[i].events = static_cast<short>(
          POLLIN |
          (conns[i].out_off < conns[i].outbuf.size() ? POLLOUT : 0));
      fds[i].revents = 0;
    }
    const int n = ::poll(fds.data(), fds.size(), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw NetError(std::string("multi-client: poll failed: ") +
                     std::strerror(errno));
    }
    for (std::size_t i = 0; i < n_conns; ++i) {
      Conn& conn = conns[i];
      if ((fds[i].revents & (POLLERR | POLLHUP)) != 0 &&
          (fds[i].revents & POLLIN) == 0)
        throw NetError("multi-client: connection failed under load");
      if ((fds[i].revents & POLLOUT) != 0) {
        while (conn.out_off < conn.outbuf.size()) {
          const ssize_t sent =
              ::send(conn.fd.get(), conn.outbuf.data() + conn.out_off,
                     conn.outbuf.size() - conn.out_off, MSG_NOSIGNAL);
          if (sent > 0) {
            conn.out_off += static_cast<std::size_t>(sent);
            continue;
          }
          if (sent < 0 && errno == EINTR) continue;
          if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          throw NetError(std::string("multi-client: send failed: ") +
                         std::strerror(errno));
        }
        if (conn.out_off == conn.outbuf.size()) {
          conn.outbuf.clear();
          conn.out_off = 0;
        }
      }
      if ((fds[i].revents & POLLIN) == 0) continue;
      char chunk[64 * 1024];
      for (;;) {
        const long got = util::recv_some(conn.fd.get(), chunk, sizeof(chunk));
        if (got > 0) {
          conn.inbuf.append(chunk, static_cast<std::size_t>(got));
          continue;
        }
        if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        if (got == 0)
          throw NetError("multi-client: connection closed by server");
        throw NetError(std::string("multi-client: recv failed: ") +
                       std::strerror(errno));
      }
      // Consume every complete frame; bodies are not decoded -- the
      // generator measures transport throughput, so classification by
      // frame type is enough (content checks live in the tests).
      for (;;) {
        const auto header =
            parse_frame_header(conn.inbuf, config_.max_frame_body);
        if (!header || conn.inbuf.size() < kHeaderSize + header->body_size)
          break;
        const auto it = conn.in_flight.find(header->request_id);
        if (it == conn.in_flight.end())
          throw NetError("multi-client: response for unknown request id " +
                         std::to_string(header->request_id));
        stats.latency_seconds.push_back(
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          it->second)
                .count());
        conn.in_flight.erase(it);
        if (header->type == FrameType::solve_response)
          ++stats.ok;
        else
          ++stats.failed;
        ++completed;
        conn.inbuf.erase(0, kHeaderSize + header->body_size);
      }
      enqueue(conn);
    }
  }
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  return stats;
}

Hello Client::hello(const Hello& offer) {
  connect();
  const auto deadline = Deadline::from_timeout(config_.request_timeout_ms);
  const std::uint64_t id = next_id_++;
  try {
    send_bytes(encode_hello_request(offer, id), deadline);
    FrameHeader header;
    const std::string body = read_frame(header, deadline);
    if (header.type == FrameType::hello_response && header.request_id == id)
      return decode_hello_response(body);
    if (header.type == FrameType::error) {
      const WireFault fault = decode_error(body);
      if (fault.code == WireError::bad_version ||
          fault.code == WireError::bad_frame_type) {
        // A v1 peer rejecting the extension frame IS the negotiation
        // result; it also closes the stream, so drop our side too.
        close();
        Hello granted;
        granted.version = kVersion;
        granted.features = 0;
        return granted;
      }
      throw NetError(std::string("client: hello failed: wire ") +
                     to_string(fault.code) + ": " + fault.message);
    }
    throw NetError("client: unexpected frame answering hello");
  } catch (...) {
    close();
    throw;
  }
}

std::vector<ReplAck> Client::repl_insert_batch(
    const std::vector<std::string>& payloads) {
  std::vector<ReplRecord> records(payloads.size());
  for (std::size_t i = 0; i < payloads.size(); ++i)
    records[i].payload = payloads[i];
  return repl_insert_batch(records);
}

std::vector<ReplAck> Client::repl_insert_batch(
    const std::vector<ReplRecord>& payloads) {
  if (payloads.empty()) return {};
  connect();
  const auto deadline = Deadline::from_timeout(config_.request_timeout_ms);
  const std::uint64_t base = next_id_;
  next_id_ += payloads.size();
  try {
    std::string burst;
    for (std::size_t i = 0; i < payloads.size(); ++i)
      burst += encode_repl_insert(payloads[i].payload, base + i,
                                  payloads[i].trace);
    send_bytes(burst, deadline);

    std::vector<ReplAck> acks(payloads.size());
    std::vector<bool> seen(payloads.size(), false);
    for (std::size_t done = 0; done < payloads.size(); ++done) {
      FrameHeader header;
      const std::string body = read_frame(header, deadline);
      if (header.request_id < base ||
          header.request_id >= base + payloads.size())
        throw NetError("client: repl ack for unknown request id " +
                       std::to_string(header.request_id));
      ReplAck ack;
      if (header.type == FrameType::repl_ack) {
        ack = decode_repl_ack(body);
      } else if (header.type == FrameType::error) {
        const WireFault fault = decode_error(body);
        ack.applied = false;
        ack.error = std::string("wire ") + to_string(fault.code) + ": " +
                    fault.message;
      } else {
        throw NetError("client: unexpected frame answering repl_insert");
      }
      const std::size_t slot =
          static_cast<std::size_t>(header.request_id - base);
      if (seen[slot])
        throw NetError("client: duplicate repl ack for request id " +
                       std::to_string(header.request_id));
      seen[slot] = true;
      acks[slot] = std::move(ack);
    }
    return acks;
  } catch (...) {
    close();
    throw;
  }
}

ClusterStatus Client::cluster_status() {
  connect();
  const auto deadline = Deadline::from_timeout(config_.request_timeout_ms);
  const std::uint64_t id = next_id_++;
  try {
    send_bytes(encode_cluster_status_request(id), deadline);
    FrameHeader header;
    const std::string body = read_frame(header, deadline);
    if (header.type != FrameType::cluster_status_response ||
        header.request_id != id) {
      if (header.type == FrameType::error) {
        const WireFault fault = decode_error(body);
        throw NetError(std::string("client: cluster status failed: wire ") +
                       to_string(fault.code) + ": " + fault.message);
      }
      throw NetError("client: unexpected frame answering cluster status");
    }
    return decode_cluster_status_response(body);
  } catch (...) {
    close();
    throw;
  }
}

TraceDump Client::trace_dump(std::uint32_t max_traces) {
  connect();
  const auto deadline = Deadline::from_timeout(config_.request_timeout_ms);
  const std::uint64_t id = next_id_++;
  try {
    send_bytes(encode_trace_dump_request(max_traces, id), deadline);
    FrameHeader header;
    const std::string body = read_frame(header, deadline);
    if (header.type != FrameType::trace_dump_response ||
        header.request_id != id) {
      if (header.type == FrameType::error) {
        const WireFault fault = decode_error(body);
        throw NetError(std::string("client: trace dump failed: wire ") +
                       to_string(fault.code) + ": " + fault.message);
      }
      throw NetError("client: unexpected frame answering trace dump");
    }
    return decode_trace_dump_response(body);
  } catch (...) {
    close();
    throw;
  }
}

std::string Client::stats(StatsFormat format) {
  connect();
  const auto deadline = Deadline::from_timeout(config_.request_timeout_ms);
  const std::uint64_t id = next_id_++;
  try {
    send_bytes(encode_stats_request(format, id), deadline);
    FrameHeader header;
    const std::string body = read_frame(header, deadline);
    if (header.type != FrameType::stats_response || header.request_id != id) {
      if (header.type == FrameType::error) {
        const WireFault fault = decode_error(body);
        throw NetError(std::string("client: stats failed: wire ") +
                       to_string(fault.code) + ": " + fault.message);
      }
      throw NetError("client: unexpected frame answering stats request");
    }
    return decode_stats_response(body);
  } catch (...) {
    close();
    throw;
  }
}

}  // namespace medcc::net
