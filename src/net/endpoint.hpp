// A network endpoint ("host:port") and its textual form -- the unit
// the cluster layer configures peers and the ClusterClient's ring in.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace medcc::net {

struct Endpoint {
  std::string host;
  std::uint16_t port = 0;

  friend bool operator==(const Endpoint& a, const Endpoint& b) {
    return a.port == b.port && a.host == b.host;
  }
  friend bool operator!=(const Endpoint& a, const Endpoint& b) {
    return !(a == b);
  }
};

/// "host:port" (the form parse_endpoint accepts back).
[[nodiscard]] std::string to_string(const Endpoint& endpoint);

/// Parses "host:port". Rejects -- as nullopt -- an empty host, a
/// missing/empty/non-numeric port, port 0, and ports above 65535.
/// IPv6 literals are not supported (nothing else in the stack speaks
/// IPv6 yet); use a resolvable name instead.
[[nodiscard]] std::optional<Endpoint> parse_endpoint(std::string_view text);

}  // namespace medcc::net
