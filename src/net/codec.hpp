// The MED-CC binary wire protocol: a versioned, length-prefixed
// framing plus the message bodies that carry SchedulingRequest /
// SchedulingResponse, a metrics (stats) exchange, a structured error
// frame, and -- since protocol version 2 -- the cluster extension
// (hello handshake, cache replication, cluster status).
//
// Every frame starts with a fixed 20-byte header, all integers
// little-endian regardless of host byte order:
//
//   offset  size  field
//   0       4     magic 0x4343444D ("MDCC" as bytes 4D 44 43 43)
//   4       2     protocol version (1 or 2; see below)
//   6       2     frame type (FrameType)
//   8       8     request id (client-chosen; echoed on the response)
//   16      4     body length in bytes (bounded by max_body)
//   20      n     body
//
// Version rules keep v1 peers interoperable: the original frame types
// (solve/stats/error, 1..5) are ALWAYS stamped version 1, so a v1
// server accepts every frame a v2 client sends on the ordinary solve
// path. The cluster extension types (6..11) are stamped version 2; a
// v1 peer that receives one rejects it with a bad_version (or
// bad_frame_type) error frame and closes, which is exactly the signal
// the hello handshake uses to detect a pre-v2 peer and fall back.
// Conversely a v2 parser rejects a version-2 header on a legacy frame
// type, so the version byte stays meaningful under fuzzing.
//
// Responses correlate to requests purely by request id, so a server may
// answer out of order and a client may pipeline many requests on one
// connection (Client::solve_batch does exactly that).
//
// Decoding is fuzz-resistant by construction: every read goes through a
// bounds-checked WireReader, element counts are validated against the
// bytes actually present before any allocation, and all failures --
// truncation, bad magic/version, oversized prefixes, malformed bodies,
// trailing garbage -- surface as a structured CodecError, never as UB.
// The full byte-layout tables live in docs/net.md.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.hpp"
#include "service/request.hpp"
#include "util/error.hpp"

namespace medcc::net {

/// Transport-level failure (connect, send, recv, orderly close).
class NetError : public Error {
public:
  explicit NetError(const std::string& what) : Error(what) {}
};

inline constexpr std::uint32_t kMagic = 0x4343444Du;  // "MDCC"
inline constexpr std::uint16_t kVersion = 1;
/// Protocol version carrying the cluster extension (hello handshake,
/// replication, cluster status). kMaxVersion is what hello offers.
inline constexpr std::uint16_t kVersion2 = 2;
inline constexpr std::uint16_t kMaxVersion = kVersion2;
inline constexpr std::size_t kHeaderSize = 20;
/// Default ceiling on one frame body; oversized length prefixes are
/// rejected before any buffering happens.
inline constexpr std::size_t kDefaultMaxBody = 64u << 20;

enum class FrameType : std::uint16_t {
  solve_request = 1,
  solve_response = 2,
  stats_request = 3,
  stats_response = 4,
  error = 5,
  // -- version 2 (cluster extension) --
  hello_request = 6,           ///< version/feature negotiation
  hello_response = 7,
  repl_insert = 8,             ///< push one cache record to a peer
  repl_ack = 9,
  cluster_status_request = 10, ///< membership/replication inspection
  cluster_status_response = 11,
  // -- version 2 (tracing extension, kFeatureTracing) --
  traced_solve_request = 12,   ///< solve_request + trace-context prefix
  trace_dump_request = 13,     ///< admin: read back retained traces
  trace_dump_response = 14,
};

/// Wire error codes carried by FrameType::error (and by CodecError).
enum class WireError : std::uint16_t {
  truncated = 1,        ///< body/frame shorter than its own length fields
  bad_magic = 2,        ///< first four bytes are not "MDCC"
  bad_version = 3,      ///< protocol version this peer does not speak
  bad_frame_type = 4,   ///< frame type outside the known range
  oversized_frame = 5,  ///< length prefix exceeds the configured max body
  bad_body = 6,         ///< body decoded to an invalid message/instance
  trailing_bytes = 7,   ///< body longer than its message
  limit_exceeded = 8,   ///< an element count exceeds a protocol limit
  unexpected_frame = 9, ///< valid frame in the wrong direction/state
  shutting_down = 10,   ///< server is draining; retry elsewhere/later
};

[[nodiscard]] const char* to_string(WireError code);

/// Malformed-bytes failure; carries the WireError taxonomy so servers
/// can answer with a matching error frame.
class CodecError : public Error {
public:
  CodecError(WireError code, const std::string& what)
      : Error(what), code_(code) {}
  [[nodiscard]] WireError code() const { return code_; }

private:
  WireError code_;
};

struct FrameHeader {
  FrameType type = FrameType::error;
  /// Header version the frame arrived with (1 for the legacy types,
  /// 2 for the cluster extension; the parser enforces the pairing).
  std::uint16_t version = kVersion;
  std::uint64_t request_id = 0;
  std::uint32_t body_size = 0;
};

/// Parses the fixed header at the start of `buffer`. Returns nullopt
/// when fewer than kHeaderSize bytes are available (read more);
/// throws CodecError on bad magic/version/type or an oversized prefix.
[[nodiscard]] std::optional<FrameHeader> parse_frame_header(
    std::string_view buffer, std::size_t max_body = kDefaultMaxBody);

/// Wraps `body` in a frame, stamping the version the type belongs to
/// (1 for solve/stats/error, 2 for the cluster extension).
[[nodiscard]] std::string encode_frame(FrameType type,
                                       std::uint64_t request_id,
                                       std::string_view body);

// -- solve ----------------------------------------------------------------

/// Full frame for one SchedulingRequest (instance, budget, solver,
/// config, tenant, deadline). The instance travels as its workflow
/// structure, VM catalog, billing/network scalars, and the exact
/// execution-time matrix of the computing modules, so the decoded
/// instance reproduces TE/CE bit-for-bit whether the original came from
/// Instance::from_model or Instance::from_matrix.
[[nodiscard]] std::string encode_solve_request(
    const service::SchedulingRequest& request, std::uint64_t request_id);

/// Decodes a solve_request body (bytes after the header). Throws
/// CodecError (WireError::bad_body and friends) on malformed input,
/// including instances that fail workflow validation.
[[nodiscard]] service::SchedulingRequest decode_solve_request(
    std::string_view body);

/// Full frame for one SchedulingResponse. The schedule, MED, cost and
/// iteration count travel bit-exactly; the CpmResult timing detail is
/// deliberately not shipped (clients re-derive it with sched::evaluate
/// when they need it).
[[nodiscard]] std::string encode_solve_response(
    const service::SchedulingResponse& response, std::uint64_t request_id);

[[nodiscard]] service::SchedulingResponse decode_solve_response(
    std::string_view body);

// -- trace context (tracing extension, protocol v2) ------------------------

class WireReader;  // declared with the primitives below

/// Fixed wire size of one trace context: u64 id hi, u64 id lo, u8 flags
/// (bit 0 = sampled). In a traced_solve_request the context is the
/// first kTraceContextSize bytes of the body, immediately followed by a
/// verbatim solve_request body -- servers key the wire cache on the
/// inner bytes, so traced and untraced duplicates share cache entries.
inline constexpr std::size_t kTraceContextSize = 17;

/// Appends the 17-byte wire form of `context` to `out`.
void append_trace_context(std::string& out, const obs::TraceContext& context);
/// Decodes one trace context through `reader` (throws on truncation).
[[nodiscard]] obs::TraceContext read_trace_context(WireReader& reader);

/// Full frame wrapping one solve_request body behind a trace context.
[[nodiscard]] std::string encode_traced_solve_request(
    const service::SchedulingRequest& request,
    const obs::TraceContext& context, std::uint64_t request_id);

/// A traced_solve_request body split into its two parts. `inner` views
/// into the caller's buffer (the verbatim solve_request body bytes).
struct TracedSolveBody {
  obs::TraceContext trace;
  std::string_view inner;
};

/// Splits a traced_solve_request body; throws CodecError(truncated)
/// when the trace prefix does not fit. The inner body is NOT decoded.
[[nodiscard]] TracedSolveBody split_traced_solve_request(
    std::string_view body);

// -- stats ----------------------------------------------------------------

enum class StatsFormat : std::uint8_t { text = 0, csv = 1, prometheus = 2 };

[[nodiscard]] std::string encode_stats_request(StatsFormat format,
                                               std::uint64_t request_id);
[[nodiscard]] StatsFormat decode_stats_request(std::string_view body);

[[nodiscard]] std::string encode_stats_response(std::string_view dump,
                                                std::uint64_t request_id);
[[nodiscard]] std::string decode_stats_response(std::string_view body);

// -- error ----------------------------------------------------------------

struct WireFault {
  WireError code = WireError::bad_body;
  std::string message;
};

[[nodiscard]] std::string encode_error(WireError code,
                                       std::string_view message,
                                       std::uint64_t request_id);
[[nodiscard]] WireFault decode_error(std::string_view body);

// -- hello (version negotiation, protocol v2) ------------------------------

/// Feature bits advertised in the hello exchange. A peer may only rely
/// on a feature both sides advertised.
inline constexpr std::uint32_t kFeatureReplication = 1u << 0;
/// Trace-context propagation: traced_solve_request frames, the
/// repl_insert trace suffix, and the trace_dump admin exchange.
inline constexpr std::uint32_t kFeatureTracing = 1u << 1;

/// What one side of the handshake offers (request) or granted
/// (response). The negotiated version is min(client max, server max).
struct Hello {
  std::uint16_t version = kMaxVersion;
  std::uint32_t features = 0;
  /// Human-chosen node name ("" when unset); inspection only.
  std::string node_id;
};

[[nodiscard]] std::string encode_hello_request(const Hello& hello,
                                               std::uint64_t request_id);
[[nodiscard]] Hello decode_hello_request(std::string_view body);

[[nodiscard]] std::string encode_hello_response(const Hello& hello,
                                                std::uint64_t request_id);
[[nodiscard]] Hello decode_hello_response(std::string_view body);

// -- replication (protocol v2) ---------------------------------------------

/// Ceiling on one replicated cache-record payload. Far above any entry
/// the service produces today, far below the frame body limit.
inline constexpr std::size_t kMaxReplPayload = 16u << 20;

/// One replicated cache record off the wire: the opaque payload plus
/// the trace context of the solve that produced it (invalid id when
/// the sender was untraced or pre-tracing).
struct ReplRecord {
  std::string payload;
  obs::TraceContext trace;
};

/// Frame for one replicated cache record. The payload is the opaque
/// service::persistence cache-record encoding (docs/FORMATS.md) -- the
/// same bytes the durable store journals, so replication and
/// persistence share one record codec. A valid `trace` context is
/// appended as a 17-byte suffix (decoders accept both forms, so a
/// tracing sender interoperates with a pre-tracing v2 peer).
[[nodiscard]] std::string encode_repl_insert(
    std::string_view payload, std::uint64_t request_id,
    const obs::TraceContext& trace = {});
[[nodiscard]] ReplRecord decode_repl_insert(std::string_view body);

struct ReplAck {
  bool applied = false;
  /// Reason when !applied ("" otherwise).
  std::string error;
};

[[nodiscard]] std::string encode_repl_ack(const ReplAck& ack,
                                          std::uint64_t request_id);
[[nodiscard]] ReplAck decode_repl_ack(std::string_view body);

// -- cluster status (protocol v2) ------------------------------------------

/// One replication peer as seen by the answering node.
struct ClusterPeerStatus {
  std::string address;       ///< "host:port"
  std::string state;         ///< "connected" | "connecting" | "down" | "v1-peer"
  std::uint16_t peer_version = 0;  ///< negotiated version; 0 = no handshake yet
  std::uint64_t queued = 0;        ///< records waiting in the bounded queue
  std::uint64_t sent = 0;
  std::uint64_t acked = 0;
  std::uint64_t dropped = 0;       ///< bounded-queue overflow drops
  std::uint64_t send_errors = 0;
};

/// The membership/replication view medcc_clusterctl renders.
struct ClusterStatus {
  std::string node_id;
  std::uint16_t protocol_version = kMaxVersion;
  std::uint64_t repl_applied = 0;       ///< records applied from peers
  std::uint64_t repl_apply_errors = 0;
  std::vector<ClusterPeerStatus> peers;
};

[[nodiscard]] std::string encode_cluster_status_request(
    std::uint64_t request_id);

[[nodiscard]] std::string encode_cluster_status_response(
    const ClusterStatus& status, std::uint64_t request_id);
[[nodiscard]] ClusterStatus decode_cluster_status_response(
    std::string_view body);

// -- trace dump (tracing extension, protocol v2) ---------------------------

/// One node's tracer state as read back by medcc_tracectl: the counter
/// snapshot, the per-stage aggregate breakdown, and the retained
/// completed traces (bounded; newest first as the server dumped them).
struct TraceDump {
  std::string node_id;
  bool enabled = false;
  std::uint64_t started = 0;
  std::uint64_t sampled = 0;
  std::uint64_t completed = 0;
  std::uint64_t dropped = 0;
  std::array<obs::StageStat, obs::kStageCount> stages{};
  std::vector<obs::TraceRecord> traces;
};

/// Ceilings on a trace_dump_response, keeping hostile dumps bounded.
inline constexpr std::uint64_t kMaxDumpTraces = 4096;
inline constexpr std::uint64_t kMaxDumpSpans = 1024;

/// `max_traces` caps how many retained traces the server returns
/// (0 = counters and stage aggregates only).
[[nodiscard]] std::string encode_trace_dump_request(std::uint32_t max_traces,
                                                    std::uint64_t request_id);
[[nodiscard]] std::uint32_t decode_trace_dump_request(std::string_view body);

[[nodiscard]] std::string encode_trace_dump_response(
    const TraceDump& dump, std::uint64_t request_id);
[[nodiscard]] TraceDump decode_trace_dump_response(std::string_view body);

// -- primitives (exposed for tests) ---------------------------------------

/// Append-only little-endian encoder.
class WireWriter {
public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// IEEE-754 bits via the u64 path: round-trips every double bit-exactly.
  void f64(double v);
  /// u32 length prefix + raw bytes.
  void str(std::string_view s);

  [[nodiscard]] const std::string& bytes() const { return out_; }
  [[nodiscard]] std::string take() { return std::move(out_); }

private:
  std::string out_;
};

/// Bounds-checked little-endian decoder over a borrowed buffer; every
/// underflow throws CodecError(WireError::truncated).
class WireReader {
public:
  explicit WireReader(std::string_view data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] double f64();
  /// Reads a length-prefixed string of at most `max_len` bytes.
  [[nodiscard]] std::string str(std::size_t max_len);

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool done() const { return pos_ == data_.size(); }
  /// Throws CodecError(trailing_bytes) unless the buffer is exhausted.
  void expect_done() const;
  /// Throws CodecError(limit_exceeded) when `count` elements of at least
  /// `min_bytes_each` cannot possibly fit in the remaining bytes -- the
  /// guard that keeps hostile counts from driving huge allocations.
  void expect_fits(std::uint64_t count, std::size_t min_bytes_each) const;

private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace medcc::net
