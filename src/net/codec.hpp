// The MED-CC binary wire protocol (version 1): a versioned,
// length-prefixed framing plus the message bodies that carry
// SchedulingRequest / SchedulingResponse, a metrics (stats) exchange,
// and a structured error frame.
//
// Every frame starts with a fixed 20-byte header, all integers
// little-endian regardless of host byte order:
//
//   offset  size  field
//   0       4     magic 0x4343444D ("MDCC" as bytes 4D 44 43 43)
//   4       2     protocol version (currently 1)
//   6       2     frame type (FrameType)
//   8       8     request id (client-chosen; echoed on the response)
//   16      4     body length in bytes (bounded by max_body)
//   20      n     body
//
// Responses correlate to requests purely by request id, so a server may
// answer out of order and a client may pipeline many requests on one
// connection (Client::solve_batch does exactly that).
//
// Decoding is fuzz-resistant by construction: every read goes through a
// bounds-checked WireReader, element counts are validated against the
// bytes actually present before any allocation, and all failures --
// truncation, bad magic/version, oversized prefixes, malformed bodies,
// trailing garbage -- surface as a structured CodecError, never as UB.
// The full byte-layout tables live in docs/net.md.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "service/request.hpp"
#include "util/error.hpp"

namespace medcc::net {

/// Transport-level failure (connect, send, recv, orderly close).
class NetError : public Error {
public:
  explicit NetError(const std::string& what) : Error(what) {}
};

inline constexpr std::uint32_t kMagic = 0x4343444Du;  // "MDCC"
inline constexpr std::uint16_t kVersion = 1;
inline constexpr std::size_t kHeaderSize = 20;
/// Default ceiling on one frame body; oversized length prefixes are
/// rejected before any buffering happens.
inline constexpr std::size_t kDefaultMaxBody = 64u << 20;

enum class FrameType : std::uint16_t {
  solve_request = 1,
  solve_response = 2,
  stats_request = 3,
  stats_response = 4,
  error = 5,
};

/// Wire error codes carried by FrameType::error (and by CodecError).
enum class WireError : std::uint16_t {
  truncated = 1,        ///< body/frame shorter than its own length fields
  bad_magic = 2,        ///< first four bytes are not "MDCC"
  bad_version = 3,      ///< protocol version this peer does not speak
  bad_frame_type = 4,   ///< frame type outside the known range
  oversized_frame = 5,  ///< length prefix exceeds the configured max body
  bad_body = 6,         ///< body decoded to an invalid message/instance
  trailing_bytes = 7,   ///< body longer than its message
  limit_exceeded = 8,   ///< an element count exceeds a protocol limit
  unexpected_frame = 9, ///< valid frame in the wrong direction/state
  shutting_down = 10,   ///< server is draining; retry elsewhere/later
};

[[nodiscard]] const char* to_string(WireError code);

/// Malformed-bytes failure; carries the WireError taxonomy so servers
/// can answer with a matching error frame.
class CodecError : public Error {
public:
  CodecError(WireError code, const std::string& what)
      : Error(what), code_(code) {}
  [[nodiscard]] WireError code() const { return code_; }

private:
  WireError code_;
};

struct FrameHeader {
  FrameType type = FrameType::error;
  std::uint64_t request_id = 0;
  std::uint32_t body_size = 0;
};

/// Parses the fixed header at the start of `buffer`. Returns nullopt
/// when fewer than kHeaderSize bytes are available (read more);
/// throws CodecError on bad magic/version/type or an oversized prefix.
[[nodiscard]] std::optional<FrameHeader> parse_frame_header(
    std::string_view buffer, std::size_t max_body = kDefaultMaxBody);

/// Wraps `body` in a version-1 frame.
[[nodiscard]] std::string encode_frame(FrameType type,
                                       std::uint64_t request_id,
                                       std::string_view body);

// -- solve ----------------------------------------------------------------

/// Full frame for one SchedulingRequest (instance, budget, solver,
/// config, tenant, deadline). The instance travels as its workflow
/// structure, VM catalog, billing/network scalars, and the exact
/// execution-time matrix of the computing modules, so the decoded
/// instance reproduces TE/CE bit-for-bit whether the original came from
/// Instance::from_model or Instance::from_matrix.
[[nodiscard]] std::string encode_solve_request(
    const service::SchedulingRequest& request, std::uint64_t request_id);

/// Decodes a solve_request body (bytes after the header). Throws
/// CodecError (WireError::bad_body and friends) on malformed input,
/// including instances that fail workflow validation.
[[nodiscard]] service::SchedulingRequest decode_solve_request(
    std::string_view body);

/// Full frame for one SchedulingResponse. The schedule, MED, cost and
/// iteration count travel bit-exactly; the CpmResult timing detail is
/// deliberately not shipped (clients re-derive it with sched::evaluate
/// when they need it).
[[nodiscard]] std::string encode_solve_response(
    const service::SchedulingResponse& response, std::uint64_t request_id);

[[nodiscard]] service::SchedulingResponse decode_solve_response(
    std::string_view body);

// -- stats ----------------------------------------------------------------

enum class StatsFormat : std::uint8_t { text = 0, csv = 1 };

[[nodiscard]] std::string encode_stats_request(StatsFormat format,
                                               std::uint64_t request_id);
[[nodiscard]] StatsFormat decode_stats_request(std::string_view body);

[[nodiscard]] std::string encode_stats_response(std::string_view dump,
                                                std::uint64_t request_id);
[[nodiscard]] std::string decode_stats_response(std::string_view body);

// -- error ----------------------------------------------------------------

struct WireFault {
  WireError code = WireError::bad_body;
  std::string message;
};

[[nodiscard]] std::string encode_error(WireError code,
                                       std::string_view message,
                                       std::uint64_t request_id);
[[nodiscard]] WireFault decode_error(std::string_view body);

// -- primitives (exposed for tests) ---------------------------------------

/// Append-only little-endian encoder.
class WireWriter {
public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// IEEE-754 bits via the u64 path: round-trips every double bit-exactly.
  void f64(double v);
  /// u32 length prefix + raw bytes.
  void str(std::string_view s);

  [[nodiscard]] const std::string& bytes() const { return out_; }
  [[nodiscard]] std::string take() { return std::move(out_); }

private:
  std::string out_;
};

/// Bounds-checked little-endian decoder over a borrowed buffer; every
/// underflow throws CodecError(WireError::truncated).
class WireReader {
public:
  explicit WireReader(std::string_view data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] double f64();
  /// Reads a length-prefixed string of at most `max_len` bytes.
  [[nodiscard]] std::string str(std::size_t max_len);

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool done() const { return pos_ == data_.size(); }
  /// Throws CodecError(trailing_bytes) unless the buffer is exhausted.
  void expect_done() const;
  /// Throws CodecError(limit_exceeded) when `count` elements of at least
  /// `min_bytes_each` cannot possibly fit in the remaining bytes -- the
  /// guard that keeps hostile counts from driving huge allocations.
  void expect_fits(std::uint64_t count, std::size_t min_bytes_each) const;

private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace medcc::net
