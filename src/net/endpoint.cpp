#include "net/endpoint.hpp"

namespace medcc::net {

std::string to_string(const Endpoint& endpoint) {
  return endpoint.host + ":" + std::to_string(endpoint.port);
}

std::optional<Endpoint> parse_endpoint(std::string_view text) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 == text.size())
    return std::nullopt;
  const std::string_view host = text.substr(0, colon);
  const std::string_view port = text.substr(colon + 1);
  if (host.find(':') != std::string_view::npos) return std::nullopt;
  std::uint32_t value = 0;
  for (const char c : port) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + static_cast<std::uint32_t>(c - '0');
    if (value > 65535) return std::nullopt;
  }
  if (value == 0) return std::nullopt;
  Endpoint endpoint;
  endpoint.host = std::string(host);
  endpoint.port = static_cast<std::uint16_t>(value);
  return endpoint;
}

}  // namespace medcc::net
