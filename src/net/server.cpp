#include "net/server.hpp"

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <string_view>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/log.hpp"

namespace medcc::net {

namespace {

// epoll user-data tags; connection serials start above the reserved ones.
constexpr std::uint64_t kWakeTag = 0;
constexpr std::uint64_t kListenTag = 1;
constexpr std::uint64_t kFirstSerial = 2;

constexpr std::size_t kRecvChunk = 64 * 1024;
/// Chunks gathered into one sendmsg; outq rarely holds more.
constexpr std::size_t kMaxWriteIov = 16;

double ms_since(std::chrono::steady_clock::time_point then,
                std::chrono::steady_clock::time_point now) {
  return std::chrono::duration<double, std::milli>(now - then).count();
}

}  // namespace

Server::CompletionQueue::CompletionQueue()
    : wake_fd(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC)) {
  if (!wake_fd) throw NetError("server: eventfd failed");
}

Server::CompletionQueue::~CompletionQueue() {
  const util::MutexLock lock(mutex);
  for (const auto& [serial, fd] : handoffs) {
    (void)serial;
    ::close(fd);
  }
}

void Server::CompletionQueue::post(std::uint64_t serial, std::string bytes) {
  {
    const util::MutexLock lock(mutex);
    if (!bytes.empty()) items.emplace_back(serial, std::move(bytes));
    --outstanding;
  }
  // The eventfd lives as long as this queue, so this write is safe even
  // after the Server (and its epoll) are gone; it is then simply unread.
  const std::uint64_t one = 1;
  (void)!::write(wake_fd.get(), &one, sizeof(one));
}

void Server::CompletionQueue::hand_off(std::uint64_t serial, int fd) {
  {
    const util::MutexLock lock(mutex);
    handoffs.emplace_back(serial, fd);
  }
  const std::uint64_t one = 1;
  (void)!::write(wake_fd.get(), &one, sizeof(one));
}

Server::Server(service::SchedulingService& service, ServerConfig config)
    : service_(service),
      config_(std::move(config)),
      wire_cache_(service.wire_cache()) {
  listen_fd_.reset(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                            0));
  if (!listen_fd_) throw NetError("server: socket() failed");
  int one = 1;
  (void)::setsockopt(listen_fd_.get(), SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1)
    throw NetError("server: invalid bind address " + config_.bind_address);
  if (::bind(listen_fd_.get(), reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0)
    throw NetError("server: bind to " + config_.bind_address + ":" +
                   std::to_string(config_.port) + " failed: " +
                   std::strerror(errno));
  if (::listen(listen_fd_.get(), config_.backlog) != 0)
    throw NetError("server: listen failed");

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_.get(), reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0)
    throw NetError("server: getsockname failed");
  port_ = ntohs(bound.sin_port);

  const std::size_t io_threads =
      config_.io_threads != 0
          ? config_.io_threads
          : std::max<std::size_t>(1, std::thread::hardware_concurrency());

  // Build every reactor (epoll + eventfd + pool) before starting any
  // thread, so a mid-construction throw only has FdHandles to unwind.
  reactors_.reserve(io_threads);
  for (std::size_t i = 0; i < io_threads; ++i) {
    auto reactor = std::make_unique<Reactor>();
    reactor->index = i;
    reactor->epoll_fd.reset(::epoll_create1(EPOLL_CLOEXEC));
    if (!reactor->epoll_fd) throw NetError("server: epoll_create1 failed");
    reactor->completions = std::make_shared<CompletionQueue>();

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeTag;
    if (::epoll_ctl(reactor->epoll_fd.get(), EPOLL_CTL_ADD,
                    reactor->completions->wake_fd.get(), &ev) != 0)
      throw NetError("server: epoll_ctl(wake) failed");
    if (i == 0) {
      ev.events = EPOLLIN;
      ev.data.u64 = kListenTag;
      if (::epoll_ctl(reactor->epoll_fd.get(), EPOLL_CTL_ADD,
                      listen_fd_.get(), &ev) != 0)
        throw NetError("server: epoll_ctl(listen) failed");
    }
    reactors_.push_back(std::move(reactor));
  }

  next_serial_.store(kFirstSerial, std::memory_order_relaxed);
  try {
    for (auto& reactor : reactors_)
      reactor->thread =
          std::thread([this, raw = reactor.get()] { io_loop(*raw); });
  } catch (...) {
    stop();  // joins whatever did start
    throw;
  }
}

Server::~Server() { stop(); }

void Server::stop() {
  if (stopped_.exchange(true)) return;
  stopping_.store(true, std::memory_order_release);
  for (auto& reactor : reactors_) wake(*reactor);
  for (auto& reactor : reactors_)
    if (reactor->thread.joinable()) reactor->thread.join();
  // All reactor threads are gone; close handed-off sockets that no
  // reactor adopted before exiting (accept raced the shutdown).
  for (auto& reactor : reactors_) {
    std::vector<std::pair<std::uint64_t, int>> orphans;
    {
      const util::MutexLock lock(reactor->completions->mutex);
      orphans.swap(reactor->completions->handoffs);
    }
    for (const auto& [serial, fd] : orphans) {
      (void)serial;
      ::close(fd);
      connections_active_.sub();
    }
  }
}

void Server::wake(Reactor& r) {
  const std::uint64_t one = 1;
  // A full eventfd counter still wakes the loop; ignore short writes.
  (void)!::write(r.completions->wake_fd.get(), &one, sizeof(one));
}

Server::Counters Server::counters() const {
  Counters c;
  c.connections_accepted = connections_accepted_.load();
  c.connections_active = connections_active_.load();
  c.frames_in = frames_in_.load();
  c.frames_out = frames_out_.load();
  c.protocol_errors = protocol_errors_.load();
  c.idle_closed = idle_closed_.load();
  c.dropped_responses = dropped_responses_.load();
  c.backpressure_paused = backpressure_paused_.load();
  c.fastpath_hits = fastpath_hits_.load();
  c.flow_control_rejects = flow_control_rejects_.load();
  c.hellos = hellos_.load();
  c.repl_records_in = repl_records_in_.load();
  c.traced_solves = traced_solves_.load();
  c.trace_dumps = trace_dumps_.load();
  return c;
}

void Server::io_loop(Reactor& r) {
  bool listener_open = (r.index == 0);
  auto grace_deadline = std::chrono::steady_clock::time_point::max();
  std::array<epoll_event, 64> events{};

  for (;;) {
    const bool stopping = stopping_.load(std::memory_order_acquire);

    int timeout_ms = -1;
    if (stopping) {
      timeout_ms = 10;
    } else if (config_.idle_timeout_ms > 0.0) {
      timeout_ms = static_cast<int>(
          std::clamp(config_.idle_timeout_ms / 2.0, 5.0, 250.0));
    }

    const int n = ::epoll_wait(r.epoll_fd.get(), events.data(),
                               static_cast<int>(events.size()), timeout_ms);
    if (n < 0 && errno != EINTR) {
      util::log_error("net server: epoll_wait failed: ", std::strerror(errno));
      break;
    }

    for (int i = 0; i < std::max(n, 0); ++i) {
      const std::uint64_t tag = events[static_cast<std::size_t>(i)].data.u64;
      const std::uint32_t mask = events[static_cast<std::size_t>(i)].events;
      if (tag == kWakeTag) {
        std::uint64_t counter = 0;
        (void)!::read(r.completions->wake_fd.get(), &counter,
                      sizeof(counter));
        continue;
      }
      if (tag == kListenTag) {
        if (!stopping) accept_ready(r);
        continue;
      }
      const auto it = r.connections.find(tag);
      if (it == r.connections.end()) continue;  // closed earlier this batch
      Connection& conn = it->second;
      if ((mask & (EPOLLHUP | EPOLLERR)) != 0) {
        close_connection(r, tag);
        continue;
      }
      if ((mask & EPOLLIN) != 0) conn_readable(r, conn);
      // conn_readable may have closed the connection; re-find before write.
      const auto again = r.connections.find(tag);
      if (again != r.connections.end() && (mask & EPOLLOUT) != 0)
        conn_writable(r, again->second);
    }

    drain_outbox(r);

    if (config_.idle_timeout_ms > 0.0 && !r.connections.empty()) {
      const auto now = std::chrono::steady_clock::now();
      std::vector<std::uint64_t> idle;
      // last_activity advances on every recv and every send that makes
      // progress, so this reaps both silent connections and peers that
      // stopped reading while we still hold unflushed output for them.
      for (const auto& [serial, conn] : r.connections)
        if (conn.pending == 0 &&
            ms_since(conn.last_activity, now) > config_.idle_timeout_ms)
          idle.push_back(serial);
      for (const std::uint64_t serial : idle) {
        idle_closed_.add();
        close_connection(r, serial);
      }
    }

    if (stopping) {
      if (listener_open) {
        (void)::epoll_ctl(r.epoll_fd.get(), EPOLL_CTL_DEL, listen_fd_.get(),
                          nullptr);
        listen_fd_.close();
        listener_open = false;
      }
      if (grace_deadline == std::chrono::steady_clock::time_point::max())
        grace_deadline = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(static_cast<long>(
                             std::max(0.0, config_.drain_grace_ms)));
      // Each reactor drains independently: its own dispatched solves,
      // its own outbufs. No cross-reactor barrier is needed because a
      // connection's whole life is confined to one reactor.
      bool in_flight;
      {
        const util::MutexLock lock(r.completions->mutex);
        in_flight = r.completions->outstanding > 0 ||
                    !r.completions->items.empty() ||
                    !r.completions->handoffs.empty();
      }
      const bool flushed = std::all_of(
          r.connections.begin(), r.connections.end(),
          [](const auto& entry) { return entry.second.out_bytes == 0; });
      if ((!in_flight && flushed) ||
          std::chrono::steady_clock::now() >= grace_deadline)
        break;
    }
  }

  connections_active_.sub(r.connections.size());
  r.connections.clear();
}

void Server::accept_ready(Reactor& r) {
  for (;;) {
    const int fd = ::accept4(listen_fd_.get(), nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure; the listener stays armed
    }
    if (connections_active_.load() >= config_.max_connections) {
      ::close(fd);
      continue;
    }
    util::set_tcp_nodelay(fd);
    const std::uint64_t serial = next_serial_.fetch_add(1);
    connections_accepted_.add();
    connections_active_.add();
    const std::size_t target =
        reactors_.size() == 1
            ? 0
            : round_robin_.fetch_add(1, std::memory_order_relaxed) %
                  reactors_.size();
    if (target == r.index) {
      adopt_connection(r, serial, fd);
    } else {
      // Ownership of fd passes to the target reactor's queue; the
      // eventfd write makes it adopt (or, at shutdown, stop() reaps).
      reactors_[target]->completions->hand_off(serial, fd);
    }
  }
}

void Server::adopt_connection(Reactor& r, std::uint64_t serial, int fd) {
  Connection conn;
  conn.fd.reset(fd);
  conn.serial = serial;
  conn.last_activity = std::chrono::steady_clock::now();
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = serial;
  if (::epoll_ctl(r.epoll_fd.get(), EPOLL_CTL_ADD, fd, &ev) != 0) {
    connections_active_.sub();  // conn.fd closes the socket on return
    return;
  }
  r.connections.emplace(serial, std::move(conn));
}

void Server::conn_readable(Reactor& r, Connection& conn) {
  char chunk[kRecvChunk];
  for (;;) {
    const long n = util::recv_some(conn.fd.get(), chunk, sizeof(chunk));
    if (n > 0) {
      conn.inbuf.append(chunk, static_cast<std::size_t>(n));
      conn.last_activity = std::chrono::steady_clock::now();
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // Orderly shutdown or hard error: the peer is gone, so responses
    // still in flight have nowhere to go; drop the connection now.
    close_connection(r, conn.serial);
    return;
  }

  process_inbuf(r, conn);
}

void Server::process_inbuf(Reactor& r, Connection& conn) {
  // read_paused stops frame handling too: frames already buffered wait
  // until the outbuf flushes, at which point conn_writable resumes us.
  while (conn.reading && !conn.read_paused) {
    FrameHeader header;
    try {
      const auto parsed =
          parse_frame_header(conn.inbuf, config_.max_frame_body);
      if (!parsed) break;  // need more bytes
      header = *parsed;
    } catch (const CodecError& e) {
      // Header-level corruption desynchronizes the stream: answer once,
      // stop reading, close after the error frame is flushed.
      protocol_errors_.add();
      conn.reading = false;
      conn.close_after_flush = true;
      queue_output(r, conn, encode_error(e.code(), e.what(), 0));
      return;
    }
    if (conn.inbuf.size() < kHeaderSize + header.body_size) break;
    const std::string_view body =
        std::string_view(conn.inbuf).substr(kHeaderSize, header.body_size);
    handle_frame(r, conn, header, body);
    conn.inbuf.erase(0, kHeaderSize + header.body_size);
  }
}

void Server::handle_frame(Reactor& r, Connection& conn,
                          const FrameHeader& header, std::string_view body) {
  frames_in_.add();
  switch (header.type) {
    case FrameType::solve_request: {
      handle_solve(r, conn, header.request_id, body, obs::TraceContext{},
                   obs::Tracer::now_ns());
      return;
    }
    case FrameType::traced_solve_request: {
      const std::int64_t started_ns = obs::Tracer::now_ns();
      TracedSolveBody split;
      try {
        split = split_traced_solve_request(body);
      } catch (const CodecError& e) {
        protocol_errors_.add();
        queue_output(r, conn,
                     encode_error(e.code(), e.what(), header.request_id));
        return;
      }
      traced_solves_.add();
      // A tracerless server still answers: the prefix is pure metadata,
      // so it is stripped and forgotten rather than refused.
      handle_solve(
          r, conn, header.request_id, split.inner,
          config_.tracer != nullptr ? split.trace : obs::TraceContext{},
          started_ns);
      return;
    }
    case FrameType::trace_dump_request: {
      std::uint32_t max_traces = 0;
      try {
        max_traces = decode_trace_dump_request(body);
      } catch (const CodecError& e) {
        protocol_errors_.add();
        queue_output(r, conn,
                     encode_error(e.code(), e.what(), header.request_id));
        return;
      }
      trace_dumps_.add();
      // A tracerless node answers with an all-zero dump (enabled =
      // false) so medcc_tracectl can sweep mixed clusters uniformly.
      TraceDump dump;
      dump.node_id = config_.node_id;
      if (config_.tracer != nullptr) {
        const obs::TracerSnapshot snap = config_.tracer->snapshot();
        dump.enabled = snap.enabled;
        dump.started = snap.started;
        dump.sampled = snap.sampled;
        dump.completed = snap.completed;
        dump.dropped = snap.dropped;
        dump.stages = snap.stages;
        if (max_traces > 0) dump.traces = config_.tracer->recent(max_traces);
      }
      queue_output(r, conn,
                   encode_trace_dump_response(dump, header.request_id));
      return;
    }
    case FrameType::stats_request: {
      try {
        const StatsFormat format = decode_stats_request(body);
        std::string dump;
        switch (format) {
          case StatsFormat::csv:
            dump = service_.metrics().dump_csv();
            break;
          case StatsFormat::prometheus:
            dump = service_.metrics().dump_prometheus();
            break;
          case StatsFormat::text:
            dump = service_.metrics().dump_text();
            break;
        }
        queue_output(r, conn, encode_stats_response(dump, header.request_id));
      } catch (const CodecError& e) {
        protocol_errors_.add();
        queue_output(r, conn,
                     encode_error(e.code(), e.what(), header.request_id));
      }
      return;
    }
    case FrameType::hello_request: {
      // Version/feature negotiation: grant the highest version both
      // sides speak and the feature intersection. Stateless -- the
      // extension frames police themselves (a v1 server never reaches
      // here; it rejected the frame at parse).
      Hello offer;
      try {
        offer = decode_hello_request(body);
      } catch (const CodecError& e) {
        protocol_errors_.add();
        queue_output(r, conn,
                     encode_error(e.code(), e.what(), header.request_id));
        return;
      }
      hellos_.add();
      Hello granted;
      granted.version = std::min(offer.version, kMaxVersion);
      const std::uint32_t features =
          (config_.repl_apply != nullptr ? kFeatureReplication : 0u) |
          (config_.tracer != nullptr ? kFeatureTracing : 0u);
      granted.features = offer.features & features;
      granted.node_id = config_.node_id;
      queue_output(r, conn, encode_hello_response(granted, header.request_id));
      return;
    }
    case FrameType::repl_insert: {
      ReplRecord record;
      try {
        record = decode_repl_insert(body);
      } catch (const CodecError& e) {
        protocol_errors_.add();
        queue_output(r, conn,
                     encode_error(e.code(), e.what(), header.request_id));
        return;
      }
      repl_records_in_.add();
      ReplAck ack;
      if (config_.repl_apply == nullptr) {
        ack.applied = false;
        ack.error = "replication not enabled on this node";
      } else {
        // Applying is a decode + sharded cache upsert -- cheap enough
        // for the reactor thread (no solver, no disk write).
        const std::int64_t apply_start = obs::Tracer::now_ns();
        ack.applied = config_.repl_apply(record.payload);
        if (config_.tracer != nullptr && record.trace.valid()) {
          // The record rode in on the origin request's trace: account
          // the apply against that id so one trace spans both nodes.
          config_.tracer->record_remote(record.trace,
                                        obs::Stage::repl_apply, apply_start,
                                        obs::Tracer::now_ns(),
                                        config_.node_id);
        }
        if (!ack.applied) ack.error = "record rejected";
      }
      queue_output(r, conn, encode_repl_ack(ack, header.request_id));
      return;
    }
    case FrameType::cluster_status_request: {
      ClusterStatus status;
      if (config_.cluster_status != nullptr) {
        status = config_.cluster_status();
      } else {
        // A server without a cluster layer is a one-replica cluster.
        status.node_id = config_.node_id;
        status.protocol_version = kMaxVersion;
      }
      queue_output(r, conn,
                   encode_cluster_status_response(status, header.request_id));
      return;
    }
    case FrameType::solve_response:
    case FrameType::stats_response:
    case FrameType::error:
    case FrameType::hello_response:
    case FrameType::repl_ack:
    case FrameType::cluster_status_response:
    case FrameType::trace_dump_response: {
      // Server-to-client frames arriving at the server: protocol abuse.
      protocol_errors_.add();
      conn.reading = false;
      conn.close_after_flush = true;
      queue_output(r, conn,
                   encode_error(WireError::unexpected_frame,
                                "client sent a server-side frame type",
                                header.request_id));
      return;
    }
  }
}

void Server::handle_solve(Reactor& r, Connection& conn,
                          std::uint64_t request_id, std::string_view inner,
                          obs::TraceContext trace, std::int64_t started_ns) {
  obs::Tracer* const tracer = config_.tracer;
  if (stopping_.load(std::memory_order_acquire)) {
    service::SchedulingResponse response;
    response.status = service::ResponseStatus::rejected;
    response.reject_reason = service::RejectReason::shutting_down;
    queue_output(r, conn, encode_solve_response(response, request_id));
    return;
  }
  if (wire_cache_ != nullptr) {
    // Zero-copy exact-hit fast path: a verbatim duplicate of a
    // previously answered request is served from the memoized frame
    // without decoding the body or touching the service. Traced frames
    // key on the inner bytes, so traced and untraced duplicates share
    // one memo entry and one set of response bytes.
    if (const auto frame = wire_cache_->find(inner)) {
      fastpath_hits_.add();
      service_.metrics().note_wire_fastpath(true);
      if (tracer != nullptr && trace.valid()) {
        // Single-span, allocation-free accounting: the hit's duration
        // is already known, so no span buffer is opened (the <5%
        // fast-path budget, bench/net_throughput --trace-overhead).
        tracer->record_span(trace, obs::Stage::wire_fastpath, started_ns,
                            obs::Tracer::now_ns(), config_.node_id);
      }
      queue_cached_frame(r, conn, *frame, request_id);
      return;
    }
    service_.metrics().note_wire_fastpath(false);
  }
  if (config_.max_inflight_frames > 0 &&
      conn.pending >= config_.max_inflight_frames) {
    // Connection-level flow control: shed THIS request with a
    // structured reject rather than queueing unbounded worker-side
    // state for one over-eager pipeliner. The client sees which
    // request was shed (echoed id) and can back off and resend.
    flow_control_rejects_.add();
    service::SchedulingResponse response;
    response.status = service::ResponseStatus::rejected;
    response.reject_reason = service::RejectReason::flow_control;
    service_.metrics().count_response(response);
    queue_output(r, conn, encode_solve_response(response, request_id));
    return;
  }
  service::SchedulingRequest request;
  try {
    request = decode_solve_request(inner);
  } catch (const CodecError& e) {
    // Bad body, sound framing: report and keep the stream alive.
    protocol_errors_.add();
    queue_output(r, conn, encode_error(e.code(), e.what(), request_id));
    return;
  }
  if (tracer != nullptr && trace.valid()) {
    request.trace = trace;
    request.trace_buffer = tracer->open(trace);
    tracer->record(request.trace_buffer, obs::Stage::decode, started_ns,
                   obs::Tracer::now_ns());
  }
  const std::uint64_t serial = conn.serial;
  const std::uint64_t id = request_id;
  // Copied out before submit_async so the lambda captures never race
  // the indeterminately sequenced std::move(request) argument.
  const obs::TraceContext trace_ctx = request.trace;
  std::shared_ptr<obs::Trace> trace_buffer = request.trace_buffer;
  {
    const util::MutexLock lock(r.completions->mutex);
    ++r.completions->outstanding;
  }
  ++conn.pending;
  // The callback captures the shared CompletionQueue, never `this`:
  // a solve that outlives stop()'s grace period (and possibly the
  // Server) still posts into live memory and is merely dropped. The
  // WireCache is service-owned, so `wire` outlives the callback too,
  // and the tracer outlives the service by the ServerConfig contract.
  service_.submit_async(
      std::move(request),
      [queue = r.completions, wire = wire_cache_, serial, id,
       key = wire_cache_ != nullptr ? std::string(inner) : std::string(),
       tracer, trace_ctx, buffer = std::move(trace_buffer), started_ns,
       origin = config_.node_id](service::SchedulingResponse response) {
        std::string bytes;
        try {
          bytes = encode_solve_response(response, id);
        } catch (...) {
          // Encoding cannot fail short of OOM; drop rather than die.
        }
        if (wire != nullptr && response.ok()) {
          // Memoize the hit-count-independent template: id 0,
          // timings zeroed, outcome pinned to hit_exact -- every
          // other field is a deterministic function of the request
          // bytes, so the entry never needs invalidation. Inserted
          // before post() so a client that saw this response can
          // rely on its verbatim duplicate hitting the fast path.
          response.queue_delay_ms = 0.0;
          response.solve_ms = 0.0;
          response.cache = service::CacheOutcome::hit_exact;
          try {
            wire->insert(key, encode_solve_response(response, 0));
          } catch (...) {
            // Memoization is an optimization; never fail the reply.
          }
        }
        if (tracer != nullptr && trace_ctx.valid()) {
          // The edge-to-edge request span closes here, where the
          // response bytes exist; finish() then decides retention.
          tracer->record(buffer, obs::Stage::request, started_ns,
                         obs::Tracer::now_ns());
          tracer->finish(buffer, origin);
        }
        queue->post(serial, std::move(bytes));
      });
}

std::string& Server::output_chunk(Reactor& r, Connection& conn,
                                  std::size_t need) {
  if (!conn.outq.empty()) {
    std::string& tail = conn.outq.back();
    if (tail.capacity() - tail.size() >= need) return tail;
  }
  conn.outq.push_back(r.pool.acquire());
  std::string& fresh = conn.outq.back();
  if (fresh.capacity() < need) fresh.reserve(need);
  return fresh;
}

void Server::queue_output(Reactor& r, Connection& conn, std::string bytes) {
  frames_out_.add();
  conn.out_bytes += bytes.size();
  if (bytes.size() >= r.pool.buffer_capacity()) {
    // An oversized frame becomes its own chunk: moving the string in is
    // cheaper than copying it into several pooled chunks.
    conn.outq.push_back(std::move(bytes));
  } else {
    output_chunk(r, conn, bytes.size()).append(bytes);
  }
  after_output(r, conn);
}

void Server::queue_cached_frame(Reactor& r, Connection& conn,
                                const std::string& frame, std::uint64_t id) {
  frames_out_.add();
  // The frame lands contiguously in one chunk so the request id (a
  // little-endian u64 at byte 8 of the header) can be patched in place.
  std::string& chunk = output_chunk(r, conn, frame.size());
  const std::size_t at = chunk.size();
  chunk.append(frame);
  for (std::size_t i = 0; i < 8; ++i)
    chunk[at + 8 + i] = static_cast<char>((id >> (8 * i)) & 0xffu);
  conn.out_bytes += frame.size();
  after_output(r, conn);
}

void Server::after_output(Reactor& r, Connection& conn) {
  bool rearm = false;
  if (!conn.want_write) {
    conn.want_write = true;
    rearm = true;
  }
  if (config_.max_conn_outbuf > 0 && !conn.read_paused &&
      conn.out_bytes > config_.max_conn_outbuf) {
    conn.read_paused = true;
    backpressure_paused_.add();
    rearm = true;
  }
  if (rearm) update_epoll(r, conn);
}

void Server::update_epoll(Reactor& r, Connection& conn) {
  epoll_event ev{};
  ev.events = ((conn.reading && !conn.read_paused) ? EPOLLIN : 0u) |
              (conn.want_write ? EPOLLOUT : 0u);
  ev.data.u64 = conn.serial;
  (void)::epoll_ctl(r.epoll_fd.get(), EPOLL_CTL_MOD, conn.fd.get(), &ev);
}

void Server::advance_outq(Reactor& r, Connection& conn, std::size_t sent) {
  conn.out_bytes -= sent;
  while (sent > 0) {
    std::string& front = conn.outq.front();
    const std::size_t avail = front.size() - conn.out_head;
    if (sent < avail) {
      conn.out_head += sent;
      return;
    }
    sent -= avail;
    r.pool.release(std::move(front));
    conn.outq.pop_front();
    conn.out_head = 0;
  }
}

void Server::conn_writable(Reactor& r, Connection& conn) {
  while (conn.out_bytes > 0) {
    // Gather the unflushed chunks into one vectored send.
    std::array<iovec, kMaxWriteIov> iov{};
    std::size_t n_iov = 0;
    std::size_t head = conn.out_head;
    for (std::string& chunk : conn.outq) {
      if (n_iov == iov.size()) break;
      if (chunk.size() > head) {
        iov[n_iov].iov_base = chunk.data() + head;
        iov[n_iov].iov_len = chunk.size() - head;
        ++n_iov;
      }
      head = 0;
    }
    msghdr msg{};
    msg.msg_iov = iov.data();
    msg.msg_iovlen = n_iov;
    const ssize_t n = ::sendmsg(conn.fd.get(), &msg, MSG_NOSIGNAL);
    if (n > 0) {
      advance_outq(r, conn, static_cast<std::size_t>(n));
      conn.last_activity = std::chrono::steady_clock::now();
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    close_connection(r, conn.serial);
    return;
  }
  conn.want_write = false;
  if (conn.close_after_flush) {
    close_connection(r, conn.serial);
    return;
  }
  const bool resume = conn.read_paused;
  conn.read_paused = false;
  update_epoll(r, conn);
  // Level-triggered EPOLLIN will not re-fire for bytes we already hold,
  // so frames buffered while paused are handled here.
  if (resume) process_inbuf(r, conn);
}

void Server::close_connection(Reactor& r, std::uint64_t serial) {
  const auto it = r.connections.find(serial);
  if (it == r.connections.end()) return;
  (void)::epoll_ctl(r.epoll_fd.get(), EPOLL_CTL_DEL, it->second.fd.get(),
                    nullptr);
  for (std::string& chunk : it->second.outq) r.pool.release(std::move(chunk));
  r.connections.erase(it);
  connections_active_.sub();
}

void Server::drain_outbox(Reactor& r) {
  std::vector<std::pair<std::uint64_t, std::string>> ready;
  std::vector<std::pair<std::uint64_t, int>> adopted;
  {
    const util::MutexLock lock(r.completions->mutex);
    ready.swap(r.completions->items);
    adopted.swap(r.completions->handoffs);
  }
  // Adopt handed-off sockets first: a response can only be for a
  // connection this reactor already owns, but ordering it this way
  // keeps the invariant obvious.
  for (const auto& [serial, fd] : adopted) adopt_connection(r, serial, fd);
  for (auto& [serial, bytes] : ready) {
    const auto it = r.connections.find(serial);
    if (it == r.connections.end()) {
      dropped_responses_.add();
      continue;
    }
    if (it->second.pending > 0) --it->second.pending;
    queue_output(r, it->second, std::move(bytes));
  }
}

}  // namespace medcc::net
