#include "net/server.hpp"

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <string_view>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/log.hpp"

namespace medcc::net {

namespace {

// epoll user-data tags; connection serials start above the reserved ones.
constexpr std::uint64_t kWakeTag = 0;
constexpr std::uint64_t kListenTag = 1;
constexpr std::uint64_t kFirstSerial = 2;

constexpr std::size_t kRecvChunk = 64 * 1024;

double ms_since(std::chrono::steady_clock::time_point then,
                std::chrono::steady_clock::time_point now) {
  return std::chrono::duration<double, std::milli>(now - then).count();
}

}  // namespace

Server::CompletionQueue::CompletionQueue()
    : wake_fd(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC)) {
  if (!wake_fd) throw NetError("server: eventfd failed");
}

void Server::CompletionQueue::post(std::uint64_t serial, std::string bytes) {
  {
    const util::MutexLock lock(mutex);
    if (!bytes.empty()) items.emplace_back(serial, std::move(bytes));
    --outstanding;
  }
  // The eventfd lives as long as this queue, so this write is safe even
  // after the Server (and its epoll) are gone; it is then simply unread.
  const std::uint64_t one = 1;
  (void)!::write(wake_fd.get(), &one, sizeof(one));
}

Server::Server(service::SchedulingService& service, ServerConfig config)
    : service_(service), config_(std::move(config)) {
  listen_fd_.reset(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                            0));
  if (!listen_fd_) throw NetError("server: socket() failed");
  int one = 1;
  (void)::setsockopt(listen_fd_.get(), SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1)
    throw NetError("server: invalid bind address " + config_.bind_address);
  if (::bind(listen_fd_.get(), reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0)
    throw NetError("server: bind to " + config_.bind_address + ":" +
                   std::to_string(config_.port) + " failed: " +
                   std::strerror(errno));
  if (::listen(listen_fd_.get(), config_.backlog) != 0)
    throw NetError("server: listen failed");

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_.get(), reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0)
    throw NetError("server: getsockname failed");
  port_ = ntohs(bound.sin_port);

  epoll_fd_.reset(::epoll_create1(EPOLL_CLOEXEC));
  if (!epoll_fd_) throw NetError("server: epoll_create1 failed");
  completions_ = std::make_shared<CompletionQueue>();

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeTag;
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD,
                  completions_->wake_fd.get(), &ev) != 0)
    throw NetError("server: epoll_ctl(wake) failed");
  ev.events = EPOLLIN;
  ev.data.u64 = kListenTag;
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, listen_fd_.get(), &ev) != 0)
    throw NetError("server: epoll_ctl(listen) failed");

  next_serial_ = kFirstSerial;
  io_ = std::thread([this] { io_loop(); });
}

Server::~Server() { stop(); }

void Server::stop() {
  if (stopped_.exchange(true)) return;
  stopping_.store(true, std::memory_order_release);
  wake();
  if (io_.joinable()) io_.join();
}

void Server::wake() {
  const std::uint64_t one = 1;
  // A full eventfd counter still wakes the loop; ignore short writes.
  (void)!::write(completions_->wake_fd.get(), &one, sizeof(one));
}

Server::Counters Server::counters() const {
  Counters c;
  c.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  c.connections_active = connections_active_.load(std::memory_order_relaxed);
  c.frames_in = frames_in_.load(std::memory_order_relaxed);
  c.frames_out = frames_out_.load(std::memory_order_relaxed);
  c.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  c.idle_closed = idle_closed_.load(std::memory_order_relaxed);
  c.dropped_responses = dropped_responses_.load(std::memory_order_relaxed);
  c.backpressure_paused =
      backpressure_paused_.load(std::memory_order_relaxed);
  return c;
}

void Server::io_loop() {
  bool listener_open = true;
  auto grace_deadline = std::chrono::steady_clock::time_point::max();
  std::array<epoll_event, 64> events{};

  for (;;) {
    const bool stopping = stopping_.load(std::memory_order_acquire);

    int timeout_ms = -1;
    if (stopping) {
      timeout_ms = 10;
    } else if (config_.idle_timeout_ms > 0.0) {
      timeout_ms = static_cast<int>(
          std::clamp(config_.idle_timeout_ms / 2.0, 5.0, 250.0));
    }

    const int n = ::epoll_wait(epoll_fd_.get(), events.data(),
                               static_cast<int>(events.size()), timeout_ms);
    if (n < 0 && errno != EINTR) {
      util::log_error("net server: epoll_wait failed: ", std::strerror(errno));
      break;
    }

    for (int i = 0; i < std::max(n, 0); ++i) {
      const std::uint64_t tag = events[static_cast<std::size_t>(i)].data.u64;
      const std::uint32_t mask = events[static_cast<std::size_t>(i)].events;
      if (tag == kWakeTag) {
        std::uint64_t counter = 0;
        (void)!::read(completions_->wake_fd.get(), &counter, sizeof(counter));
        continue;
      }
      if (tag == kListenTag) {
        if (!stopping) accept_ready();
        continue;
      }
      const auto it = connections_.find(tag);
      if (it == connections_.end()) continue;  // closed earlier this batch
      Connection& conn = it->second;
      if ((mask & (EPOLLHUP | EPOLLERR)) != 0) {
        close_connection(tag);
        continue;
      }
      if ((mask & EPOLLIN) != 0) conn_readable(conn);
      // conn_readable may have closed the connection; re-find before write.
      const auto again = connections_.find(tag);
      if (again != connections_.end() && (mask & EPOLLOUT) != 0)
        conn_writable(again->second);
    }

    drain_outbox();

    if (config_.idle_timeout_ms > 0.0 && !connections_.empty()) {
      const auto now = std::chrono::steady_clock::now();
      std::vector<std::uint64_t> idle;
      // last_activity advances on every recv and every send that makes
      // progress, so this reaps both silent connections and peers that
      // stopped reading while we still hold unflushed output for them.
      for (const auto& [serial, conn] : connections_)
        if (conn.pending == 0 &&
            ms_since(conn.last_activity, now) > config_.idle_timeout_ms)
          idle.push_back(serial);
      for (const std::uint64_t serial : idle) {
        idle_closed_.fetch_add(1, std::memory_order_relaxed);
        close_connection(serial);
      }
    }

    if (stopping) {
      if (listener_open) {
        (void)::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, listen_fd_.get(),
                          nullptr);
        listen_fd_.close();
        listener_open = false;
        grace_deadline = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(static_cast<long>(
                             std::max(0.0, config_.drain_grace_ms)));
      }
      bool in_flight;
      {
        const util::MutexLock lock(completions_->mutex);
        in_flight =
            completions_->outstanding > 0 || !completions_->items.empty();
      }
      const bool flushed = std::all_of(
          connections_.begin(), connections_.end(),
          [](const auto& entry) { return entry.second.outbuf.empty(); });
      if ((!in_flight && flushed) ||
          std::chrono::steady_clock::now() >= grace_deadline)
        break;
    }
  }

  connections_.clear();
  connections_active_.store(0, std::memory_order_relaxed);
}

void Server::accept_ready() {
  for (;;) {
    const int fd = ::accept4(listen_fd_.get(), nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure; the listener stays armed
    }
    if (connections_.size() >= config_.max_connections) {
      ::close(fd);
      continue;
    }
    util::set_tcp_nodelay(fd);
    const std::uint64_t serial = next_serial_++;
    Connection conn;
    conn.fd.reset(fd);
    conn.serial = serial;
    conn.last_activity = std::chrono::steady_clock::now();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = serial;
    if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, fd, &ev) != 0) continue;
    connections_.emplace(serial, std::move(conn));
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    connections_active_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::conn_readable(Connection& conn) {
  char chunk[kRecvChunk];
  for (;;) {
    const long n = util::recv_some(conn.fd.get(), chunk, sizeof(chunk));
    if (n > 0) {
      conn.inbuf.append(chunk, static_cast<std::size_t>(n));
      conn.last_activity = std::chrono::steady_clock::now();
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // Orderly shutdown or hard error: the peer is gone, so responses
    // still in flight have nowhere to go; drop the connection now.
    close_connection(conn.serial);
    return;
  }

  process_inbuf(conn);
}

void Server::process_inbuf(Connection& conn) {
  // read_paused stops frame handling too: frames already buffered wait
  // until the outbuf flushes, at which point conn_writable resumes us.
  while (conn.reading && !conn.read_paused) {
    FrameHeader header;
    try {
      const auto parsed =
          parse_frame_header(conn.inbuf, config_.max_frame_body);
      if (!parsed) break;  // need more bytes
      header = *parsed;
    } catch (const CodecError& e) {
      // Header-level corruption desynchronizes the stream: answer once,
      // stop reading, close after the error frame is flushed.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      conn.reading = false;
      conn.close_after_flush = true;
      queue_output(conn, encode_error(e.code(), e.what(), 0));
      return;
    }
    if (conn.inbuf.size() < kHeaderSize + header.body_size) break;
    const std::string_view body =
        std::string_view(conn.inbuf).substr(kHeaderSize, header.body_size);
    handle_frame(conn, header, body);
    conn.inbuf.erase(0, kHeaderSize + header.body_size);
  }
}

void Server::handle_frame(Connection& conn, const FrameHeader& header,
                          std::string_view body) {
  frames_in_.fetch_add(1, std::memory_order_relaxed);
  switch (header.type) {
    case FrameType::solve_request: {
      if (stopping_.load(std::memory_order_acquire)) {
        service::SchedulingResponse response;
        response.status = service::ResponseStatus::rejected;
        response.reject_reason = service::RejectReason::shutting_down;
        queue_output(conn, encode_solve_response(response, header.request_id));
        return;
      }
      service::SchedulingRequest request;
      try {
        request = decode_solve_request(body);
      } catch (const CodecError& e) {
        // Bad body, sound framing: report and keep the stream alive.
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        queue_output(conn,
                     encode_error(e.code(), e.what(), header.request_id));
        return;
      }
      const std::uint64_t serial = conn.serial;
      const std::uint64_t id = header.request_id;
      {
        const util::MutexLock lock(completions_->mutex);
        ++completions_->outstanding;
      }
      ++conn.pending;
      // The callback captures the shared CompletionQueue, never `this`:
      // a solve that outlives stop()'s grace period (and possibly the
      // Server) still posts into live memory and is merely dropped.
      service_.submit_async(
          std::move(request),
          [queue = completions_, serial,
           id](service::SchedulingResponse response) {
            std::string bytes;
            try {
              bytes = encode_solve_response(response, id);
            } catch (...) {
              // Encoding cannot fail short of OOM; drop rather than die.
            }
            queue->post(serial, std::move(bytes));
          });
      return;
    }
    case FrameType::stats_request: {
      try {
        const StatsFormat format = decode_stats_request(body);
        const std::string dump = format == StatsFormat::csv
                                     ? service_.metrics().dump_csv()
                                     : service_.metrics().dump_text();
        queue_output(conn, encode_stats_response(dump, header.request_id));
      } catch (const CodecError& e) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        queue_output(conn,
                     encode_error(e.code(), e.what(), header.request_id));
      }
      return;
    }
    case FrameType::solve_response:
    case FrameType::stats_response:
    case FrameType::error: {
      // Server-to-client frames arriving at the server: protocol abuse.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      conn.reading = false;
      conn.close_after_flush = true;
      queue_output(conn,
                   encode_error(WireError::unexpected_frame,
                                "client sent a server-side frame type",
                                header.request_id));
      return;
    }
  }
}

void Server::queue_output(Connection& conn, std::string bytes) {
  conn.outbuf += bytes;
  frames_out_.fetch_add(1, std::memory_order_relaxed);
  bool rearm = false;
  if (!conn.want_write) {
    conn.want_write = true;
    rearm = true;
  }
  if (config_.max_conn_outbuf > 0 && !conn.read_paused &&
      conn.outbuf.size() - conn.out_offset > config_.max_conn_outbuf) {
    conn.read_paused = true;
    backpressure_paused_.fetch_add(1, std::memory_order_relaxed);
    rearm = true;
  }
  if (rearm) update_epoll(conn);
}

void Server::update_epoll(Connection& conn) {
  epoll_event ev{};
  ev.events = ((conn.reading && !conn.read_paused) ? EPOLLIN : 0u) |
              (conn.want_write ? EPOLLOUT : 0u);
  ev.data.u64 = conn.serial;
  (void)::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, conn.fd.get(), &ev);
}

void Server::conn_writable(Connection& conn) {
  while (conn.out_offset < conn.outbuf.size()) {
    const ssize_t n =
        ::send(conn.fd.get(), conn.outbuf.data() + conn.out_offset,
               conn.outbuf.size() - conn.out_offset, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_offset += static_cast<std::size_t>(n);
      conn.last_activity = std::chrono::steady_clock::now();
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    close_connection(conn.serial);
    return;
  }
  conn.outbuf.clear();
  conn.out_offset = 0;
  conn.want_write = false;
  if (conn.close_after_flush) {
    close_connection(conn.serial);
    return;
  }
  const bool resume = conn.read_paused;
  conn.read_paused = false;
  update_epoll(conn);
  // Level-triggered EPOLLIN will not re-fire for bytes we already hold,
  // so frames buffered while paused are handled here.
  if (resume) process_inbuf(conn);
}

void Server::close_connection(std::uint64_t serial) {
  const auto it = connections_.find(serial);
  if (it == connections_.end()) return;
  (void)::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, it->second.fd.get(),
                    nullptr);
  connections_.erase(it);
  connections_active_.fetch_sub(1, std::memory_order_relaxed);
}

void Server::drain_outbox() {
  std::vector<std::pair<std::uint64_t, std::string>> ready;
  {
    const util::MutexLock lock(completions_->mutex);
    ready.swap(completions_->items);
  }
  for (auto& [serial, bytes] : ready) {
    const auto it = connections_.find(serial);
    if (it == connections_.end()) {
      dropped_responses_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (it->second.pending > 0) --it->second.pending;
    queue_output(it->second, std::move(bytes));
  }
}

}  // namespace medcc::net
