#include "net/codec.hpp"

#include <bit>
#include <memory>
#include <utility>
#include <vector>

#include "sched/instance.hpp"
#include "workflow/workflow.hpp"

namespace medcc::net {

namespace {

// Structural ceilings, far above every workload in the repo but small
// enough that a hostile count can never drive a pathological allocation
// (expect_fits additionally ties counts to the bytes actually present).
constexpr std::size_t kMaxString = 1u << 20;
constexpr std::uint64_t kMaxModules = 1u << 20;
constexpr std::uint64_t kMaxTypes = 1u << 12;
constexpr std::uint64_t kMaxEdges = 1u << 22;

[[noreturn]] void fail(WireError code, const std::string& what) {
  throw CodecError(code, what);
}

}  // namespace

const char* to_string(WireError code) {
  switch (code) {
    case WireError::truncated: return "truncated";
    case WireError::bad_magic: return "bad_magic";
    case WireError::bad_version: return "bad_version";
    case WireError::bad_frame_type: return "bad_frame_type";
    case WireError::oversized_frame: return "oversized_frame";
    case WireError::bad_body: return "bad_body";
    case WireError::trailing_bytes: return "trailing_bytes";
    case WireError::limit_exceeded: return "limit_exceeded";
    case WireError::unexpected_frame: return "unexpected_frame";
    case WireError::shutting_down: return "shutting_down";
  }
  return "unknown";
}

// -- primitives -----------------------------------------------------------

void WireWriter::u8(std::uint8_t v) {
  out_.push_back(static_cast<char>(v));
}

void WireWriter::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v));
  u8(static_cast<std::uint8_t>(v >> 8));
}

void WireWriter::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v));
  u16(static_cast<std::uint16_t>(v >> 16));
}

void WireWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void WireWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void WireWriter::str(std::string_view s) {
  MEDCC_EXPECTS(s.size() <= kMaxString);
  u32(static_cast<std::uint32_t>(s.size()));
  out_.append(s.data(), s.size());
}

std::uint8_t WireReader::u8() {
  if (remaining() < 1) fail(WireError::truncated, "wire: truncated u8");
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint16_t WireReader::u16() {
  const std::uint16_t lo = u8();
  const std::uint16_t hi = u8();
  return static_cast<std::uint16_t>(lo | (hi << 8));
}

std::uint32_t WireReader::u32() {
  const std::uint32_t lo = u16();
  const std::uint32_t hi = u16();
  return lo | (hi << 16);
}

std::uint64_t WireReader::u64() {
  const std::uint64_t lo = u32();
  const std::uint64_t hi = u32();
  return lo | (hi << 32);
}

double WireReader::f64() { return std::bit_cast<double>(u64()); }

std::string WireReader::str(std::size_t max_len) {
  const std::uint32_t len = u32();
  if (len > max_len)
    fail(WireError::limit_exceeded, "wire: string exceeds limit");
  if (len > remaining()) fail(WireError::truncated, "wire: truncated string");
  std::string out(data_.substr(pos_, len));
  pos_ += len;
  return out;
}

void WireReader::expect_done() const {
  if (!done())
    fail(WireError::trailing_bytes, "wire: trailing bytes after message");
}

void WireReader::expect_fits(std::uint64_t count,
                             std::size_t min_bytes_each) const {
  if (count > remaining() / min_bytes_each)
    fail(WireError::limit_exceeded,
         "wire: element count exceeds the bytes present");
}

// -- framing --------------------------------------------------------------

namespace {

/// The header version each frame type must carry: the legacy exchange
/// stays byte-identical to protocol 1, the cluster extension is
/// stamped 2 so pre-v2 peers reject it with a clean bad_version.
std::uint16_t version_for(FrameType type) {
  return static_cast<std::uint16_t>(type) <=
                 static_cast<std::uint16_t>(FrameType::error)
             ? kVersion
             : kVersion2;
}

}  // namespace

std::optional<FrameHeader> parse_frame_header(std::string_view buffer,
                                              std::size_t max_body) {
  if (buffer.size() < kHeaderSize) return std::nullopt;
  WireReader reader(buffer.substr(0, kHeaderSize));
  const std::uint32_t magic = reader.u32();
  if (magic != kMagic) fail(WireError::bad_magic, "wire: bad frame magic");
  const std::uint16_t version = reader.u16();
  if (version < kVersion || version > kMaxVersion)
    fail(WireError::bad_version,
         "wire: unsupported protocol version " + std::to_string(version));
  const std::uint16_t raw_type = reader.u16();
  const auto last_type =
      static_cast<std::uint16_t>(FrameType::trace_dump_response);
  if (raw_type < static_cast<std::uint16_t>(FrameType::solve_request) ||
      raw_type > last_type)
    fail(WireError::bad_frame_type,
         "wire: unknown frame type " + std::to_string(raw_type));
  // A type must travel under its own version: a v2 header on a legacy
  // frame (or vice versa) is as malformed as an unknown version.
  if (version != version_for(static_cast<FrameType>(raw_type)))
    fail(WireError::bad_version,
         "wire: frame type " + std::to_string(raw_type) +
             " does not belong to protocol version " +
             std::to_string(version));
  FrameHeader header;
  header.type = static_cast<FrameType>(raw_type);
  header.version = version;
  header.request_id = reader.u64();
  header.body_size = reader.u32();
  if (header.body_size > max_body)
    fail(WireError::oversized_frame,
         "wire: body length " + std::to_string(header.body_size) +
             " exceeds the frame limit");
  return header;
}

std::string encode_frame(FrameType type, std::uint64_t request_id,
                         std::string_view body) {
  MEDCC_EXPECTS(body.size() <= kDefaultMaxBody);
  WireWriter writer;
  writer.u32(kMagic);
  writer.u16(version_for(type));
  writer.u16(static_cast<std::uint16_t>(type));
  writer.u64(request_id);
  writer.u32(static_cast<std::uint32_t>(body.size()));
  std::string out = writer.take();
  out.append(body.data(), body.size());
  return out;
}

// -- solve request --------------------------------------------------------

namespace {

void encode_instance(WireWriter& writer, const sched::Instance& instance) {
  const auto& wf = instance.workflow();
  const auto& graph = wf.graph();
  const auto& catalog = instance.catalog();

  writer.f64(instance.billing().quantum());
  writer.f64(instance.network().bandwidth);
  writer.f64(instance.network().link_delay);
  writer.f64(instance.network().transfer_cost_rate);

  writer.u32(static_cast<std::uint32_t>(catalog.size()));
  for (const auto& type : catalog.types()) {
    writer.str(type.name);
    writer.f64(type.processing_power);
    writer.f64(type.cost_rate);
  }

  writer.u32(static_cast<std::uint32_t>(wf.module_count()));
  for (workflow::NodeId i = 0; i < wf.module_count(); ++i) {
    const auto& mod = wf.module(i);
    writer.str(mod.name);
    writer.u8(mod.is_fixed() ? 1 : 0);
    writer.f64(mod.is_fixed() ? *mod.fixed_time : mod.workload);
  }

  writer.u32(static_cast<std::uint32_t>(graph.edge_count()));
  for (dag::EdgeId e = 0; e < graph.edge_count(); ++e) {
    const auto& edge = graph.edge(e);
    writer.u32(static_cast<std::uint32_t>(edge.src));
    writer.u32(static_cast<std::uint32_t>(edge.dst));
    writer.f64(wf.data_size(e));
  }

  // The exact TE rows of the computing modules (ascending module id):
  // decoding rebuilds through Instance::from_matrix, so measured-matrix
  // and analytic-model instances round-trip identically.
  const auto computing = wf.computing_modules();
  writer.u32(static_cast<std::uint32_t>(computing.size()));
  writer.u32(static_cast<std::uint32_t>(catalog.size()));
  for (const workflow::NodeId i : computing)
    for (std::size_t j = 0; j < catalog.size(); ++j)
      writer.f64(instance.time(i, j));
}

std::shared_ptr<const sched::Instance> decode_instance(WireReader& reader) {
  const double quantum = reader.f64();
  cloud::NetworkModel network;
  network.bandwidth = reader.f64();
  network.link_delay = reader.f64();
  network.transfer_cost_rate = reader.f64();

  const std::uint32_t type_count = reader.u32();
  if (type_count > kMaxTypes)
    fail(WireError::limit_exceeded, "wire: too many VM types");
  reader.expect_fits(type_count, /*name len*/ 4 + 2 * 8);
  std::vector<cloud::VmType> types;
  types.reserve(type_count);
  for (std::uint32_t j = 0; j < type_count; ++j) {
    cloud::VmType type;
    type.name = reader.str(kMaxString);
    type.processing_power = reader.f64();
    type.cost_rate = reader.f64();
    types.push_back(std::move(type));
  }

  const std::uint32_t module_count = reader.u32();
  if (module_count > kMaxModules)
    fail(WireError::limit_exceeded, "wire: too many modules");
  reader.expect_fits(module_count, 4 + 1 + 8);

  // Workflow/billing validation failures (cycles, negative workloads,
  // duplicate edges, bad quantum, ...) are recoverable medcc::Errors
  // raised by the model classes themselves; surface every one of them as
  // the protocol's structured bad_body fault. CodecErrors (which also
  // derive from Error) keep their own taxonomy.
  try {
    workflow::Workflow wf;
    std::size_t computing_count = 0;
    for (std::uint32_t i = 0; i < module_count; ++i) {
      std::string name = reader.str(kMaxString);
      const std::uint8_t kind = reader.u8();
      const double value = reader.f64();
      if (kind > 1) fail(WireError::bad_body, "wire: unknown module kind");
      if (kind == 1) {
        (void)wf.add_fixed_module(std::move(name), value);
      } else {
        (void)wf.add_module(std::move(name), value);
        ++computing_count;
      }
    }

    const std::uint32_t edge_count = reader.u32();
    if (edge_count > kMaxEdges)
      fail(WireError::limit_exceeded, "wire: too many edges");
    reader.expect_fits(edge_count, 4 + 4 + 8);
    for (std::uint32_t e = 0; e < edge_count; ++e) {
      const std::uint32_t src = reader.u32();
      const std::uint32_t dst = reader.u32();
      const double data_size = reader.f64();
      if (src >= module_count || dst >= module_count || src == dst)
        fail(WireError::bad_body, "wire: edge endpoint out of range");
      (void)wf.add_dependency(src, dst, data_size);
    }

    const std::uint32_t rows = reader.u32();
    const std::uint32_t cols = reader.u32();
    if (rows != computing_count || cols != type_count)
      fail(WireError::bad_body, "wire: time-matrix shape mismatch");
    reader.expect_fits(static_cast<std::uint64_t>(rows) * cols, 8);
    std::vector<std::vector<double>> times(rows, std::vector<double>(cols));
    for (auto& row : times)
      for (double& cell : row) cell = reader.f64();

    return std::make_shared<const sched::Instance>(sched::Instance::from_matrix(
        std::move(wf), cloud::VmCatalog(std::move(types)), times,
        cloud::BillingPolicy(quantum), network));
  } catch (const CodecError&) {
    throw;
  } catch (const Error& e) {
    fail(WireError::bad_body, std::string("wire: invalid instance: ") +
                                  e.what());
  }
}

}  // namespace

std::string encode_solve_request(const service::SchedulingRequest& request,
                                 std::uint64_t request_id) {
  MEDCC_EXPECTS(request.instance != nullptr);
  WireWriter writer;
  writer.f64(request.budget);
  writer.f64(request.deadline_ms);
  writer.str(request.solver);
  writer.str(request.config);
  writer.str(request.tenant);
  encode_instance(writer, *request.instance);
  return encode_frame(FrameType::solve_request, request_id, writer.bytes());
}

service::SchedulingRequest decode_solve_request(std::string_view body) {
  WireReader reader(body);
  service::SchedulingRequest request;
  request.budget = reader.f64();
  request.deadline_ms = reader.f64();
  request.solver = reader.str(kMaxString);
  request.config = reader.str(kMaxString);
  request.tenant = reader.str(kMaxString);
  request.instance = decode_instance(reader);
  reader.expect_done();
  return request;
}

// -- trace context / traced solve ------------------------------------------

void append_trace_context(std::string& out, const obs::TraceContext& context) {
  WireWriter writer;
  writer.u64(context.id.hi);
  writer.u64(context.id.lo);
  writer.u8(context.sampled ? 1 : 0);
  out.append(writer.bytes());
}

obs::TraceContext read_trace_context(WireReader& reader) {
  obs::TraceContext context;
  context.id.hi = reader.u64();
  context.id.lo = reader.u64();
  const std::uint8_t flags = reader.u8();
  if ((flags & ~1u) != 0)
    fail(WireError::bad_body, "wire: unknown trace-context flags");
  context.sampled = (flags & 1u) != 0;
  return context;
}

std::string encode_traced_solve_request(
    const service::SchedulingRequest& request,
    const obs::TraceContext& context, std::uint64_t request_id) {
  // Body = 17-byte trace prefix + a verbatim solve_request body, so
  // servers can key the wire cache on (and decoders reuse) the inner
  // bytes unchanged.
  const std::string inner = encode_solve_request(request, request_id);
  std::string body;
  body.reserve(kTraceContextSize + inner.size() - kHeaderSize);
  append_trace_context(body, context);
  body.append(inner, kHeaderSize, inner.size() - kHeaderSize);
  return encode_frame(FrameType::traced_solve_request, request_id, body);
}

TracedSolveBody split_traced_solve_request(std::string_view body) {
  if (body.size() < kTraceContextSize)
    fail(WireError::truncated, "wire: truncated trace context");
  WireReader reader(body.substr(0, kTraceContextSize));
  TracedSolveBody split;
  split.trace = read_trace_context(reader);
  split.inner = body.substr(kTraceContextSize);
  return split;
}

// -- solve response -------------------------------------------------------

std::string encode_solve_response(const service::SchedulingResponse& response,
                                  std::uint64_t request_id) {
  WireWriter writer;
  writer.u8(static_cast<std::uint8_t>(response.status));
  writer.u8(static_cast<std::uint8_t>(response.reject_reason));
  writer.u8(static_cast<std::uint8_t>(response.cache));
  writer.u8(0);  // reserved
  writer.str(response.solver);
  writer.str(response.error);
  writer.u64(response.result.iterations);
  writer.f64(response.result.eval.med);
  writer.f64(response.result.eval.cost);
  writer.f64(response.queue_delay_ms);
  writer.f64(response.solve_ms);
  const auto& schedule = response.result.schedule.type_of;
  writer.u32(static_cast<std::uint32_t>(schedule.size()));
  for (const std::size_t type : schedule)
    writer.u32(static_cast<std::uint32_t>(type));
  return encode_frame(FrameType::solve_response, request_id, writer.bytes());
}

service::SchedulingResponse decode_solve_response(std::string_view body) {
  WireReader reader(body);
  service::SchedulingResponse response;
  const std::uint8_t status = reader.u8();
  const std::uint8_t reason = reader.u8();
  const std::uint8_t cache = reader.u8();
  (void)reader.u8();  // reserved
  if (status > static_cast<std::uint8_t>(service::ResponseStatus::failed))
    fail(WireError::bad_body, "wire: unknown response status");
  if (reason > static_cast<std::uint8_t>(service::RejectReason::flow_control))
    fail(WireError::bad_body, "wire: unknown reject reason");
  if (cache >
      static_cast<std::uint8_t>(service::CacheOutcome::hit_isomorphic))
    fail(WireError::bad_body, "wire: unknown cache outcome");
  response.status = static_cast<service::ResponseStatus>(status);
  response.reject_reason = static_cast<service::RejectReason>(reason);
  response.cache = static_cast<service::CacheOutcome>(cache);
  response.solver = reader.str(kMaxString);
  response.error = reader.str(kMaxString);
  response.result.iterations = reader.u64();
  response.result.eval.med = reader.f64();
  response.result.eval.cost = reader.f64();
  response.queue_delay_ms = reader.f64();
  response.solve_ms = reader.f64();
  const std::uint32_t schedule_len = reader.u32();
  if (schedule_len > kMaxModules)
    fail(WireError::limit_exceeded, "wire: schedule too long");
  reader.expect_fits(schedule_len, 4);
  response.result.schedule.type_of.resize(schedule_len);
  for (std::size_t& type : response.result.schedule.type_of)
    type = reader.u32();
  reader.expect_done();
  return response;
}

// -- stats ----------------------------------------------------------------

std::string encode_stats_request(StatsFormat format,
                                 std::uint64_t request_id) {
  WireWriter writer;
  writer.u8(static_cast<std::uint8_t>(format));
  return encode_frame(FrameType::stats_request, request_id, writer.bytes());
}

StatsFormat decode_stats_request(std::string_view body) {
  WireReader reader(body);
  const std::uint8_t format = reader.u8();
  if (format > static_cast<std::uint8_t>(StatsFormat::prometheus))
    fail(WireError::bad_body, "wire: unknown stats format");
  reader.expect_done();
  return static_cast<StatsFormat>(format);
}

std::string encode_stats_response(std::string_view dump,
                                  std::uint64_t request_id) {
  WireWriter writer;
  writer.str(dump);
  return encode_frame(FrameType::stats_response, request_id, writer.bytes());
}

std::string decode_stats_response(std::string_view body) {
  WireReader reader(body);
  std::string dump = reader.str(kMaxString);
  reader.expect_done();
  return dump;
}

// -- error ----------------------------------------------------------------

std::string encode_error(WireError code, std::string_view message,
                         std::uint64_t request_id) {
  WireWriter writer;
  writer.u16(static_cast<std::uint16_t>(code));
  writer.str(message);
  return encode_frame(FrameType::error, request_id, writer.bytes());
}

WireFault decode_error(std::string_view body) {
  WireReader reader(body);
  WireFault fault;
  const std::uint16_t code = reader.u16();
  if (code < static_cast<std::uint16_t>(WireError::truncated) ||
      code > static_cast<std::uint16_t>(WireError::shutting_down))
    fail(WireError::bad_body, "wire: unknown error code");
  fault.code = static_cast<WireError>(code);
  fault.message = reader.str(kMaxString);
  reader.expect_done();
  return fault;
}

// -- hello ----------------------------------------------------------------

namespace {

std::string encode_hello(FrameType type, const Hello& hello,
                         std::uint64_t request_id) {
  WireWriter writer;
  writer.u16(hello.version);
  writer.u32(hello.features);
  writer.str(hello.node_id);
  return encode_frame(type, request_id, writer.bytes());
}

Hello decode_hello(std::string_view body) {
  WireReader reader(body);
  Hello hello;
  hello.version = reader.u16();
  if (hello.version < kVersion)
    fail(WireError::bad_body, "wire: hello with version 0");
  hello.features = reader.u32();
  hello.node_id = reader.str(kMaxString);
  reader.expect_done();
  return hello;
}

}  // namespace

std::string encode_hello_request(const Hello& hello,
                                 std::uint64_t request_id) {
  return encode_hello(FrameType::hello_request, hello, request_id);
}

Hello decode_hello_request(std::string_view body) {
  return decode_hello(body);
}

std::string encode_hello_response(const Hello& hello,
                                  std::uint64_t request_id) {
  return encode_hello(FrameType::hello_response, hello, request_id);
}

Hello decode_hello_response(std::string_view body) {
  return decode_hello(body);
}

// -- replication ----------------------------------------------------------

std::string encode_repl_insert(std::string_view payload,
                               std::uint64_t request_id,
                               const obs::TraceContext& trace) {
  MEDCC_EXPECTS(payload.size() <= kMaxReplPayload);
  // Raw u32 length + bytes (WireWriter::str caps at kMaxString, which
  // is below the record ceiling). A valid trace context rides as a
  // fixed-size suffix so pre-tracing decoders that reject it do so
  // with a clean trailing_bytes.
  WireWriter writer;
  writer.u32(static_cast<std::uint32_t>(payload.size()));
  std::string body = writer.take();
  body.append(payload.data(), payload.size());
  if (trace.valid()) append_trace_context(body, trace);
  return encode_frame(FrameType::repl_insert, request_id, body);
}

ReplRecord decode_repl_insert(std::string_view body) {
  WireReader reader(body);
  const std::uint32_t len = reader.u32();
  if (len > kMaxReplPayload)
    fail(WireError::limit_exceeded, "wire: replicated record too large");
  if (len > reader.remaining())
    fail(WireError::truncated, "wire: truncated replicated record");
  ReplRecord record;
  record.payload.assign(body.substr(body.size() - reader.remaining(), len));
  const std::size_t rest = reader.remaining() - len;
  if (rest == kTraceContextSize) {
    WireReader suffix(body.substr(body.size() - kTraceContextSize));
    record.trace = read_trace_context(suffix);
  } else if (rest != 0) {
    fail(WireError::trailing_bytes,
         "wire: trailing bytes after replicated record");
  }
  return record;
}

std::string encode_repl_ack(const ReplAck& ack, std::uint64_t request_id) {
  WireWriter writer;
  writer.u8(ack.applied ? 1 : 0);
  writer.str(ack.error);
  return encode_frame(FrameType::repl_ack, request_id, writer.bytes());
}

ReplAck decode_repl_ack(std::string_view body) {
  WireReader reader(body);
  ReplAck ack;
  const std::uint8_t applied = reader.u8();
  if (applied > 1) fail(WireError::bad_body, "wire: unknown repl_ack status");
  ack.applied = applied == 1;
  ack.error = reader.str(kMaxString);
  reader.expect_done();
  return ack;
}

// -- cluster status -------------------------------------------------------

namespace {

/// Guard on the peer list (far above any real deployment).
constexpr std::uint64_t kMaxPeers = 1u << 12;

}  // namespace

std::string encode_cluster_status_request(std::uint64_t request_id) {
  return encode_frame(FrameType::cluster_status_request, request_id, {});
}

std::string encode_cluster_status_response(const ClusterStatus& status,
                                           std::uint64_t request_id) {
  WireWriter writer;
  writer.str(status.node_id);
  writer.u16(status.protocol_version);
  writer.u64(status.repl_applied);
  writer.u64(status.repl_apply_errors);
  writer.u32(static_cast<std::uint32_t>(status.peers.size()));
  for (const ClusterPeerStatus& peer : status.peers) {
    writer.str(peer.address);
    writer.str(peer.state);
    writer.u16(peer.peer_version);
    writer.u64(peer.queued);
    writer.u64(peer.sent);
    writer.u64(peer.acked);
    writer.u64(peer.dropped);
    writer.u64(peer.send_errors);
  }
  return encode_frame(FrameType::cluster_status_response, request_id,
                      writer.bytes());
}

ClusterStatus decode_cluster_status_response(std::string_view body) {
  WireReader reader(body);
  ClusterStatus status;
  status.node_id = reader.str(kMaxString);
  status.protocol_version = reader.u16();
  status.repl_applied = reader.u64();
  status.repl_apply_errors = reader.u64();
  const std::uint32_t peer_count = reader.u32();
  if (peer_count > kMaxPeers)
    fail(WireError::limit_exceeded, "wire: too many peers");
  reader.expect_fits(peer_count, /*two strings + counters*/ 4 + 4 + 2 + 5 * 8);
  status.peers.reserve(peer_count);
  for (std::uint32_t i = 0; i < peer_count; ++i) {
    ClusterPeerStatus peer;
    peer.address = reader.str(kMaxString);
    peer.state = reader.str(kMaxString);
    peer.peer_version = reader.u16();
    peer.queued = reader.u64();
    peer.sent = reader.u64();
    peer.acked = reader.u64();
    peer.dropped = reader.u64();
    peer.send_errors = reader.u64();
    status.peers.push_back(std::move(peer));
  }
  reader.expect_done();
  return status;
}

// -- trace dump -----------------------------------------------------------

std::string encode_trace_dump_request(std::uint32_t max_traces,
                                      std::uint64_t request_id) {
  WireWriter writer;
  writer.u32(max_traces);
  return encode_frame(FrameType::trace_dump_request, request_id,
                      writer.bytes());
}

std::uint32_t decode_trace_dump_request(std::string_view body) {
  WireReader reader(body);
  const std::uint32_t max_traces = reader.u32();
  reader.expect_done();
  return max_traces;
}

std::string encode_trace_dump_response(const TraceDump& dump,
                                       std::uint64_t request_id) {
  WireWriter writer;
  writer.str(dump.node_id);
  writer.u8(dump.enabled ? 1 : 0);
  writer.u64(dump.started);
  writer.u64(dump.sampled);
  writer.u64(dump.completed);
  writer.u64(dump.dropped);
  writer.u32(static_cast<std::uint32_t>(dump.stages.size()));
  for (const obs::StageStat& stat : dump.stages) {
    writer.u64(stat.count);
    writer.u64(stat.total_ns);
  }
  writer.u32(static_cast<std::uint32_t>(dump.traces.size()));
  for (const obs::TraceRecord& trace : dump.traces) {
    writer.u64(trace.id.hi);
    writer.u64(trace.id.lo);
    writer.str(trace.origin);
    writer.u64(static_cast<std::uint64_t>(trace.started_ns));
    writer.u64(static_cast<std::uint64_t>(trace.total_ns));
    writer.u8(trace.slow ? 1 : 0);
    writer.u32(static_cast<std::uint32_t>(trace.spans.size()));
    for (const obs::Span& span : trace.spans) {
      writer.u8(static_cast<std::uint8_t>(span.stage));
      writer.u64(static_cast<std::uint64_t>(span.start_ns));
      writer.u64(static_cast<std::uint64_t>(span.end_ns));
    }
  }
  return encode_frame(FrameType::trace_dump_response, request_id,
                      writer.bytes());
}

TraceDump decode_trace_dump_response(std::string_view body) {
  WireReader reader(body);
  TraceDump dump;
  dump.node_id = reader.str(kMaxString);
  const std::uint8_t enabled = reader.u8();
  if (enabled > 1) fail(WireError::bad_body, "wire: bad trace_dump flag");
  dump.enabled = enabled == 1;
  dump.started = reader.u64();
  dump.sampled = reader.u64();
  dump.completed = reader.u64();
  dump.dropped = reader.u64();
  const std::uint32_t stage_count = reader.u32();
  // A newer peer may report stages this build does not know; extra
  // entries are read and dropped, missing ones stay zero.
  if (stage_count > 256)
    fail(WireError::limit_exceeded, "wire: too many trace stages");
  reader.expect_fits(stage_count, 16);
  for (std::uint32_t s = 0; s < stage_count; ++s) {
    const std::uint64_t count = reader.u64();
    const std::uint64_t total_ns = reader.u64();
    if (s < obs::kStageCount) dump.stages[s] = obs::StageStat{count, total_ns};
  }
  const std::uint32_t trace_count = reader.u32();
  if (trace_count > kMaxDumpTraces)
    fail(WireError::limit_exceeded, "wire: too many traces in dump");
  reader.expect_fits(trace_count, 8 + 8 + 4 + 8 + 8 + 1 + 4);
  dump.traces.reserve(trace_count);
  for (std::uint32_t t = 0; t < trace_count; ++t) {
    obs::TraceRecord trace;
    trace.id.hi = reader.u64();
    trace.id.lo = reader.u64();
    trace.origin = reader.str(kMaxString);
    trace.started_ns = static_cast<std::int64_t>(reader.u64());
    trace.total_ns = static_cast<std::int64_t>(reader.u64());
    const std::uint8_t slow = reader.u8();
    if (slow > 1) fail(WireError::bad_body, "wire: bad trace slow flag");
    trace.slow = slow == 1;
    const std::uint32_t span_count = reader.u32();
    if (span_count > kMaxDumpSpans)
      fail(WireError::limit_exceeded, "wire: too many spans in trace");
    reader.expect_fits(span_count, 1 + 8 + 8);
    trace.spans.reserve(span_count);
    for (std::uint32_t s = 0; s < span_count; ++s) {
      const std::uint8_t stage = reader.u8();
      if (stage >= obs::kStageCount)
        fail(WireError::bad_body, "wire: unknown span stage");
      obs::Span span;
      span.stage = static_cast<obs::Stage>(stage);
      span.start_ns = static_cast<std::int64_t>(reader.u64());
      span.end_ns = static_cast<std::int64_t>(reader.u64());
      trace.spans.push_back(span);
    }
    dump.traces.push_back(std::move(trace));
  }
  reader.expect_done();
  return dump;
}

}  // namespace medcc::net
