#include "net/cluster_client.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"

namespace medcc::net {

namespace {

/// FNV-1a 64 -- stable across platforms, which keeps tenant placement
/// identical for every client build sharing one endpoint list.
std::uint64_t fnv1a(std::string_view bytes,
                    std::uint64_t seed = 1469598103934665603ull) {
  std::uint64_t h = seed;
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

ClusterClient::ClusterClient(ClusterClientConfig config)
    : config_(std::move(config)),
      endpoints_(config_.endpoints),
      clock_(config_.clock != nullptr
                 ? config_.clock
                 : [] { return std::chrono::steady_clock::now(); }) {
  MEDCC_EXPECTS(!endpoints_.empty());
  MEDCC_EXPECTS(config_.virtual_nodes > 0);
  for (std::size_t i = 0; i < endpoints_.size(); ++i)
    for (std::size_t j = i + 1; j < endpoints_.size(); ++j)
      MEDCC_EXPECTS(endpoints_[i] != endpoints_[j]);

  peers_.reserve(endpoints_.size());
  ring_.reserve(endpoints_.size() * config_.virtual_nodes);
  for (std::size_t i = 0; i < endpoints_.size(); ++i) {
    ClientConfig client_config;
    client_config.host = endpoints_[i].host;
    client_config.port = endpoints_[i].port;
    client_config.connect_attempts = config_.connect_attempts;
    client_config.connect_timeout_ms = config_.connect_timeout_ms;
    client_config.backoff_initial_ms = config_.backoff_initial_ms;
    client_config.backoff_cap_ms = config_.backoff_cap_ms;
    client_config.request_timeout_ms = config_.request_timeout_ms;
    client_config.max_frame_body = config_.max_frame_body;
    Peer peer;
    peer.client = std::make_unique<Client>(std::move(client_config));
    peers_.push_back(std::move(peer));

    const std::string name = to_string(endpoints_[i]);
    for (std::size_t v = 0; v < config_.virtual_nodes; ++v)
      ring_.push_back(
          Node{fnv1a(name + "#" + std::to_string(v)), i});
  }
  std::sort(ring_.begin(), ring_.end(), [](const Node& a, const Node& b) {
    return a.hash != b.hash ? a.hash < b.hash : a.index < b.index;
  });
}

std::vector<std::size_t> ClusterClient::route(std::string_view tenant) const {
  // Tenants and ring points use different FNV seeds so an endpoint
  // whose name equals a tenant id does not pin that tenant to itself.
  const std::uint64_t h = fnv1a(tenant, 14695981039346656037ull);
  const auto start = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const Node& node, std::uint64_t value) { return node.hash < value; });
  std::vector<std::size_t> order;
  order.reserve(endpoints_.size());
  std::vector<bool> seen(endpoints_.size(), false);
  const std::size_t first = static_cast<std::size_t>(
      start == ring_.end() ? 0 : start - ring_.begin());
  for (std::size_t step = 0;
       step < ring_.size() && order.size() < endpoints_.size(); ++step) {
    const Node& node = ring_[(first + step) % ring_.size()];
    if (seen[node.index]) continue;
    seen[node.index] = true;
    order.push_back(node.index);
  }
  return order;
}

std::size_t ClusterClient::primary_index(std::string_view tenant) const {
  return route(tenant).front();
}

service::SchedulingResponse ClusterClient::solve(
    const service::SchedulingRequest& request) {
  // One trace context for the whole logical solve: a failover retry
  // reuses it verbatim, so the survivor's server-side spans land under
  // the same 128-bit id as our client_attempt/client_failover spans.
  service::SchedulingRequest routed = request;
  obs::Tracer* const tracer = config_.tracer;
  std::shared_ptr<obs::Trace> trace_buffer;
  std::int64_t trace_started = 0;
  if (tracer != nullptr) {
    if (!routed.trace.valid()) routed.trace = tracer->new_context();
    trace_started = obs::Tracer::now_ns();
    trace_buffer = tracer->open(routed.trace);
  }

  const std::vector<std::size_t> order = route(request.tenant);
  const auto now = clock_();

  // Live peers first (ring order), then the cooling-down ones as a
  // last resort -- a full outage should report the real error, not
  // "everything was marked down".
  std::vector<std::size_t> candidates;
  candidates.reserve(order.size());
  for (const std::size_t index : order)
    if (peers_[index].down_until <= now) candidates.push_back(index);
  for (const std::size_t index : order)
    if (peers_[index].down_until > now) candidates.push_back(index);

  const auto cooldown =
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(
              std::max(0.0, config_.down_cooldown_ms)));
  std::string last_error = "no endpoints";
  for (std::size_t attempt = 0; attempt < candidates.size(); ++attempt) {
    Peer& peer = peers_[candidates[attempt]];
    ++peer.sent;
    if (candidates[attempt] != order.front()) ++peer.failovers;
    const std::int64_t attempt_start =
        tracer != nullptr ? obs::Tracer::now_ns() : 0;
    try {
      service::SchedulingResponse response = peer.client->solve(routed);
      // A draining replica answers "shutting_down" instead of solving;
      // the taxonomy says retry elsewhere, so treat it like a
      // transport fault and keep walking the ring.
      if (response.status == service::ResponseStatus::rejected &&
          response.reject_reason == service::RejectReason::shutting_down) {
        ++peer.errors;
        peer.down_until = clock_() + cooldown;
        last_error = "replica is shutting down";
        if (tracer != nullptr)
          tracer->record(trace_buffer, obs::Stage::client_failover,
                         attempt_start, obs::Tracer::now_ns());
        continue;
      }
      peer.down_until = {};
      ++peer.ok;
      if (tracer != nullptr) {
        const std::int64_t done = obs::Tracer::now_ns();
        tracer->record(trace_buffer, obs::Stage::client_attempt,
                       attempt_start, done);
        tracer->record(trace_buffer, obs::Stage::request, trace_started,
                       done);
        tracer->finish(trace_buffer, "client");
      }
      return response;
    } catch (const NetError& e) {
      ++peer.errors;
      peer.down_until = clock_() + cooldown;
      last_error = e.what();
      // The wasted try IS the failover cost: span it so dumps show
      // where a retried request's extra latency went.
      if (tracer != nullptr)
        tracer->record(trace_buffer, obs::Stage::client_failover,
                       attempt_start, obs::Tracer::now_ns());
    }
  }
  if (tracer != nullptr) {
    tracer->record(trace_buffer, obs::Stage::request, trace_started,
                   obs::Tracer::now_ns());
    tracer->finish(trace_buffer, "client");
  }
  throw NetError("cluster: every replica failed for tenant '" +
                 request.tenant + "': " + last_error);
}

std::vector<ClusterClient::EndpointStats> ClusterClient::stats() const {
  const auto now = clock_();
  std::vector<EndpointStats> all;
  all.reserve(peers_.size());
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    EndpointStats s;
    s.endpoint = endpoints_[i];
    s.sent = peers_[i].sent;
    s.ok = peers_[i].ok;
    s.errors = peers_[i].errors;
    s.failovers = peers_[i].failovers;
    s.down = peers_[i].down_until > now;
    all.push_back(std::move(s));
  }
  return all;
}

}  // namespace medcc::net
