// The epoll-based TCP front end of the SchedulingService.
//
// One IO thread multiplexes the listening socket, an eventfd wake-up,
// and every client connection (all non-blocking, level-triggered
// epoll). Incoming bytes accumulate per connection until a full frame
// is present; solve requests are decoded and handed to
// SchedulingService::submit_async, so admission control, tenant
// quotas, queue deadlines, memoization and metrics all apply unchanged
// to network traffic. Completions are posted -- from whichever worker
// thread finished the solve -- into an outbox drained by the IO thread
// through the eventfd, so responses go out as they complete, in any
// order; clients correlate them by request id.
//
// Error handling follows the frame/stream split: a malformed *body*
// (frame boundaries still sound) answers with an error frame and keeps
// the connection; a malformed *header* (magic/version/type/length)
// desynchronizes the byte stream, so the server sends one error frame
// and closes after flushing. Idle connections are closed after
// ServerConfig::idle_timeout_ms without traffic.
//
// stop() is graceful: the listener closes immediately, queued frames
// already dispatched keep their worker slots, the loop waits for every
// in-flight solve and flushes every outbuf (bounded by
// drain_grace_ms), and only then do the sockets close. The destructor
// calls stop(). Completion callbacks capture only the shared_ptr-owned
// CompletionQueue, never the Server itself, so a solve that outlives
// the grace period posts into state that outlives the Server and is
// simply dropped.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/codec.hpp"
#include "service/service.hpp"
#include "util/mutex.hpp"
#include "util/socket.hpp"

namespace medcc::net {

struct ServerConfig {
  /// Dotted-quad IPv4 address to bind; loopback by default.
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port; Server::port() reports the choice.
  std::uint16_t port = 0;
  int backlog = 64;
  std::size_t max_connections = 1024;
  std::size_t max_frame_body = kDefaultMaxBody;
  /// High-water mark on a connection's unflushed output. Past it the
  /// server stops reading from that connection until the buffer flushes,
  /// so a client that pipelines requests but never reads cannot grow
  /// server memory without bound. 0 = unlimited.
  std::size_t max_conn_outbuf = 4 * 1024 * 1024;
  /// Close connections with no traffic for this long; 0 = never. Also
  /// reaps connections whose unflushed output has made no progress for
  /// this long (a peer that stopped reading).
  double idle_timeout_ms = 0.0;
  /// stop(): how long to keep flushing responses after the last
  /// in-flight solve completes before closing connections hard.
  double drain_grace_ms = 5000.0;
};

class Server {
public:
  /// Binds, listens, and starts the IO thread. Throws NetError when the
  /// socket cannot be set up. `service` must outlive the server.
  Server(service::SchedulingService& service, ServerConfig config = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The locally bound TCP port (resolves port = 0 requests).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Graceful shutdown: stop accepting, drain in-flight solves, flush
  /// outgoing frames, close. Idempotent; safe from any non-IO thread.
  void stop();

  /// Transport counters (monotonic except connections_active).
  struct Counters {
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_active = 0;
    std::uint64_t frames_in = 0;
    std::uint64_t frames_out = 0;
    std::uint64_t protocol_errors = 0;
    std::uint64_t idle_closed = 0;
    std::uint64_t dropped_responses = 0;    ///< finished after peer left
    std::uint64_t backpressure_paused = 0;  ///< reads paused at high water
  };
  [[nodiscard]] Counters counters() const;

private:
  struct Connection {
    util::FdHandle fd;
    std::uint64_t serial = 0;
    std::string inbuf;
    std::string outbuf;
    std::size_t out_offset = 0;  ///< bytes of outbuf already sent
    std::chrono::steady_clock::time_point last_activity;
    std::size_t pending = 0;  ///< solves dispatched, response not yet queued
    bool close_after_flush = false;
    bool want_write = false;
    bool reading = true;      ///< false once the stream is poisoned
    bool read_paused = false;  ///< outbuf over the high-water mark
  };

  /// Cross-thread completion state shared with the submit_async
  /// callbacks. Owned via shared_ptr so a callback firing after the
  /// Server is destroyed (a solve outliving drain_grace_ms) still posts
  /// into live memory; the response is then dropped with the queue.
  struct CompletionQueue {
    /// Creates the wake eventfd; throws NetError when that fails.
    CompletionQueue();

    util::Mutex mutex;
    std::vector<std::pair<std::uint64_t, std::string>> items
        MEDCC_GUARDED_BY(mutex);
    /// Dispatched solves whose callback has not yet run.
    std::size_t outstanding MEDCC_GUARDED_BY(mutex) = 0;
    /// The eventfd the IO thread sleeps on. Const after construction:
    /// workers write it and the IO thread reads it without the mutex,
    /// which is safe because the descriptor value never changes and
    /// eventfd operations are kernel-synchronized.
    const util::FdHandle wake_fd;

    /// Worker-side: enqueue the encoded response (empty = drop),
    /// decrement outstanding, and wake the IO thread.
    void post(std::uint64_t serial, std::string bytes)
        MEDCC_EXCLUDES(mutex);
  };

  void io_loop();
  void accept_ready();
  void conn_readable(Connection& conn);
  /// Parses and handles every complete frame buffered in conn.inbuf;
  /// stops early when the stream is poisoned or reading is paused.
  void process_inbuf(Connection& conn);
  void conn_writable(Connection& conn);
  /// Handles one complete frame; may queue output or dispatch a solve.
  void handle_frame(Connection& conn, const FrameHeader& header,
                    std::string_view body);
  void queue_output(Connection& conn, std::string bytes);
  void update_epoll(Connection& conn);
  void close_connection(std::uint64_t serial);
  /// Moves completed responses from the cross-thread outbox onto the
  /// owning connections' write buffers (IO thread only).
  void drain_outbox();
  void wake();

  service::SchedulingService& service_;
  ServerConfig config_;
  util::FdHandle listen_fd_;
  util::FdHandle epoll_fd_;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};

  /// Completions posted by service workers, drained by the IO thread.
  /// The pointer is set once in the constructor; the pointee carries its
  /// own mutex (annotated above).
  std::shared_ptr<CompletionQueue> completions_;

  /// IO-thread confined: the connection table and serial counter are
  /// touched only from io_loop() and the constructor (which runs before
  /// the IO thread starts); no lock is needed and none must be added
  /// without moving these behind one.
  std::unordered_map<std::uint64_t, Connection> connections_;
  std::uint64_t next_serial_ = 1;

  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_active_{0};
  std::atomic<std::uint64_t> frames_in_{0};
  std::atomic<std::uint64_t> frames_out_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> idle_closed_{0};
  std::atomic<std::uint64_t> dropped_responses_{0};
  std::atomic<std::uint64_t> backpressure_paused_{0};

  std::thread io_;  // last member: joined by stop() before teardown
};

}  // namespace medcc::net
