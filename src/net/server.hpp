// The epoll-based TCP front end of the SchedulingService.
//
// Multi-reactor design: ServerConfig::io_threads event-loop threads
// each own a private epoll instance, a wake eventfd, a buffer pool and
// a connection table. Reactor 0 additionally owns the listening
// socket; accepted connections are sharded round-robin across
// reactors (a cross-thread handoff posts the fd into the target
// reactor's completion queue and rings its eventfd). After the
// handoff a connection is confined to one reactor thread for life, so
// per-connection state needs no locking -- exactly the single-reactor
// discipline, replicated N times.
//
// Incoming bytes accumulate per connection until a full frame is
// present; solve requests are decoded and handed to
// SchedulingService::submit_async, so admission control, tenant
// quotas, queue deadlines, memoization and metrics all apply unchanged
// to network traffic. Completions are posted -- from whichever worker
// thread finished the solve -- into the owning reactor's outbox,
// drained through its eventfd, so responses go out as they complete,
// in any order; clients correlate them by request id.
//
// Zero-copy exact-hit fast path: when the service exposes a WireCache
// (ServiceConfig::wire_cache_capacity), the raw body bytes of every
// solve_request are first looked up in it. On a hit the memoized,
// fully encoded response frame is copied straight into the
// connection's pooled output chunk and the request id is patched in
// place -- no decode, no queue hop, no re-encode, no per-frame
// allocation. Misses take the normal path, and the completion
// callback memoizes the encoded template for the next verbatim
// duplicate. Fast-path responses carry queue_delay_ms = solve_ms = 0
// and CacheOutcome::hit_exact, and are counted in
// Counters::fastpath_hits plus the service's wire_fastpath metrics
// (they never enter admission control -- by design: the whole point
// is to spend nothing on them).
//
// Output is chunked: each connection's outbuf is a deque of pooled
// buffers flushed with one gathered sendmsg (writev-style iovec) per
// syscall, and drained chunks return to the reactor's pool.
//
// Error handling follows the frame/stream split: a malformed *body*
// (frame boundaries still sound) answers with an error frame and keeps
// the connection; a malformed *header* (magic/version/type/length)
// desynchronizes the byte stream, so the server sends one error frame
// and closes after flushing. Idle connections are closed after
// ServerConfig::idle_timeout_ms without traffic.
//
// stop() is graceful: the listener closes immediately, queued frames
// already dispatched keep their worker slots, every reactor
// independently waits for its in-flight solves and flushes its
// outbufs (each bounded by drain_grace_ms), and only then do the
// sockets close. The destructor calls stop(). Completion callbacks
// capture only the shared_ptr-owned CompletionQueue, never the Server
// itself, so a solve that outlives the grace period posts into state
// that outlives the Server and is simply dropped.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/codec.hpp"
#include "service/service.hpp"
#include "service/wire_cache.hpp"
#include "util/buffer_pool.hpp"
#include "util/mutex.hpp"
#include "util/padded.hpp"
#include "util/socket.hpp"

namespace medcc::net {

struct ServerConfig {
  /// Dotted-quad IPv4 address to bind; loopback by default.
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port; Server::port() reports the choice.
  std::uint16_t port = 0;
  int backlog = 64;
  /// Reactor (event-loop) threads; 0 = hardware concurrency. Each
  /// accepted connection is pinned to one reactor round-robin.
  std::size_t io_threads = 1;
  std::size_t max_connections = 1024;
  std::size_t max_frame_body = kDefaultMaxBody;
  /// High-water mark on a connection's unflushed output. Past it the
  /// server stops reading from that connection until the buffer flushes,
  /// so a client that pipelines requests but never reads cannot grow
  /// server memory without bound. 0 = unlimited.
  std::size_t max_conn_outbuf = 4 * 1024 * 1024;
  /// Close connections with no traffic for this long; 0 = never. Also
  /// reaps connections whose unflushed output has made no progress for
  /// this long (a peer that stopped reading).
  double idle_timeout_ms = 0.0;
  /// stop(): how long each reactor keeps flushing responses after the
  /// last in-flight solve completes before closing connections hard.
  double drain_grace_ms = 5000.0;
  /// Cap on solves dispatched-but-unanswered per connection. A frame
  /// past the cap is answered immediately with a structured
  /// RejectReason::flow_control response instead of queueing unbounded
  /// worker-side state -- the connection stays healthy and the client
  /// sees exactly which request was shed. 0 = unlimited (the
  /// compatible default; the service's bounded queue still applies).
  std::size_t max_inflight_frames = 0;
  /// Name reported in hello and cluster_status responses ("" = unset).
  std::string node_id{};
  /// Cluster hooks, filled by the cluster layer (src/cluster) so the
  /// net layer stays free of a dependency on it.
  ///
  /// Applies one replicated cache record (repl_insert body payload);
  /// returns whether it was applied. nullptr = replication not
  /// offered: hello responses omit kFeatureReplication and repl_insert
  /// frames are acked with applied = false.
  std::function<bool(std::string_view payload)> repl_apply{};
  /// Source of the node's membership/replication view for
  /// cluster_status requests. nullptr = answer with an empty peer list
  /// (a single-node server is a degenerate one-replica cluster).
  std::function<ClusterStatus()> cluster_status{};
  /// Request tracer (docs/observability.md). nullptr = tracing not
  /// offered: hello responses omit kFeatureTracing, traced_solve_request
  /// frames are still answered (the trace prefix is stripped and
  /// ignored) and trace_dump requests return an empty dump. Not owned;
  /// must outlive the server.
  obs::Tracer* tracer = nullptr;
};

class Server {
public:
  /// Binds, listens, and starts the reactor threads. Throws NetError
  /// when the socket cannot be set up. `service` must outlive the
  /// server.
  Server(service::SchedulingService& service, ServerConfig config = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The locally bound TCP port (resolves port = 0 requests).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// The number of reactor threads actually running.
  [[nodiscard]] std::size_t reactor_count() const { return reactors_.size(); }

  /// Graceful shutdown: stop accepting, drain in-flight solves, flush
  /// outgoing frames, close. Idempotent; safe from any non-IO thread.
  void stop();

  /// Transport counters (monotonic except connections_active),
  /// aggregated across reactors.
  struct Counters {
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_active = 0;
    std::uint64_t frames_in = 0;
    std::uint64_t frames_out = 0;
    std::uint64_t protocol_errors = 0;
    std::uint64_t idle_closed = 0;
    std::uint64_t dropped_responses = 0;    ///< finished after peer left
    std::uint64_t backpressure_paused = 0;  ///< reads paused at high water
    std::uint64_t fastpath_hits = 0;  ///< responses served from WireCache
    std::uint64_t flow_control_rejects = 0;  ///< max_inflight_frames sheds
    std::uint64_t hellos = 0;            ///< hello handshakes answered
    std::uint64_t repl_records_in = 0;   ///< repl_insert frames received
    std::uint64_t traced_solves = 0;     ///< traced_solve_request frames
    std::uint64_t trace_dumps = 0;       ///< trace_dump requests answered
  };
  [[nodiscard]] Counters counters() const;

private:
  struct Connection {
    util::FdHandle fd;
    std::uint64_t serial = 0;
    std::string inbuf;
    /// Unflushed output: pooled chunks, front partially sent.
    std::deque<std::string> outq;
    std::size_t out_head = 0;   ///< bytes of outq.front() already sent
    std::size_t out_bytes = 0;  ///< total unsent bytes across outq
    std::chrono::steady_clock::time_point last_activity;
    std::size_t pending = 0;  ///< solves dispatched, response not yet queued
    bool close_after_flush = false;
    bool want_write = false;
    bool reading = true;      ///< false once the stream is poisoned
    bool read_paused = false;  ///< outbuf over the high-water mark
  };

  /// Cross-thread state of one reactor, shared with the submit_async
  /// callbacks (and, for handoffs, with reactor 0's accept path).
  /// Owned via shared_ptr so a callback firing after the Server is
  /// destroyed (a solve outliving drain_grace_ms) still posts into
  /// live memory; the response is then dropped with the queue.
  struct CompletionQueue {
    /// Creates the wake eventfd; throws NetError when that fails.
    CompletionQueue();
    /// Closes any handed-off sockets no reactor ever adopted.
    ~CompletionQueue();

    util::Mutex mutex;
    std::vector<std::pair<std::uint64_t, std::string>> items
        MEDCC_GUARDED_BY(mutex);
    /// Accepted connections (serial, fd) awaiting adoption by the
    /// owning reactor thread.
    std::vector<std::pair<std::uint64_t, int>> handoffs
        MEDCC_GUARDED_BY(mutex);
    /// Dispatched solves whose callback has not yet run.
    std::size_t outstanding MEDCC_GUARDED_BY(mutex) = 0;
    /// The eventfd the reactor sleeps on. Const after construction:
    /// workers write it and the reactor reads it without the mutex,
    /// which is safe because the descriptor value never changes and
    /// eventfd operations are kernel-synchronized.
    const util::FdHandle wake_fd;

    /// Worker-side: enqueue the encoded response (empty = drop),
    /// decrement outstanding, and wake the reactor.
    void post(std::uint64_t serial, std::string bytes)
        MEDCC_EXCLUDES(mutex);
    /// Acceptor-side: pass ownership of an accepted socket to this
    /// reactor and wake it.
    void hand_off(std::uint64_t serial, int fd) MEDCC_EXCLUDES(mutex);
  };

  /// One event-loop thread's world. Everything except `completions` is
  /// confined to that thread once it starts (the constructor sets the
  /// structures up before any thread runs).
  struct Reactor {
    std::size_t index = 0;
    util::FdHandle epoll_fd;
    std::shared_ptr<CompletionQueue> completions;
    util::BufferPool pool;  // internally locked; used by this thread only
    std::unordered_map<std::uint64_t, Connection> connections;
    std::thread thread;  // started last in the constructor
  };

  void io_loop(Reactor& r);
  void accept_ready(Reactor& r);  // runs on reactor 0 only
  /// Registers a just-accepted (or handed-off) socket with `r`.
  void adopt_connection(Reactor& r, std::uint64_t serial, int fd);
  void conn_readable(Reactor& r, Connection& conn);
  /// Parses and handles every complete frame buffered in conn.inbuf;
  /// stops early when the stream is poisoned or reading is paused.
  void process_inbuf(Reactor& r, Connection& conn);
  void conn_writable(Reactor& r, Connection& conn);
  /// Handles one complete frame; may queue output or dispatch a solve.
  void handle_frame(Reactor& r, Connection& conn, const FrameHeader& header,
                    std::string_view body);
  /// Shared tail of solve_request and traced_solve_request: wire-cache
  /// fast path keyed on the inner (trace-free) request bytes, flow
  /// control, decode, dispatch. `trace` is invalid for untraced frames;
  /// `started_ns` anchors the request/decode spans when span-captured.
  void handle_solve(Reactor& r, Connection& conn, std::uint64_t request_id,
                    std::string_view inner, obs::TraceContext trace,
                    std::int64_t started_ns);
  void queue_output(Reactor& r, Connection& conn, std::string bytes);
  /// Fast path: copies a memoized response frame into the tail pooled
  /// chunk and patches the request id in place.
  void queue_cached_frame(Reactor& r, Connection& conn,
                          const std::string& frame, std::uint64_t id);
  /// Returns the tail output chunk with at least `need` spare bytes,
  /// acquiring a pooled chunk when the current tail is full.
  [[nodiscard]] std::string& output_chunk(Reactor& r, Connection& conn,
                                          std::size_t need);
  /// Common tail of the queue_* methods: arm EPOLLOUT and apply the
  /// outbuf high-water mark.
  void after_output(Reactor& r, Connection& conn);
  /// Retires `sent` flushed bytes, releasing drained chunks to the pool.
  void advance_outq(Reactor& r, Connection& conn, std::size_t sent);
  void update_epoll(Reactor& r, Connection& conn);
  void close_connection(Reactor& r, std::uint64_t serial);
  /// Moves completed responses and handed-off sockets from the
  /// cross-thread queue onto this reactor's state (reactor thread only).
  void drain_outbox(Reactor& r);
  void wake(Reactor& r);

  service::SchedulingService& service_;
  ServerConfig config_;
  /// Borrowed from the service (which outlives the server); nullptr
  /// when the fast path is disabled.
  service::WireCache* wire_cache_ = nullptr;
  util::FdHandle listen_fd_;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};

  /// Serial source shared by all reactors (reactor 0 assigns serials
  /// at accept; they tag epoll events and correlate completions).
  std::atomic<std::uint64_t> next_serial_{0};
  /// Round-robin cursor for sharding accepted connections.
  std::atomic<std::size_t> round_robin_{0};

  util::PaddedAtomic<std::uint64_t> connections_accepted_;
  util::PaddedAtomic<std::uint64_t> connections_active_;
  util::PaddedAtomic<std::uint64_t> frames_in_;
  util::PaddedAtomic<std::uint64_t> frames_out_;
  util::PaddedAtomic<std::uint64_t> protocol_errors_;
  util::PaddedAtomic<std::uint64_t> idle_closed_;
  util::PaddedAtomic<std::uint64_t> dropped_responses_;
  util::PaddedAtomic<std::uint64_t> backpressure_paused_;
  util::PaddedAtomic<std::uint64_t> fastpath_hits_;
  util::PaddedAtomic<std::uint64_t> flow_control_rejects_;
  util::PaddedAtomic<std::uint64_t> hellos_;
  util::PaddedAtomic<std::uint64_t> repl_records_in_;
  util::PaddedAtomic<std::uint64_t> traced_solves_;
  util::PaddedAtomic<std::uint64_t> trace_dumps_;

  /// Sized in the constructor before any thread starts, structurally
  /// immutable afterwards. Last member: stop() joins the reactor
  /// threads before anything above is torn down.
  std::vector<std::unique_ptr<Reactor>> reactors_;
};

}  // namespace medcc::net
