#include "analysis/verify.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <sstream>
#include <vector>

#include "cloud/cost_model.hpp"

namespace medcc::analysis {
namespace {

using workflow::NodeId;

/// Absolute tolerance scaled to the magnitude of the compared values.
double tol(double rel, double a, double b = 0.0) {
  return rel * std::max({1.0, std::abs(a), std::abs(b)});
}

bool close(double rel, double a, double b) {
  return std::abs(a - b) <= tol(rel, a, b);
}

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

/// Independent forward pass: earliest start/finish per node under
/// `durations`, honouring per-edge transfer delays. The graph must be
/// acyclic (callers run verify_workflow first).
struct ForwardTimes {
  std::vector<double> est;
  std::vector<double> eft;
  double makespan = 0.0;
};

ForwardTimes forward_pass(const dag::Dag& graph,
                          const std::vector<double>& durations,
                          const std::vector<double>& edge_times) {
  ForwardTimes ft;
  const auto order = graph.topological_order();
  MEDCC_EXPECTS(order.has_value());
  ft.est.assign(graph.node_count(), 0.0);
  ft.eft.assign(graph.node_count(), 0.0);
  for (NodeId v : *order) {
    double start = 0.0;
    for (dag::EdgeId e : graph.in_edges(v)) {
      const double arrival =
          ft.eft[graph.edge(e).src] +
          (edge_times.empty() ? 0.0 : edge_times[e]);
      start = std::max(start, arrival);
    }
    ft.est[v] = start;
    ft.eft[v] = start + durations[v];
    ft.makespan = std::max(ft.makespan, ft.eft[v]);
  }
  return ft;
}

/// Eq. 7 cost of one module, re-derived from the billing policy; fixed
/// modules are free of charge.
double derived_module_cost(const sched::Instance& inst, NodeId i,
                           std::size_t j) {
  if (inst.workflow().module(i).is_fixed()) return 0.0;
  return inst.billing().cost(inst.time(i, j),
                             inst.catalog().type(j).cost_rate);
}

/// Transfer cost re-derived from the network model (Eq. 4).
double derived_transfer_cost(const sched::Instance& inst) {
  double total = 0.0;
  const auto& wf = inst.workflow();
  for (dag::EdgeId e = 0; e < wf.graph().edge_count(); ++e)
    total += cloud::transfer_cost(wf.data_size(e), inst.network());
  return total;
}

}  // namespace

Diagnostics verify_workflow(const workflow::Workflow& wf) {
  Diagnostics diag;
  const auto& g = wf.graph();

  if (g.node_count() == 0) {
    diag.error("empty-workflow", "workflow has no modules");
    return diag;
  }

  const auto order = g.topological_order();
  if (!order.has_value())
    diag.error("cycle", "dependency graph contains a cycle");

  const auto sources = g.sources();
  const auto sinks = g.sinks();
  if (sources.size() != 1) {
    std::ostringstream os;
    os << "expected exactly one entry module, found " << sources.size();
    diag.error("multi-source", os.str());
  }
  if (sinks.size() != 1) {
    std::ostringstream os;
    os << "expected exactly one exit module, found " << sinks.size();
    diag.error("multi-sink", os.str());
  }

  for (NodeId i = 0; i < wf.module_count(); ++i) {
    const auto& mod = wf.module(i);
    if (!mod.is_fixed() && mod.workload < 0.0)
      diag.error("negative-workload", "module " + mod.name +
                                          " has negative workload " +
                                          fmt(mod.workload));
    if (!mod.is_fixed() && mod.workload == 0.0)
      diag.warning("zero-workload",
                   "computing module " + mod.name + " has zero workload");
    if (mod.is_fixed() && *mod.fixed_time < 0.0)
      diag.error("negative-workload", "fixed module " + mod.name +
                                          " has negative duration " +
                                          fmt(*mod.fixed_time));
  }
  for (dag::EdgeId e = 0; e < g.edge_count(); ++e) {
    if (wf.data_size(e) < 0.0) {
      std::ostringstream os;
      os << "edge " << g.edge(e).src << "->" << g.edge(e).dst
         << " has negative data size " << fmt(wf.data_size(e));
      diag.error("negative-data-size", os.str());
    }
  }

  // Reachability only makes sense with a unique entry/exit and no cycle.
  if (order.has_value() && sources.size() == 1 && sinks.size() == 1) {
    const NodeId entry = sources.front();
    const NodeId exit = sinks.front();
    const auto from_entry = g.reachable_set(entry);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (!from_entry[v] || !g.reachable(v, exit)) {
        diag.error("unreachable", "module " + wf.module(v).name +
                                      " is not on any entry->exit path");
      }
    }
    for (dag::EdgeId e : g.redundant_edges()) {
      std::ostringstream os;
      os << "edge " << g.edge(e).src << "->" << g.edge(e).dst
         << " is transitively implied";
      diag.info("redundant-edge", os.str());
    }
  }
  return diag;
}

Diagnostics verify_schedule(const sched::Instance& inst,
                            const sched::Schedule& schedule,
                            const sched::Evaluation& reported,
                            const VerifyOptions& options) {
  Diagnostics diag = verify_workflow(inst.workflow());
  if (!diag.ok()) return diag;

  const std::size_t m = inst.module_count();
  const std::size_t n = inst.type_count();
  const auto& wf = inst.workflow();
  const double rel = options.rel_tol;

  if (schedule.type_of.size() != m) {
    std::ostringstream os;
    os << "schedule maps " << schedule.type_of.size() << " modules, instance "
       << "has " << m;
    diag.error("mapping-size", os.str());
    return diag;
  }

  bool indexable = true;
  for (NodeId i = 0; i < m; ++i) {
    if (schedule.type_of[i] >= n) {
      std::ostringstream os;
      os << "module " << wf.module(i).name << " mapped to VM type "
         << schedule.type_of[i] << ", catalog has " << n << " types";
      diag.error("dangling-vm-type", os.str());
      indexable = false;
    }
  }
  if (!indexable) return diag;

  // --- Cost: re-derive Eq. 7 from the billing policy, then compare the
  // instance's CE table and the reported CTotal against it.
  double derived_cost = derived_transfer_cost(inst);
  for (NodeId i = 0; i < m; ++i) {
    const std::size_t j = schedule.type_of[i];
    const double expected = derived_module_cost(inst, i, j);
    if (!close(rel, expected, inst.cost(i, j))) {
      std::ostringstream os;
      os << "CE[" << i << "][" << j << "] = " << fmt(inst.cost(i, j))
         << " but billing re-derivation gives " << fmt(expected);
      diag.error("cost-table-mismatch", os.str());
    }
    derived_cost += expected;
  }
  if (!close(rel, derived_cost, reported.cost)) {
    diag.error("cost-mismatch", "reported CTotal " + fmt(reported.cost) +
                                    " != re-derived cost " +
                                    fmt(derived_cost));
  }
  if (std::isfinite(options.budget)) {
    if (derived_cost > options.budget + tol(rel, options.budget)) {
      diag.error("over-budget", "re-derived cost " + fmt(derived_cost) +
                                    " exceeds budget " +
                                    fmt(options.budget));
    } else {
      diag.info("budget-slack",
                "unused budget " + fmt(options.budget - derived_cost));
    }
  }

  // --- Timing: independent forward pass over the mapped workflow.
  std::vector<double> durations(m);
  for (NodeId i = 0; i < m; ++i)
    durations[i] = inst.time(i, schedule.type_of[i]);
  const auto ft = forward_pass(wf.graph(), durations, inst.edge_times());

  if (reported.cpm.est.size() != m || reported.cpm.eft.size() != m) {
    std::ostringstream os;
    os << "reported timing covers " << reported.cpm.est.size() << "/"
       << reported.cpm.eft.size() << " modules, instance has " << m;
    diag.error("timing-size", os.str());
    return diag;
  }

  for (NodeId i = 0; i < m; ++i) {
    if (!close(rel, reported.cpm.eft[i],
               reported.cpm.est[i] + durations[i])) {
      std::ostringstream os;
      os << "module " << wf.module(i).name << ": eft "
         << fmt(reported.cpm.eft[i]) << " != est + duration "
         << fmt(reported.cpm.est[i] + durations[i]);
      diag.error("timing-inconsistent", os.str());
    }
  }
  const auto& g = wf.graph();
  for (dag::EdgeId e = 0; e < g.edge_count(); ++e) {
    const auto& edge = g.edge(e);
    const double ready = reported.cpm.eft[edge.src] + inst.edge_time(e);
    if (reported.cpm.est[edge.dst] <
        ready - tol(rel, ready, reported.cpm.est[edge.dst])) {
      std::ostringstream os;
      os << "module " << wf.module(edge.dst).name << " starts at "
         << fmt(reported.cpm.est[edge.dst]) << " before predecessor "
         << wf.module(edge.src).name << " delivers at " << fmt(ready);
      diag.error("precedence-violation", os.str());
    }
  }
  if (!close(rel, reported.med, ft.makespan) ||
      !close(rel, reported.cpm.makespan, ft.makespan)) {
    std::ostringstream os;
    os << "reported MED " << fmt(reported.med) << " (cpm "
       << fmt(reported.cpm.makespan) << ") != recomputed critical-path "
       << "length " << fmt(ft.makespan);
    diag.error("makespan-mismatch", os.str());
  }
  if (std::isfinite(options.deadline) &&
      ft.makespan > options.deadline + tol(rel, options.deadline)) {
    diag.error("missed-deadline", "recomputed makespan " + fmt(ft.makespan) +
                                      " exceeds deadline " +
                                      fmt(options.deadline));
  }
  return diag;
}

Diagnostics verify_placement(const sched::Instance& inst,
                             const std::vector<cloud::VmType>& machines,
                             const std::vector<sched::HeftPlacement>& placement,
                             double makespan, const VerifyOptions& options) {
  Diagnostics diag = verify_workflow(inst.workflow());
  if (!diag.ok()) return diag;

  const std::size_t m = inst.module_count();
  const auto& wf = inst.workflow();
  const double rel = options.rel_tol;

  if (placement.size() != m) {
    std::ostringstream os;
    os << "placement covers " << placement.size() << " modules, instance has "
       << m;
    diag.error("placement-size", os.str());
    return diag;
  }

  bool indexable = true;
  for (NodeId i = 0; i < m; ++i) {
    if (placement[i].machine >= machines.size()) {
      std::ostringstream os;
      os << "module " << wf.module(i).name << " placed on machine "
         << placement[i].machine << ", pool has " << machines.size();
      diag.error("dangling-machine", os.str());
      indexable = false;
    }
  }
  if (!indexable) return diag;

  double latest = 0.0;
  for (NodeId i = 0; i < m; ++i) {
    const auto& mod = wf.module(i);
    const auto& p = placement[i];
    const double duration =
        mod.is_fixed()
            ? *mod.fixed_time
            : cloud::execution_time(mod.workload, machines[p.machine]);
    if (!close(rel, p.finish, p.start + duration)) {
      std::ostringstream os;
      os << "module " << mod.name << ": finish " << fmt(p.finish)
         << " != start + machine duration " << fmt(p.start + duration);
      diag.error("duration-mismatch", os.str());
    }
    latest = std::max(latest, p.finish);
  }

  const auto& g = wf.graph();
  for (dag::EdgeId e = 0; e < g.edge_count(); ++e) {
    const auto& edge = g.edge(e);
    const double ready = placement[edge.src].finish + inst.edge_time(e);
    if (placement[edge.dst].start <
        ready - tol(rel, ready, placement[edge.dst].start)) {
      std::ostringstream os;
      os << "module " << wf.module(edge.dst).name << " starts at "
         << fmt(placement[edge.dst].start) << " before predecessor "
         << wf.module(edge.src).name << " delivers at " << fmt(ready);
      diag.error("precedence-violation", os.str());
    }
  }

  // Exclusivity per machine; fixed modules model input/output staging and
  // do not occupy machine time.
  std::vector<std::vector<NodeId>> on_machine(machines.size());
  for (NodeId i = 0; i < m; ++i)
    if (!wf.module(i).is_fixed()) on_machine[placement[i].machine].push_back(i);
  for (std::size_t mach = 0; mach < on_machine.size(); ++mach) {
    auto& mods = on_machine[mach];
    std::sort(mods.begin(), mods.end(), [&](NodeId a, NodeId b) {
      return placement[a].start < placement[b].start;
    });
    for (std::size_t k = 1; k < mods.size(); ++k) {
      const auto& prev = placement[mods[k - 1]];
      const auto& cur = placement[mods[k]];
      if (cur.start < prev.finish - tol(rel, prev.finish, cur.start)) {
        std::ostringstream os;
        os << "machine " << mach << ": modules "
           << wf.module(mods[k - 1]).name << " and " << wf.module(mods[k]).name
           << " overlap ([" << fmt(prev.start) << ", " << fmt(prev.finish)
           << ") vs [" << fmt(cur.start) << ", " << fmt(cur.finish) << "))";
        diag.error("machine-overlap", os.str());
      }
    }
  }

  if (!close(rel, makespan, latest)) {
    diag.error("makespan-mismatch", "reported makespan " + fmt(makespan) +
                                        " != latest finish " + fmt(latest));
  }
  return diag;
}

Diagnostics verify_reuse_plan(const sched::Instance& inst,
                              const sched::Schedule& schedule,
                              const sched::ReusePlan& plan,
                              const VerifyOptions& options) {
  constexpr std::size_t kNoInstance = std::numeric_limits<std::size_t>::max();
  Diagnostics diag = verify_workflow(inst.workflow());
  if (!diag.ok()) return diag;

  const std::size_t m = inst.module_count();
  const auto& wf = inst.workflow();
  const double rel = options.rel_tol;

  if (plan.instance_of.size() != m || schedule.type_of.size() != m) {
    std::ostringstream os;
    os << "plan covers " << plan.instance_of.size() << " modules, schedule "
       << schedule.type_of.size() << ", instance has " << m;
    diag.error("reuse-index", os.str());
    return diag;
  }

  for (NodeId i = 0; i < m; ++i) {
    const std::size_t idx = plan.instance_of[i];
    if (wf.module(i).is_fixed()) {
      if (idx != kNoInstance)
        diag.error("reuse-index", "fixed module " + wf.module(i).name +
                                      " assigned to a VM instance");
      continue;
    }
    if (idx >= plan.instances.size()) {
      std::ostringstream os;
      os << "module " << wf.module(i).name << " assigned to VM instance "
         << idx << ", plan has " << plan.instances.size();
      diag.error("reuse-index", os.str());
      continue;
    }
    if (plan.instances[idx].type != schedule.type_of[i]) {
      std::ostringstream os;
      os << "module " << wf.module(i).name << " scheduled on type "
         << schedule.type_of[i] << " but its VM instance " << idx
         << " has type " << plan.instances[idx].type;
      diag.error("reuse-type-mismatch", os.str());
    }
  }

  // Recompute module execution windows (CPM est placement, the plan's
  // contract) and check exclusivity + span per instance.
  std::vector<double> durations(m);
  for (NodeId i = 0; i < m; ++i) {
    durations[i] = schedule.type_of[i] < inst.type_count()
                       ? inst.time(i, schedule.type_of[i])
                       : 0.0;
  }
  const auto ft = forward_pass(wf.graph(), durations, inst.edge_times());

  double derived_billed = 0.0;
  for (std::size_t idx = 0; idx < plan.instances.size(); ++idx) {
    const auto& vm = plan.instances[idx];
    double span_start = std::numeric_limits<double>::infinity();
    double span_finish = 0.0;
    double previous_finish = -std::numeric_limits<double>::infinity();
    for (NodeId v : vm.modules) {
      if (v >= m || plan.instance_of[v] != idx) {
        std::ostringstream os;
        os << "VM instance " << idx << " lists module " << v
           << " which is not assigned to it";
        diag.error("reuse-index", os.str());
        continue;
      }
      const double start = ft.est[v];
      const double finish = ft.eft[v];
      if (start < previous_finish - tol(rel, previous_finish, start)) {
        std::ostringstream os;
        os << "VM instance " << idx << ": module " << wf.module(v).name
           << " starts at " << fmt(start)
           << " before the previous module finishes at "
           << fmt(previous_finish);
        diag.error("reuse-overlap", os.str());
      }
      previous_finish = std::max(previous_finish, finish);
      span_start = std::min(span_start, start);
      span_finish = std::max(span_finish, finish);
    }
    if (!vm.modules.empty() &&
        (!close(rel, vm.first_start, span_start) ||
         !close(rel, vm.last_finish, span_finish))) {
      std::ostringstream os;
      os << "VM instance " << idx << " span [" << fmt(vm.first_start) << ", "
         << fmt(vm.last_finish) << "] != module span [" << fmt(span_start)
         << ", " << fmt(span_finish) << "]";
      diag.error("reuse-span", os.str());
    }
    derived_billed += inst.billing().cost(
        vm.uptime(), inst.catalog().type(vm.type).cost_rate);
  }
  if (!close(rel, derived_billed, plan.billed_cost_uptime)) {
    diag.error("reuse-cost-mismatch",
               "reported uptime billing " + fmt(plan.billed_cost_uptime) +
                   " != re-derived " + fmt(derived_billed));
  }
  return diag;
}

}  // namespace medcc::analysis
