#include "analysis/diagnostics.hpp"

#include <algorithm>
#include <sstream>

namespace medcc::analysis {

std::string_view to_string(Severity severity) {
  switch (severity) {
    case Severity::Info: return "info";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "unknown";
}

void Diagnostics::add(Severity severity, std::string rule,
                      std::string message) {
  items_.push_back(
      Diagnostic{severity, std::move(rule), std::move(message)});
}

void Diagnostics::info(std::string rule, std::string message) {
  add(Severity::Info, std::move(rule), std::move(message));
}

void Diagnostics::warning(std::string rule, std::string message) {
  add(Severity::Warning, std::move(rule), std::move(message));
}

void Diagnostics::error(std::string rule, std::string message) {
  add(Severity::Error, std::move(rule), std::move(message));
}

void Diagnostics::merge(const Diagnostics& other) {
  items_.insert(items_.end(), other.items_.begin(), other.items_.end());
}

std::size_t Diagnostics::error_count() const {
  return static_cast<std::size_t>(
      std::count_if(items_.begin(), items_.end(), [](const Diagnostic& d) {
        return d.severity == Severity::Error;
      }));
}

std::size_t Diagnostics::warning_count() const {
  return static_cast<std::size_t>(
      std::count_if(items_.begin(), items_.end(), [](const Diagnostic& d) {
        return d.severity == Severity::Warning;
      }));
}

bool Diagnostics::has(std::string_view rule) const {
  return std::any_of(items_.begin(), items_.end(),
                     [&](const Diagnostic& d) { return d.rule == rule; });
}

std::vector<Diagnostic> Diagnostics::findings(std::string_view rule) const {
  std::vector<Diagnostic> out;
  for (const auto& d : items_)
    if (d.rule == rule) out.push_back(d);
  return out;
}

std::string Diagnostics::to_string() const {
  if (items_.empty()) return "no findings";
  std::ostringstream os;
  for (std::size_t k = 0; k < items_.size(); ++k) {
    if (k != 0) os << '\n';
    os << analysis::to_string(items_[k].severity) << " [" << items_[k].rule
       << "] " << items_[k].message;
  }
  return os.str();
}

void Diagnostics::throw_if_errors(std::string_view context) const {
  if (ok()) return;
  std::ostringstream os;
  os << "invariant violation in " << context << " (" << error_count()
     << " error(s)):";
  for (const auto& d : items_)
    if (d.severity == Severity::Error)
      os << "\n  [" << d.rule << "] " << d.message;
  throw InvariantViolation(os.str());
}

}  // namespace medcc::analysis
