// Structured diagnostics for the invariant-verification layer.
//
// A Diagnostics object is the result of running one or more verifiers
// (analysis/verify.hpp): a flat list of findings, each tagged with a
// stable kebab-case rule id and a severity. Error findings mean the
// checked artifact violates a hard invariant of the paper's model (a
// schedule over budget, a precedence violation, a cycle); Warning
// findings are suspicious-but-legal states; Info findings are neutral
// observations useful in reports.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace medcc::analysis {

enum class Severity { Info, Warning, Error };

[[nodiscard]] std::string_view to_string(Severity severity);

/// One finding of a verifier run.
struct Diagnostic {
  Severity severity = Severity::Info;
  /// Stable kebab-case rule id, e.g. "cycle", "over-budget",
  /// "precedence-violation". Tests match on this, not on the message.
  std::string rule;
  /// Human-readable explanation with the offending values.
  std::string message;
};

/// Thrown by Diagnostics::throw_if_errors when a hard invariant fails.
class InvariantViolation : public Error {
public:
  explicit InvariantViolation(const std::string& what) : Error(what) {}
};

/// An append-only report of verifier findings.
class Diagnostics {
public:
  void add(Severity severity, std::string rule, std::string message);
  void info(std::string rule, std::string message);
  void warning(std::string rule, std::string message);
  void error(std::string rule, std::string message);

  /// Appends every finding of `other`.
  void merge(const Diagnostics& other);

  [[nodiscard]] const std::vector<Diagnostic>& items() const { return items_; }
  [[nodiscard]] bool empty() const { return items_.empty(); }

  /// True when no Error-severity finding is present (warnings allowed).
  [[nodiscard]] bool ok() const { return error_count() == 0; }

  [[nodiscard]] std::size_t error_count() const;
  [[nodiscard]] std::size_t warning_count() const;

  /// True when at least one finding carries `rule`.
  [[nodiscard]] bool has(std::string_view rule) const;
  /// Findings carrying `rule`, in insertion order.
  [[nodiscard]] std::vector<Diagnostic> findings(std::string_view rule) const;

  /// Multi-line "severity [rule] message" rendering; empty reports render
  /// as "no findings".
  [[nodiscard]] std::string to_string() const;

  /// Throws InvariantViolation listing every Error finding; `context`
  /// names the checked artifact (e.g. the scheduler that produced it).
  void throw_if_errors(std::string_view context) const;

private:
  std::vector<Diagnostic> items_;
};

}  // namespace medcc::analysis
