// Machine-checked feasibility: independent re-derivation of the paper's
// invariants for workflows, schedules, machine placements, and VM-reuse
// plans.
//
// The verifiers deliberately do NOT call the code under test:
// verify_schedule() re-derives every module cost from the billing policy
// (Eq. 7) instead of trusting the Instance's cached CE matrix, and
// recomputes est/eft/makespan with its own forward pass instead of
// calling dag::compute_cpm. A scheduler bug that corrupts an Evaluation
// therefore cannot also corrupt the check.
//
// Rule ids emitted (stable, matched by tests):
//   verify_workflow : cycle, multi-source, multi-sink, empty-workflow,
//                     negative-workload, negative-data-size, unreachable,
//                     zero-workload (warning), redundant-edge (info)
//   verify_schedule : mapping-size, dangling-vm-type, cost-table-mismatch,
//                     cost-mismatch, over-budget, missed-deadline,
//                     timing-size, timing-inconsistent,
//                     precedence-violation, makespan-mismatch,
//                     budget-slack (info)
//   verify_placement: placement-size, dangling-machine,
//                     precedence-violation, machine-overlap,
//                     makespan-mismatch, duration-mismatch
//   verify_reuse_plan: reuse-index, reuse-type-mismatch, reuse-overlap,
//                     reuse-span, reuse-cost-mismatch
#pragma once

#include <limits>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "cloud/vm_type.hpp"
#include "sched/heft.hpp"
#include "sched/instance.hpp"
#include "sched/schedule.hpp"
#include "sched/vm_reuse.hpp"
#include "workflow/workflow.hpp"

namespace medcc::analysis {

/// Tolerances and constraint bounds for schedule verification.
struct VerifyOptions {
  /// Budget B the schedule must respect; infinity disables the check.
  double budget = std::numeric_limits<double>::infinity();
  /// Deadline the makespan must respect; infinity disables the check.
  double deadline = std::numeric_limits<double>::infinity();
  /// Relative tolerance for floating-point comparisons (scaled by the
  /// magnitude of the compared quantities, floor 1.0).
  double rel_tol = 1e-6;
};

/// Structural invariants of Section III-B: DAG-ness, a unique entry and
/// exit, full entry->exit coverage, non-negative workloads and data sizes.
[[nodiscard]] Diagnostics verify_workflow(const workflow::Workflow& wf);

/// Full feasibility check of (schedule, reported evaluation) against
/// `inst`: valid VM-type mapping, Eq. 7 costs re-derived from the billing
/// policy match both the instance's CE table and the reported cost, the
/// cost fits options.budget, the reported est/eft respect every
/// precedence edge, and the reported makespan equals an independently
/// recomputed critical-path length.
[[nodiscard]] Diagnostics verify_schedule(const sched::Instance& inst,
                                          const sched::Schedule& schedule,
                                          const sched::Evaluation& reported,
                                          const VerifyOptions& options = {});

/// Feasibility of a bounded-pool placement (HEFT/HBMCT): every module on
/// a valid machine, start/finish consistent with the machine's speed,
/// precedence respected, no two modules overlapping on one machine, and
/// the reported makespan equal to the latest finish.
[[nodiscard]] Diagnostics verify_placement(
    const sched::Instance& inst, const std::vector<cloud::VmType>& machines,
    const std::vector<sched::HeftPlacement>& placement, double makespan,
    const VerifyOptions& options = {});

/// Consistency of a VM-reuse plan with its schedule: instance_of indices
/// valid and type-consistent, no overlapping executions sharing one VM,
/// instance spans covering their modules, and the uptime billing equal to
/// a re-derived quantum billing of every instance span.
[[nodiscard]] Diagnostics verify_reuse_plan(const sched::Instance& inst,
                                            const sched::Schedule& schedule,
                                            const sched::ReusePlan& plan,
                                            const VerifyOptions& options = {});

}  // namespace medcc::analysis
