// Low-overhead per-request tracing for the serving stack.
//
// Every traced request gets a 128-bit trace id, minted at the client
// edge (or set explicitly on the request); servers adopt contexts off
// the wire rather than minting their own, so untraced legacy clients
// cost nothing beyond aggregates. As the request moves through the stack --
// reactor decode, admission-queue wait, solver execution, cache lookup,
// persistence append, replication push/apply -- each stage records a
// Span {stage, start_ns, end_ns} against the request's Trace. The
// trace id travels with the request over the wire (a protocol-v2
// feature bit, docs/observability.md), so one id names the whole
// journey even across a ClusterClient failover retry and onto the
// replica that applies the replicated cache record.
//
// Cost model, hot path first:
//
//  * Aggregate per-stage accounting (count + total ns) is ALWAYS on and
//    is the only thing an unsampled request pays: one relaxed
//    PaddedAtomic add per stage into a thread-hashed shard -- no locks,
//    no allocation, no shared cache line.
//  * Span capture is head-sampled 1-in-N (Config::sample_every) at the
//    moment the trace id is minted; a sampled request carries a small
//    fixed-capacity span buffer (one allocation per sampled request).
//  * Slow outliers are never lost to sampling: when Config::slow_ms > 0
//    every request buffers spans, and finish() keeps any trace whose
//    wall time crosses the threshold even if head sampling said no.
//
// Completed traces land in a bounded ring (mutex-guarded -- finish()
// runs at most once per request, far off the per-stage hot path) that
// the trace_dump admin frame and tools/medcc_tracectl read back:
// recent traces, slowest-N, per-stage breakdown.
//
// Thread contract: Tracer is fully thread-safe. A Trace's span buffer
// is append-only through an atomic cursor, so stages on different
// threads (worker vs reactor) may record concurrently; readers only
// see slots published by finish().
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.hpp"
#include "util/padded.hpp"
#include "util/thread_annotations.hpp"

namespace medcc::obs {

/// 128-bit trace identifier; zero means "no trace".
struct TraceId {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  [[nodiscard]] bool valid() const { return hi != 0 || lo != 0; }
  /// 32 lowercase hex digits, hi first ("0000..0000" when invalid).
  [[nodiscard]] std::string to_hex() const;
  /// Parses exactly 32 hex digits; returns an invalid id on any junk.
  [[nodiscard]] static TraceId from_hex(std::string_view text);

  friend bool operator==(const TraceId& a, const TraceId& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
};

/// What travels with a request: the id plus the head-sampling verdict
/// made where the id was minted (so every hop agrees on whether to
/// buffer spans). 17 bytes on the wire: u64 hi, u64 lo, u8 flags.
struct TraceContext {
  TraceId id;
  bool sampled = false;

  [[nodiscard]] bool valid() const { return id.valid(); }
};

/// Pipeline stages a span can cover. Order is the wire encoding and the
/// dump order; append only.
enum class Stage : std::uint8_t {
  request = 0,       ///< whole request, edge to edge
  decode = 1,        ///< reactor-side frame decode
  queue_wait = 2,    ///< admission queue residency
  solve = 3,         ///< solver execution (cache misses only)
  cache_lookup = 4,  ///< result-cache probe (fingerprint + find)
  wire_fastpath = 5, ///< zero-copy wire-cache hit serve
  persist_append = 6,///< durable-store journal append
  repl_push = 7,     ///< replication publish on the solving node
  repl_apply = 8,    ///< replicated-record apply on a peer
  client_attempt = 9,///< one client send+wait (per failover attempt)
  client_failover = 10, ///< client-side failover pause + reroute
};

inline constexpr std::size_t kStageCount = 11;

[[nodiscard]] const char* to_string(Stage stage);

/// One timed interval inside a trace. Times are Tracer::now_ns()
/// (steady clock) on the recording node.
struct Span {
  Stage stage = Stage::request;
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;

  [[nodiscard]] std::int64_t duration_ns() const { return end_ns - start_ns; }
};

/// The in-flight span buffer of one sampled (or slow-candidate)
/// request: fixed capacity, slots claimed with a relaxed atomic cursor
/// so concurrent stages never contend on a lock. Overflowing spans are
/// counted and dropped.
class Trace {
public:
  Trace(TraceId id, std::int64_t started_ns, std::size_t capacity);

  /// Thread-safe append; drops (and counts) once full.
  void add(Stage stage, std::int64_t start_ns, std::int64_t end_ns);

  [[nodiscard]] const TraceId& id() const { return id_; }
  [[nodiscard]] std::int64_t started_ns() const { return started_ns_; }
  /// Spans published so far (finish() is the only intended reader).
  [[nodiscard]] std::vector<Span> spans() const;
  [[nodiscard]] std::uint64_t overflow() const { return overflow_.load(); }

private:
  const TraceId id_;
  const std::int64_t started_ns_;
  std::atomic<std::uint32_t> size_{0};
  /// Slot i is written exactly once by the thread that claimed it; the
  /// relaxed cursor is enough because readers run after the request's
  /// completion callback (a happens-before edge the server provides).
  std::vector<Span> slots_;
  util::PaddedAtomic<std::uint64_t> overflow_;
};

/// One completed, retained trace as seen by trace_dump.
struct TraceRecord {
  TraceId id;
  std::string origin;  ///< node id (or "client") that finished it
  std::int64_t started_ns = 0;
  std::int64_t total_ns = 0;
  bool slow = false;   ///< kept by the slow gate, not head sampling
  std::vector<Span> spans;
};

/// Aggregate view of one stage across all requests since start.
struct StageStat {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
};

/// Counters + per-stage aggregates; cheap to take at any time.
struct TracerSnapshot {
  bool enabled = false;
  std::uint64_t started = 0;    ///< trace contexts minted
  std::uint64_t sampled = 0;    ///< head-sampled at mint time
  std::uint64_t completed = 0;  ///< traces retained in the ring
  std::uint64_t dropped = 0;    ///< finished but not retained
  std::array<StageStat, kStageCount> stages{};
};

class Tracer {
public:
  struct Config {
    bool enabled = true;
    /// Head sampling: keep spans for 1 in N minted contexts (0 = none).
    std::uint32_t sample_every = 64;
    /// Always retain traces slower than this (0 = slow gate off).
    double slow_ms = 25.0;
    /// Bounded ring of retained completed traces (oldest evicted).
    std::size_t ring_capacity = 256;
    /// Span-buffer capacity per trace; excess spans are dropped.
    std::size_t max_spans = 32;
  };

  Tracer();  ///< default Config
  explicit Tracer(Config config);

  [[nodiscard]] bool enabled() const { return config_.enabled; }
  [[nodiscard]] const Config& config() const { return config_; }

  /// Steady-clock nanoseconds; the time base of every span.
  [[nodiscard]] static std::int64_t now_ns();

  /// Mints a fresh id + head-sampling verdict. Cheap (SplitMix64 over
  /// an atomic counter); returns an invalid context when disabled.
  [[nodiscard]] TraceContext new_context();

  /// Opens the span buffer for a request. Non-null when tracing is on
  /// and the request is head-sampled OR the slow gate is armed (every
  /// request is then a slow candidate). Null means: aggregate-only.
  [[nodiscard]] std::shared_ptr<Trace> open(const TraceContext& context);

  /// Records one span: aggregates always, the span buffer when `trace`
  /// is non-null. Safe with trace == nullptr.
  void record(const std::shared_ptr<Trace>& trace, Stage stage,
              std::int64_t start_ns, std::int64_t end_ns);

  /// Aggregate-only accounting for paths that never buffer spans
  /// (e.g. the unsampled wire-cache fast path). Lock-free.
  void note_stage(Stage stage, std::int64_t duration_ns);

  /// Completes a trace: retains it in the ring when it was head-sampled
  /// or its wall time crossed slow_ms. Safe with trace == nullptr.
  void finish(const std::shared_ptr<Trace>& trace, std::string_view origin);

  /// Single-span accounting for paths whose whole journey is one
  /// interval and whose duration is known up front (the zero-copy
  /// wire-cache hit): aggregates always, and retains a one-span ring
  /// entry when the context was sampled OR the interval crossed the
  /// slow gate. No span buffer, no allocation -- this is what keeps
  /// tracing within its <5% fast-path budget (bench/net_throughput
  /// --trace-overhead).
  void record_span(const TraceContext& context, Stage stage,
                   std::int64_t start_ns, std::int64_t end_ns,
                   std::string_view origin);

  /// Adopts one remotely originated span (e.g. repl_apply on the node
  /// that received the record): record_span keyed by the ORIGINAL
  /// trace id so dumps across nodes correlate.
  void record_remote(const TraceContext& context, Stage stage,
                     std::int64_t start_ns, std::int64_t end_ns,
                     std::string_view origin);

  [[nodiscard]] TracerSnapshot snapshot() const;
  /// Most recent retained traces, newest first, at most `limit`.
  [[nodiscard]] std::vector<TraceRecord> recent(std::size_t limit) const;
  /// Slowest retained traces, slowest first, at most `limit`.
  [[nodiscard]] std::vector<TraceRecord> slowest(std::size_t limit) const;

private:
  /// The 1-in-N head-sampling choice, re-derivable from the id alone.
  /// The id is uniform, so "lo % N == 0" is unbiased; for the common
  /// power-of-two N a precomputed mask avoids the integer division on
  /// the mint path.
  [[nodiscard]] bool head_sampled(const TraceId& id) const {
    if (config_.sample_every == 0) return false;
    if (sample_mask_ != 0) return (id.lo & sample_mask_) == 0;
    return id.lo % config_.sample_every == 0;
  }

  void retain(TraceRecord record) MEDCC_EXCLUDES(ring_mutex_);

  /// Per-stage aggregates, sharded by thread hash to keep concurrent
  /// workers off each other's cache lines. One cell = one cache line:
  /// count and total_ns are always bumped together by the same thread,
  /// so padding them apart (two PaddedAtomics) would double the lines
  /// touched per note_stage for no sharing benefit.
  static constexpr std::size_t kShards = 8;
  struct alignas(util::kCacheLineSize) StageCell {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> total_ns{0};
  };

  const Config config_;
  /// sample_every - 1 when sample_every is a power of two, else 0.
  const std::uint64_t sample_mask_;
  /// Per-tracer id-stream salt (process clock + instance address),
  /// fixed at construction so minting pays no clock read.
  const std::uint64_t salt_;
  /// Contexts minted; doubles as the id-stream sequence (new_context).
  util::PaddedAtomic<std::uint64_t> started_;
  util::PaddedAtomic<std::uint64_t> sampled_;
  util::PaddedAtomic<std::uint64_t> completed_;
  util::PaddedAtomic<std::uint64_t> dropped_;
  /// Relaxed atomics, sharded by thread hash; never under ring_mutex_.
  MEDCC_NOT_GUARDED
  std::array<std::array<StageCell, kStageCount>, kShards> stages_;

  mutable util::Mutex ring_mutex_;
  std::deque<TraceRecord> ring_ MEDCC_GUARDED_BY(ring_mutex_);
};

}  // namespace medcc::obs
