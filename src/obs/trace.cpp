#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <functional>
#include <thread>

namespace medcc::obs {

namespace {

/// SplitMix64 finalizer: a full-avalanche bijection, so distinct inputs
/// give distinct, well-spread ids. Statistical (not cryptographic)
/// uniqueness is all a trace id needs.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t thread_seed() {
  // Hashed once per thread: this sits on the per-stage hot path, where
  // a fresh std::hash<std::thread::id> per call is measurable. The
  // avalanche matters too -- raw thread hashes are often near-adjacent
  // pointers whose small XOR deltas would let two threads' id streams
  // overlap (see new_context).
  static thread_local const std::uint64_t seed =
      mix64(std::hash<std::thread::id>{}(std::this_thread::get_id()));
  return seed;
}

/// Clock-derived entropy folded into every id, computed once: minting
/// must not pay a clock read per request.
std::uint64_t process_salt() {
  static const std::uint64_t salt = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return salt;
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

void hex16(std::string& out, std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  for (int shift = 60; shift >= 0; shift -= 4)
    out.push_back(kDigits[(v >> shift) & 0xF]);
}

}  // namespace

std::string TraceId::to_hex() const {
  std::string out;
  out.reserve(32);
  hex16(out, hi);
  hex16(out, lo);
  return out;
}

TraceId TraceId::from_hex(std::string_view text) {
  if (text.size() != 32) return {};
  TraceId id;
  for (int i = 0; i < 16; ++i) {
    const int d = hex_digit(text[static_cast<std::size_t>(i)]);
    if (d < 0) return {};
    id.hi = (id.hi << 4) | static_cast<std::uint64_t>(d);
  }
  for (int i = 16; i < 32; ++i) {
    const int d = hex_digit(text[static_cast<std::size_t>(i)]);
    if (d < 0) return {};
    id.lo = (id.lo << 4) | static_cast<std::uint64_t>(d);
  }
  return id;
}

const char* to_string(Stage stage) {
  switch (stage) {
    case Stage::request: return "request";
    case Stage::decode: return "decode";
    case Stage::queue_wait: return "queue_wait";
    case Stage::solve: return "solve";
    case Stage::cache_lookup: return "cache_lookup";
    case Stage::wire_fastpath: return "wire_fastpath";
    case Stage::persist_append: return "persist_append";
    case Stage::repl_push: return "repl_push";
    case Stage::repl_apply: return "repl_apply";
    case Stage::client_attempt: return "client_attempt";
    case Stage::client_failover: return "client_failover";
  }
  return "unknown";
}

// -- Trace ----------------------------------------------------------------

Trace::Trace(TraceId id, std::int64_t started_ns, std::size_t capacity)
    : id_(id), started_ns_(started_ns), slots_(std::max<std::size_t>(capacity, 1)) {}

void Trace::add(Stage stage, std::int64_t start_ns, std::int64_t end_ns) {
  const std::uint32_t slot = size_.fetch_add(1, std::memory_order_relaxed);
  if (slot >= slots_.size()) {
    overflow_.add();
    return;
  }
  slots_[slot] = Span{stage, start_ns, end_ns};
}

std::vector<Span> Trace::spans() const {
  const std::uint32_t n = std::min<std::uint32_t>(
      size_.load(std::memory_order_relaxed),
      static_cast<std::uint32_t>(slots_.size()));
  return {slots_.begin(), slots_.begin() + n};
}

// -- Tracer ---------------------------------------------------------------

Tracer::Tracer() : Tracer(Config()) {}

Tracer::Tracer(Config config)
    : config_(config),
      sample_mask_(config.sample_every != 0 &&
                           (config.sample_every &
                            (config.sample_every - 1)) == 0
                       ? config.sample_every - 1
                       : 0),
      // The clock decorrelates processes, the address decorrelates
      // tracers within one process (two edge tracers minting on the
      // same thread must not collide); both folded in once, at
      // construction, so minting pays neither.
      salt_(mix64(process_salt() ^
                  static_cast<std::uint64_t>(
                      reinterpret_cast<std::uintptr_t>(this)))) {}

std::int64_t Tracer::now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

TraceContext Tracer::new_context() {
  if (!config_.enabled) return {};
  // One relaxed fetch_add is the whole synchronization cost: the mint
  // sequence doubles as the `started` counter, and the two mix64
  // avalanches of consecutive stream positions give independent,
  // well-spread halves (exactly the SplitMix64 construction).
  const std::uint64_t seq = started_.fetch_add(1);
  const std::uint64_t stream = (seq ^ salt_ ^ thread_seed()) * 2;
  TraceContext context;
  context.id.hi = mix64(stream);
  context.id.lo = mix64(stream + 1);
  if (!context.id.valid()) context.id.lo = 1;  // astronomically unlikely
  context.sampled = head_sampled(context.id);
  if (context.sampled) sampled_.add();
  return context;
}

std::shared_ptr<Trace> Tracer::open(const TraceContext& context) {
  if (!config_.enabled || !context.valid()) return nullptr;
  // Slow capture needs the spans before anyone knows the request is
  // slow, so an armed slow gate buffers every request. The allocation
  // sits on paths already paying queue hops or solver calls; the
  // zero-copy fast path opens no buffer for unsampled requests.
  if (!context.sampled && config_.slow_ms <= 0.0) return nullptr;
  return std::make_shared<Trace>(context.id, now_ns(), config_.max_spans);
}

void Tracer::record(const std::shared_ptr<Trace>& trace, Stage stage,
                    std::int64_t start_ns, std::int64_t end_ns) {
  note_stage(stage, end_ns - start_ns);
  if (trace != nullptr) trace->add(stage, start_ns, end_ns);
}

void Tracer::note_stage(Stage stage, std::int64_t duration_ns) {
  if (!config_.enabled) return;
  const std::size_t shard = thread_seed() % kShards;
  auto& cell = stages_[shard][static_cast<std::size_t>(stage)];
  cell.count.fetch_add(1, std::memory_order_relaxed);
  cell.total_ns.fetch_add(duration_ns > 0
                              ? static_cast<std::uint64_t>(duration_ns)
                              : 0,
                          std::memory_order_relaxed);
}

void Tracer::finish(const std::shared_ptr<Trace>& trace,
                    std::string_view origin) {
  if (trace == nullptr) return;
  TraceRecord record;
  record.id = trace->id();
  record.origin.assign(origin);
  record.started_ns = trace->started_ns();
  record.spans = trace->spans();
  std::int64_t end = record.started_ns;
  for (const Span& span : record.spans) end = std::max(end, span.end_ns);
  record.total_ns = end - record.started_ns;
  const bool slow =
      config_.slow_ms > 0.0 &&
      static_cast<double>(record.total_ns) >= config_.slow_ms * 1e6;
  // Head-sampled traces are re-derivable from the id (see new_context);
  // everything else in the ring earned its place by being slow.
  const bool sampled = head_sampled(record.id);
  if (!sampled && !slow) {
    dropped_.add();
    return;
  }
  record.slow = slow && !sampled;
  retain(std::move(record));
}

void Tracer::record_span(const TraceContext& context, Stage stage,
                         std::int64_t start_ns, std::int64_t end_ns,
                         std::string_view origin) {
  if (!config_.enabled) return;
  note_stage(stage, end_ns - start_ns);
  if (!context.valid()) return;
  const bool slow =
      config_.slow_ms > 0.0 &&
      static_cast<double>(end_ns - start_ns) >= config_.slow_ms * 1e6;
  // The duration is already known, so the slow gate needs no buffered
  // spans here -- the unsampled, not-slow common case returns without
  // having allocated anything.
  if (!context.sampled && !slow) return;
  TraceRecord record;
  record.id = context.id;
  record.origin.assign(origin);
  record.started_ns = start_ns;
  record.total_ns = end_ns - start_ns;
  record.slow = slow && !context.sampled;
  record.spans.push_back(Span{stage, start_ns, end_ns});
  retain(std::move(record));
}

void Tracer::record_remote(const TraceContext& context, Stage stage,
                           std::int64_t start_ns, std::int64_t end_ns,
                           std::string_view origin) {
  record_span(context, stage, start_ns, end_ns, origin);
}

void Tracer::retain(TraceRecord record) {
  util::MutexLock lock(ring_mutex_);
  ring_.push_back(std::move(record));
  while (ring_.size() > config_.ring_capacity) ring_.pop_front();
  completed_.add();
}

TracerSnapshot Tracer::snapshot() const {
  TracerSnapshot snap;
  snap.enabled = config_.enabled;
  snap.started = started_.load();
  snap.sampled = sampled_.load();
  snap.completed = completed_.load();
  snap.dropped = dropped_.load();
  for (const auto& shard : stages_) {
    for (std::size_t s = 0; s < kStageCount; ++s) {
      snap.stages[s].count +=
          shard[s].count.load(std::memory_order_relaxed);
      snap.stages[s].total_ns +=
          shard[s].total_ns.load(std::memory_order_relaxed);
    }
  }
  return snap;
}

std::vector<TraceRecord> Tracer::recent(std::size_t limit) const {
  util::MutexLock lock(ring_mutex_);
  std::vector<TraceRecord> out;
  const std::size_t n = std::min(limit, ring_.size());
  out.reserve(n);
  for (auto it = ring_.rbegin(); it != ring_.rend() && out.size() < n; ++it)
    out.push_back(*it);
  return out;
}

std::vector<TraceRecord> Tracer::slowest(std::size_t limit) const {
  std::vector<TraceRecord> out;
  {
    util::MutexLock lock(ring_mutex_);
    out.assign(ring_.begin(), ring_.end());
  }
  std::sort(out.begin(), out.end(),
            [](const TraceRecord& a, const TraceRecord& b) {
              return a.total_ns > b.total_ns;
            });
  if (out.size() > limit) out.resize(limit);
  return out;
}

}  // namespace medcc::obs
