// Reproduces Table IV and Fig. 8: average MED of Critical-Greedy and GAIN3
// across 20 budget levels for the paper's 20 problem sizes (one random
// instance per size), with the improvement percentage and CG/GAIN ratio.
#include <array>
#include <iostream>

#include "expr/compare.hpp"
#include "sched/lower_bound.hpp"
#include "util/ascii_plot.hpp"
#include "util/table.hpp"
#include "sched/bounds.hpp"
#include "sched/critical_greedy.hpp"
#include "util/thread_pool.hpp"

namespace {

// Table IV as printed in the paper, for side-by-side comparison.
constexpr std::array<double, 20> kPaperImp = {
    0.00,  6.72,  14.82, 12.93, 21.11, 17.95, 17.83, 18.27, 13.89, 20.48,
    19.65, 34.20, 33.46, 27.67, 18.57, 23.72, 25.07, 30.16, 32.53, 20.50};

}  // namespace

int main() {
  std::cout << "=== Table IV / Fig. 8 -- avg MED of CG and GAIN3 over 20 "
               "budget levels ===\n\n";
  auto& pool = medcc::util::global_pool();
  const auto summaries = medcc::expr::table4_sweep(pool, /*seed=*/4242);

  medcc::util::Table t({"idx", "(m,|Ew|,n)", "CG", "GAIN3", "Imp (%)",
                        "ratio", "paper Imp (%)", "CG/LB"});
  std::vector<double> xs, imp;
  double mean_imp = 0.0;
  for (std::size_t s = 0; s < summaries.size(); ++s) {
    const auto& row = summaries[s];
    const std::string label = "(" + std::to_string(row.size.modules) + "," +
                              std::to_string(row.size.edges) + "," +
                              std::to_string(row.size.types) + ")";
    // Certified optimality gap at the median budget of the same
    // instance: CG MED over the per-path lower bound (1.00 = provably
    // optimal; the bound itself is conservative, so the true gap is at
    // most the printed ratio).
    medcc::util::Prng lb_rng(4242);
    auto fork = lb_rng.fork(s);
    const auto inst = medcc::expr::make_instance(row.size, fork);
    const auto lb_bounds = medcc::sched::cost_bounds(inst);
    const double lb_budget = 0.5 * (lb_bounds.cmin + lb_bounds.cmax);
    const double lb = medcc::sched::med_lower_bound(inst, lb_budget);
    const double cg_at = medcc::sched::critical_greedy(inst, lb_budget).eval.med;
    t.add_row({medcc::util::fmt(s + 1), label,
               medcc::util::fmt(row.avg_med_cg, 2),
               medcc::util::fmt(row.avg_med_gain, 2),
               medcc::util::fmt(row.avg_improvement, 2),
               medcc::util::fmt(row.ratio, 2),
               medcc::util::fmt(kPaperImp[s], 2),
               medcc::util::fmt(lb > 0.0 ? cg_at / lb : 0.0, 2)});
    xs.push_back(static_cast<double>(s + 1));
    imp.push_back(row.avg_improvement);
    mean_imp += row.avg_improvement;
  }
  std::cout << t.render() << '\n';
  mean_imp /= static_cast<double>(summaries.size());
  std::cout << "mean improvement over all sizes: "
            << medcc::util::fmt(mean_imp, 2)
            << "% (paper's Table IV mean: 20.48%)\n\n";

  medcc::util::Series series{"avg MED improvement of CG over GAIN3 (%)", xs,
                             imp, '*'};
  medcc::util::PlotOptions opts;
  opts.title = "Fig. 8 -- average improvement per problem size";
  opts.x_label = "problem index";
  opts.y_label = "improvement (%)";
  std::cout << medcc::util::line_plot(
      std::vector<medcc::util::Series>{series}, opts);
  return 0;
}
