// Open-loop load generator for the scheduling service: replays a
// duplicate-heavy stream of randomized workflow instances (verbatim
// repeats plus module/catalog-permuted twins) against the service with
// the result cache enabled and disabled, and reports throughput and
// latency percentiles for both runs.
//
// The duplicate-heavy mix models a production queue where many users
// resubmit the same pipelines: only the first occurrence of each
// distinct problem pays a solver call, so with the cache on the stream
// should complete several times faster than with the cache off (the
// acceptance target of the service PR is >= 5x on this workload).
//
// Usage: service_throughput [--requests N] [--distinct K] [--threads T]
//                           [--solver NAME] [--seed S] [--smoke]
//                           [--json PATH] [--warm-start --cache-dir DIR]
// --smoke shrinks the stream so the binary doubles as a ctest smoke
// check; it exits non-zero if the two runs disagree on any response.
// --json writes both runs under schema "medcc-bench-serving/v1"
// (documented in docs/perf.md) for the CI-tracked baseline.
//
// --warm-start exercises durable persistence instead of the in-memory
// comparison: a seeding run fills DIR (snapshot + journal), then the
// same stream is replayed against a freshly constructed service that
// warm-starts from DIR (asserting zero cache misses and responses
// byte-identical to the seeding run) and against one restarted without
// any prior state. The warm restart must finish the stream at least 5x
// faster than the cold one -- the payoff persistence exists for.
#include <chrono>
#include <cstddef>
#include <fstream>
#include <future>
#include <iostream>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "cloud/vm_type.hpp"
#include "sched/instance.hpp"
#include "service/persistence.hpp"
#include "service/service.hpp"
#include "util/flags.hpp"
#include "util/prng.hpp"
#include "util/table.hpp"
#include "workflow/patterns.hpp"
#include "workflow/workflow.hpp"

namespace {

using medcc::cloud::VmCatalog;
using medcc::cloud::VmType;
using medcc::sched::Instance;
using medcc::service::SchedulingRequest;
using medcc::service::SchedulingResponse;
using medcc::service::SchedulingService;
using medcc::service::ServiceConfig;
using medcc::util::Prng;
using medcc::workflow::Workflow;

struct Options {
  std::size_t requests = 1000;
  std::size_t distinct = 16;
  std::size_t threads = 4;
  /// Workflow width knob; larger tiles make each solve more expensive,
  /// which is what a duplicate-heavy cache is for.
  std::size_t tiles = 12;
  /// The default measures the memoization win where it matters: the
  /// metaheuristic costs milliseconds per solve while a cache hit costs
  /// a fingerprint. Critical-Greedy itself runs in ~0.1 ms at these
  /// sizes, i.e. about one fingerprint, so `--solver cg` shows service
  /// overhead rather than cache value.
  std::string solver = "genetic";
  std::uint64_t seed = 20130801;  // ICPP'13
  bool smoke = false;
  bool warm_start = false;
  std::string cache_dir;
  std::string json_path;
};

Options parse(int argc, char** argv) {
  Options opt;
  // Strict whole-string numeric parsing (util::flags): "12x" or "-1" is
  // an immediate usage error, never a silently truncated value.
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      const auto next = [&]() -> std::string {
        if (i + 1 >= argc) {
          std::cerr << "missing value after " << arg << "\n";
          std::exit(2);
        }
        return argv[++i];
      };
      if (arg == "--requests") {
        opt.requests = medcc::util::parse_flag_size(next());
      } else if (arg == "--distinct") {
        opt.distinct = medcc::util::parse_flag_size(next());
      } else if (arg == "--threads") {
        opt.threads = medcc::util::parse_flag_size(next());
      } else if (arg == "--tiles") {
        opt.tiles = medcc::util::parse_flag_size(next());
      } else if (arg == "--solver") {
        opt.solver = next();
      } else if (arg == "--seed") {
        opt.seed = medcc::util::parse_flag_size(next());
      } else if (arg == "--smoke") {
        opt.smoke = true;
      } else if (arg == "--warm-start") {
        opt.warm_start = true;
      } else if (arg == "--cache-dir") {
        opt.cache_dir = next();
      } else if (arg == "--json") {
        opt.json_path = next();
      } else {
        std::cerr << "unknown argument: " << arg << "\n";
        std::exit(2);
      }
    }
  } catch (const std::exception& ex) {
    std::cerr << "invalid argument value: " << ex.what() << "\n";
    std::exit(2);
  }
  if (opt.smoke) {
    opt.requests = 96;
    opt.distinct = 4;
    opt.threads = 2;
    opt.tiles = 3;
  }
  if (opt.warm_start) {
    if (opt.cache_dir.empty()) {
      std::cerr << "--warm-start requires --cache-dir\n";
      std::exit(2);
    }
    if (opt.smoke) {
      // Fewer requests over more, wider workflows: the stream stays
      // fast while the solver work the warm restart avoids is large
      // enough that its advantage is unambiguous.
      opt.requests = 32;
      opt.distinct = 8;
      opt.tiles = 8;
    }
    // One worker makes insertion order (and therefore the persisted
    // entries and every replayed response) deterministic, which the
    // byte-identity assertion depends on.
    opt.threads = 1;
  }
  if (opt.distinct == 0 || opt.requests == 0) {
    std::cerr << "--requests and --distinct must be positive\n";
    std::exit(2);
  }
  return opt;
}

/// Rebuilds `wf` with modules and edges inserted in a shuffled order --
/// the same problem, different index layout.
Workflow permute_workflow(const Workflow& wf, Prng& rng) {
  std::vector<std::size_t> order(wf.module_count());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(order);
  std::vector<std::size_t> new_id(wf.module_count());
  Workflow out;
  for (const auto old_id : order) {
    const auto& mod = wf.module(old_id);
    new_id[old_id] = mod.is_fixed()
                         ? out.add_fixed_module(mod.name, *mod.fixed_time)
                         : out.add_module(mod.name, mod.workload);
  }
  std::vector<std::size_t> edges(wf.graph().edge_count());
  for (std::size_t e = 0; e < edges.size(); ++e) edges[e] = e;
  rng.shuffle(edges);
  for (const auto e : edges) {
    const auto& edge = wf.graph().edge(e);
    out.add_dependency(new_id[edge.src], new_id[edge.dst], wf.data_size(e));
  }
  return out;
}

VmCatalog permute_catalog(const VmCatalog& catalog, Prng& rng) {
  auto types = catalog.types();
  rng.shuffle(types);
  return VmCatalog(std::move(types));
}

struct Problem {
  std::shared_ptr<const Instance> instance;
  double budget = 0.0;
};

/// `distinct` base problems (Montage- and CyberShake-shaped), plus one
/// permuted twin of each; the twin shares the base's budget.
std::vector<Problem> build_problems(const Options& opt) {
  std::vector<Problem> problems;
  problems.reserve(2 * opt.distinct);
  Prng rng(opt.seed);
  const auto catalog = medcc::cloud::example_catalog();
  for (std::size_t k = 0; k < opt.distinct; ++k) {
    Workflow wf =
        (k % 2 == 0)
            ? medcc::workflow::montage_like(opt.tiles + k % 3, rng)
            : medcc::workflow::cybershake_like(opt.tiles + k % 3, rng);
    Workflow twin = permute_workflow(wf, rng);
    const VmCatalog twin_catalog = permute_catalog(catalog, rng);
    auto base = std::make_shared<const Instance>(
        Instance::from_model(std::move(wf), catalog));
    // A mid-range budget: cheapest-everywhere cost plus ~35% headroom.
    medcc::sched::Schedule cheapest;
    cheapest.type_of.assign(base->module_count(),
                            base->catalog().cheapest_rate_index());
    const double cmin = medcc::sched::total_cost(*base, cheapest);
    const double budget = cmin * 1.35 + 1.0;
    problems.push_back({base, budget});
    problems.push_back(
        {std::make_shared<const Instance>(
             Instance::from_model(std::move(twin), twin_catalog)),
         budget});
  }
  return problems;
}

struct RunReport {
  double wall_seconds = 0.0;
  double throughput = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  double hit_rate = 0.0;
  std::uint64_t hits_exact = 0;
  std::uint64_t hits_isomorphic = 0;
  std::uint64_t misses = 0;
};

/// Per-run knobs beyond the shared Options.
struct StreamConfig {
  bool cache_on = true;
  /// Non-empty enables durable persistence rooted here.
  std::string cache_dir;
  /// Include service construction (and so the warm-start load) in the
  /// measured wall time -- the restart modes compare whole restarts.
  bool measure_construction = false;
  /// When set, receives one serialized result per request, in stream
  /// order, for byte-identity comparison across restarts.
  std::vector<std::string>* captured = nullptr;
};

/// Serializes a response's result (schedule, evaluation incl. the CPM
/// detail, iteration count) so two responses compare byte-for-byte.
std::string result_bytes(const SchedulingResponse& response) {
  if (!response.ok()) return {};
  medcc::service::CacheEntry entry;
  entry.result = response.result;
  return medcc::service::encode_cache_record(entry);
}

RunReport run_stream(const Options& opt, const std::vector<Problem>& problems,
                     const StreamConfig& stream) {
  ServiceConfig config;
  config.threads = opt.threads;
  config.queue_capacity = opt.requests + 1;  // open loop: admit everything
  config.cache_capacity = stream.cache_on ? 4096 : 0;
  config.cache_dir = stream.cache_dir;

  const auto construction_started = std::chrono::steady_clock::now();
  SchedulingService service(std::move(config));

  // The stream revisits a small problem set at random: duplicate-heavy.
  Prng stream_rng(opt.seed ^ 0x5DEECE66DULL);
  std::vector<std::future<SchedulingResponse>> futures;
  futures.reserve(opt.requests);
  const auto started = stream.measure_construction
                           ? construction_started
                           : std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < opt.requests; ++i) {
    const auto& problem = stream_rng.choice(problems);
    SchedulingRequest req;
    req.instance = problem.instance;
    req.budget = problem.budget;
    req.solver = opt.solver;
    futures.push_back(service.submit(std::move(req)));
  }
  RunReport report;
  for (auto& f : futures) {
    const auto response = f.get();
    if (response.ok())
      ++report.ok;
    else
      ++report.failed;
    if (stream.captured != nullptr)
      stream.captured->push_back(result_bytes(response));
  }
  const auto finished = std::chrono::steady_clock::now();
  service.drain();

  report.wall_seconds =
      std::chrono::duration<double>(finished - started).count();
  report.throughput = report.wall_seconds > 0.0
                          ? static_cast<double>(opt.requests) /
                                report.wall_seconds
                          : 0.0;
  const auto snap = service.metrics().snapshot();
  if (!snap.total.empty()) {
    report.p50_ms = snap.total.quantile(50.0) * 1e3;
    report.p95_ms = snap.total.quantile(95.0) * 1e3;
    report.p99_ms = snap.total.quantile(99.0) * 1e3;
  }
  report.hit_rate = snap.cache_hit_rate();
  report.hits_exact = snap.cache_hits_exact;
  report.hits_isomorphic = snap.cache_hits_isomorphic;
  report.misses = snap.cache_misses;
  return report;
}

/// JSON baseline (shared schema with bench/net_throughput; docs/perf.md
/// documents the fields).
void write_json(const std::string& path, const Options& opt,
                const RunReport& cold, const RunReport& warm) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "FAIL: cannot write " << path << "\n";
    std::exit(1);
  }
  const auto run_json = [&](const char* name, const RunReport& r,
                            bool last) {
    out << "    {\"run\": \"" << name << "\", \"wall_seconds\": "
        << r.wall_seconds << ", \"throughput_rps\": " << r.throughput
        << ", \"p50_ms\": " << r.p50_ms << ", \"p95_ms\": " << r.p95_ms
        << ", \"p99_ms\": " << r.p99_ms << ", \"hit_rate\": " << r.hit_rate
        << "}" << (last ? "" : ",") << "\n";
  };
  out << "{\n"
      << "  \"schema\": \"medcc-bench-serving/v1\",\n"
      << "  \"bench\": \"service_throughput\",\n"
      << "  \"mode\": \"" << (opt.smoke ? "smoke" : "full") << "\",\n"
      << "  \"requests\": " << opt.requests << ",\n"
      << "  \"solver\": \"" << opt.solver << "\",\n"
      << "  \"runs\": [\n";
  run_json("cache_off", cold, false);
  run_json("cache_on", warm, true);
  out << "  ]\n}\n";
}

}  // namespace

/// --warm-start: seed a persistence directory, then compare a restart
/// that warm-starts from it against a restart with no prior state.
int run_warm_start(const Options& opt, const std::vector<Problem>& problems) {
  std::cout << "=== service_throughput: warm-start restart comparison ===\n"
            << "requests=" << opt.requests << " distinct=" << opt.distinct
            << " (x2 permuted twins) tiles=" << opt.tiles
            << " solver=" << opt.solver << " seed=" << opt.seed
            << " cache-dir=" << opt.cache_dir << "\n\n";

  // Seeding run: fills the directory; its responses are the reference
  // the warm restart must reproduce byte-for-byte. Unmeasured.
  std::vector<std::string> seeded_results;
  StreamConfig seeding;
  seeding.cache_dir = opt.cache_dir;
  seeding.captured = &seeded_results;
  const RunReport seeded = run_stream(opt, problems, seeding);
  if (seeded.ok + seeded.failed != opt.requests || seeded.failed != 0) {
    std::cerr << "FAIL: seeding run failed (ok=" << seeded.ok
              << " failed=" << seeded.failed << ")\n";
    return 1;
  }

  // Warm restart: a fresh service loads the snapshot + journal and must
  // answer the whole stream from the cache.
  std::vector<std::string> warm_results;
  StreamConfig warm_config;
  warm_config.cache_dir = opt.cache_dir;
  warm_config.measure_construction = true;
  warm_config.captured = &warm_results;
  const RunReport warm = run_stream(opt, problems, warm_config);

  // Cold restart: same stream, no prior state (cache on but empty).
  StreamConfig cold_config;
  cold_config.measure_construction = true;
  const RunReport cold = run_stream(opt, problems, cold_config);

  medcc::util::Table table({"restart", "wall (s)", "req/s", "p50 (ms)",
                            "p95 (ms)", "hit rate", "misses"});
  table.add_row({"cold (no dir)", medcc::util::fmt(cold.wall_seconds),
                 medcc::util::fmt(cold.throughput),
                 medcc::util::fmt(cold.p50_ms), medcc::util::fmt(cold.p95_ms),
                 medcc::util::fmt(cold.hit_rate),
                 std::to_string(cold.misses)});
  table.add_row({"warm (cache-dir)", medcc::util::fmt(warm.wall_seconds),
                 medcc::util::fmt(warm.throughput),
                 medcc::util::fmt(warm.p50_ms), medcc::util::fmt(warm.p95_ms),
                 medcc::util::fmt(warm.hit_rate),
                 std::to_string(warm.misses)});
  std::cout << table.render() << "\n";

  const double speedup = cold.wall_seconds > 0.0 && warm.wall_seconds > 0.0
                             ? cold.wall_seconds / warm.wall_seconds
                             : 0.0;
  std::cout << "speedup (warm restart vs cold restart): "
            << medcc::util::fmt(speedup) << "x\n";

  if (warm.ok != seeded.ok || warm.failed != seeded.failed) {
    std::cerr << "FAIL: warm restart changed response outcomes\n";
    return 1;
  }
  if (warm.misses != 0) {
    std::cerr << "FAIL: warm restart missed the cache " << warm.misses
              << " time(s); expected every request warmed\n";
    return 1;
  }
  if (warm_results != seeded_results) {
    std::size_t divergent = 0;
    for (std::size_t i = 0; i < warm_results.size(); ++i)
      if (warm_results[i] != seeded_results[i]) ++divergent;
    std::cerr << "FAIL: " << divergent
              << " warmed response(s) not byte-identical to the seeding "
                 "run\n";
    return 1;
  }
  if (speedup < 5.0) {
    std::cerr << "FAIL: warm-restart speedup " << speedup
              << "x below the 5x target\n";
    return 1;
  }
  std::cout << "warm-start OK (responses byte-identical, zero misses)\n";
  return 0;
}

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  const auto problems = build_problems(opt);

  if (opt.warm_start) return run_warm_start(opt, problems);

  std::cout << "=== service_throughput: duplicate-heavy stream ===\n"
            << "requests=" << opt.requests << " distinct=" << opt.distinct
            << " (x2 permuted twins) tiles=" << opt.tiles
            << " threads=" << opt.threads << " solver=" << opt.solver
            << " seed=" << opt.seed << "\n\n";

  StreamConfig cache_off;
  cache_off.cache_on = false;
  const RunReport cold = run_stream(opt, problems, cache_off);
  const RunReport warm = run_stream(opt, problems, StreamConfig{});

  medcc::util::Table table({"run", "wall (s)", "req/s", "p50 (ms)",
                            "p95 (ms)", "p99 (ms)", "hit rate"});
  table.add_row({"cache off", medcc::util::fmt(cold.wall_seconds),
                 medcc::util::fmt(cold.throughput),
                 medcc::util::fmt(cold.p50_ms), medcc::util::fmt(cold.p95_ms),
                 medcc::util::fmt(cold.p99_ms), "-"});
  table.add_row({"cache on", medcc::util::fmt(warm.wall_seconds),
                 medcc::util::fmt(warm.throughput),
                 medcc::util::fmt(warm.p50_ms), medcc::util::fmt(warm.p95_ms),
                 medcc::util::fmt(warm.p99_ms),
                 medcc::util::fmt(warm.hit_rate)});
  std::cout << table.render() << "\n";

  if (!opt.json_path.empty()) write_json(opt.json_path, opt, cold, warm);

  const double speedup = cold.wall_seconds > 0.0 && warm.wall_seconds > 0.0
                             ? cold.wall_seconds / warm.wall_seconds
                             : 0.0;
  std::cout << "responses: ok=" << warm.ok << " failed=" << warm.failed
            << "\n"
            << "cache hits: exact=" << warm.hits_exact
            << " isomorphic=" << warm.hits_isomorphic
            << " misses=" << warm.misses << "\n"
            << "speedup (cache on vs off): " << medcc::util::fmt(speedup)
            << "x\n";

  // Both runs must answer every request, and they must agree: the cache
  // may change latency, never outcomes.
  if (cold.ok != warm.ok || cold.failed != warm.failed) {
    std::cerr << "FAIL: cache changed response outcomes (off ok=" << cold.ok
              << " failed=" << cold.failed << ", on ok=" << warm.ok
              << " failed=" << warm.failed << ")\n";
    return 1;
  }
  if (cold.ok + cold.failed != opt.requests) {
    std::cerr << "FAIL: dropped responses\n";
    return 1;
  }
  if (!opt.smoke && speedup < 5.0) {
    std::cerr << "FAIL: speedup " << speedup << "x below the 5x target\n";
    return 1;
  }
  std::cout << (opt.smoke ? "smoke OK\n" : "OK\n");
  return 0;
}
