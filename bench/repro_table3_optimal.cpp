// Reproduces Table III: Critical-Greedy vs the exhaustive optimum on
// small-scale problems -- sizes (5,6,3), (6,11,3), (7,14,3), five random
// instances each, one random budget per instance within [Cmin, Cmax].
#include <iostream>

#include "expr/compare.hpp"
#include "sched/critical_greedy.hpp"
#include "sched/exhaustive.hpp"
#include "util/table.hpp"

int main() {
  std::cout << "=== Table III -- Critical-Greedy vs optimal (small scale) "
               "===\n\n";
  const std::vector<medcc::expr::ProblemSize> sizes = {
      {5, 6, 3}, {6, 11, 3}, {7, 14, 3}};

  medcc::util::Table t({"instance", "(5,6,3) CG", "(5,6,3) Opt",
                        "(6,11,3) CG", "(6,11,3) Opt", "(7,14,3) CG",
                        "(7,14,3) Opt"});
  constexpr std::size_t kInstances = 5;
  std::vector<std::vector<std::string>> cells(
      kInstances, std::vector<std::string>(sizes.size() * 2));
  std::size_t cg_optimal = 0, total = 0;

  medcc::util::Prng root(20130613);  // ICPP'13 vintage seed
  for (std::size_t s = 0; s < sizes.size(); ++s) {
    for (std::size_t k = 0; k < kInstances; ++k) {
      auto rng = root.fork(s * 100 + k);
      const auto inst = medcc::expr::make_instance(sizes[s], rng);
      const auto bounds = medcc::sched::cost_bounds(inst);
      const double budget = rng.uniform_real(bounds.cmin, bounds.cmax);
      const double cg =
          medcc::sched::critical_greedy(inst, budget).eval.med;
      const double opt =
          medcc::sched::exhaustive_optimal(inst, budget).eval.med;
      cells[k][2 * s] = medcc::util::fmt(cg, 2);
      cells[k][2 * s + 1] = medcc::util::fmt(opt, 2);
      ++total;
      if (cg <= opt + 1e-9) ++cg_optimal;
    }
  }
  for (std::size_t k = 0; k < kInstances; ++k) {
    std::vector<std::string> row{medcc::util::fmt(k + 1)};
    row.insert(row.end(), cells[k].begin(), cells[k].end());
    t.add_row(std::move(row));
  }
  std::cout << t.render() << '\n';
  std::cout << "Critical-Greedy attained the optimum in " << cg_optimal
            << "/" << total
            << " instances (paper: 13/15 -- \"the same results as the "
               "optimal solution in most cases\").\n";
  return 0;
}
