// Reproduces Figs. 9-11: the full improvement grid -- 20 problem sizes x
// 10 random workflow instances x 20 budget levels. Fig. 9 averages per
// problem size, Fig. 10 per budget level, Fig. 11 is the (size x level)
// surface.
#include <iostream>

#include "expr/compare.hpp"
#include "util/ascii_plot.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

int main() {
  std::cout << "=== Figs. 9-11 -- improvement grid (20 sizes x 10 "
               "instances x 20 budget levels) ===\n\n";
  auto& pool = medcc::util::global_pool();
  const auto grid =
      medcc::expr::improvement_grid(pool, /*seed=*/991, /*instances=*/10,
                                    /*levels=*/20);

  {
    std::vector<double> xs, ys;
    for (std::size_t s = 0; s < grid.by_size.size(); ++s) {
      xs.push_back(static_cast<double>(s + 1));
      ys.push_back(grid.by_size[s]);
    }
    medcc::util::Series series{"avg improvement (%)", xs, ys, '*'};
    medcc::util::PlotOptions opts;
    opts.title =
        "Fig. 9 -- average improvement per problem size (200 runs each)";
    opts.x_label = "problem index";
    opts.y_label = "improvement (%)";
    std::cout << medcc::util::line_plot(
                     std::vector<medcc::util::Series>{series}, opts)
              << '\n';
  }
  {
    std::vector<double> xs, ys;
    for (std::size_t level = 0; level < grid.by_level.size(); ++level) {
      xs.push_back(static_cast<double>(level + 1));
      ys.push_back(grid.by_level[level]);
    }
    medcc::util::Series series{"avg improvement (%)", xs, ys, '*'};
    medcc::util::PlotOptions opts;
    opts.title =
        "Fig. 10 -- average improvement per budget level (200 runs each)";
    opts.x_label = "budget level";
    opts.y_label = "improvement (%)";
    std::cout << medcc::util::line_plot(
                     std::vector<medcc::util::Series>{series}, opts)
              << '\n';
  }
  {
    medcc::util::PlotOptions opts;
    opts.title = "Fig. 11 -- improvement surface";
    opts.x_label = "budget level (1..20)";
    opts.y_label = "problem index (1..20)";
    std::cout << medcc::util::heatmap(grid.cell, opts) << '\n';
  }
  std::cout << "overall average improvement: "
            << medcc::util::fmt(grid.overall, 2)
            << "%  (paper: \"an average of 35% performance improvement "
               "over GAIN3\")\n";
  std::cout << "expected shape: improvement grows with problem size and "
               "with the budget level.\n";
  return 0;
}
