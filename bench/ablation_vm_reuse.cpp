// Ablation A4: VM reuse (Section V-B). Compares the provisioned fleet
// size and the actually billed cost with and without sharing same-type
// VMs among sequentially ordered modules, across workflow shapes.
#include <iostream>

#include "expr/instance_gen.hpp"
#include "sched/bounds.hpp"
#include "sched/critical_greedy.hpp"
#include "sched/vm_reuse.hpp"
#include "sim/executor.hpp"
#include "testbed/wrf_experiment.hpp"
#include "util/table.hpp"
#include "workflow/patterns.hpp"

namespace {

void report(const std::string& name, const medcc::sched::Instance& inst,
            double budget, medcc::util::Table& t) {
  const auto r = medcc::sched::critical_greedy(inst, budget);
  const auto plan = medcc::sched::plan_vm_reuse(inst, r.schedule);
  medcc::sim::ExecutorOptions reuse;
  reuse.reuse_vms = true;
  const auto sim = medcc::sim::execute(inst, r.schedule, reuse);
  const double saving = (plan.cost_without_reuse - plan.billed_cost_uptime) /
                        plan.cost_without_reuse * 100.0;
  t.add_row({name,
             medcc::util::fmt(inst.workflow().computing_module_count()),
             medcc::util::fmt(plan.instances.size()),
             medcc::util::fmt(plan.cost_without_reuse, 2),
             medcc::util::fmt(plan.billed_cost_uptime, 2),
             medcc::util::fmt(saving, 1),
             medcc::util::fmt(sim.makespan, 2)});
}

}  // namespace

int main() {
  std::cout << "=== Ablation A4 -- VM reuse ===\n\n";
  medcc::util::Table t({"workflow", "modules", "VMs w/reuse",
                        "cost w/o reuse", "billed w/reuse", "saving (%)",
                        "makespan"});
  medcc::util::Prng rng(99);

  {
    const auto inst = medcc::sched::Instance::from_model(
        medcc::workflow::example6(), medcc::cloud::example_catalog());
    report("example6 (B=60)", inst, 60.0, t);
  }
  {
    const auto inst = medcc::testbed::wrf_instance();
    report("WRF grouped (B=155)", inst, 155.0, t);
  }
  {
    const auto wf = medcc::workflow::montage_like(6, rng);
    const auto inst = medcc::sched::Instance::from_model(
        wf, medcc::cloud::example_catalog());
    const auto bounds = medcc::sched::cost_bounds(inst);
    report("montage-like (median B)", inst,
           0.5 * (bounds.cmin + bounds.cmax), t);
  }
  {
    const auto wf = medcc::workflow::epigenomics_like(3, 3, rng);
    const auto inst = medcc::sched::Instance::from_model(
        wf, medcc::cloud::example_catalog());
    const auto bounds = medcc::sched::cost_bounds(inst);
    report("epigenomics-like (median B)", inst,
           0.5 * (bounds.cmin + bounds.cmax), t);
  }
  for (std::uint64_t k = 0; k < 3; ++k) {
    auto sub = rng.fork(k);
    const auto inst = medcc::expr::make_instance({30, 120, 5}, sub);
    const auto bounds = medcc::sched::cost_bounds(inst);
    report("random (30,120,5) #" + std::to_string(k + 1), inst,
           0.5 * (bounds.cmin + bounds.cmax), t);
  }
  std::cout << t.render() << '\n';
  std::cout << "reading: reuse shrinks the fleet well below one VM per "
               "module and the billed\ncost below the analytic per-module "
               "cost (shared partial quanta); the makespan\nis unchanged "
               "because only non-overlapping executions share a VM.\n";
  return 0;
}
