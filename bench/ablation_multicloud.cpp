// Ablation A6 (paper's future work, Section VII): multi-cloud scheduling
// with inter-cloud data-movement costs. Sweeps the inter-cloud link
// quality and charge and reports when "bursting" from the home cloud to a
// faster remote cloud pays off -- and when the data movement kills it.
#include <iostream>

#include "multicloud/multicloud.hpp"
#include "sched/bounds.hpp"
#include "sched/critical_greedy.hpp"
#include "util/table.hpp"
#include "workflow/random_workflow.hpp"

int main() {
  std::cout << "=== Ablation A6 -- multi-cloud bursting ===\n\n";
  using namespace medcc;

  // A data-heavy mid-size workflow.
  util::Prng rng(515);
  workflow::RandomWorkflowSpec spec;
  spec.modules = 16;
  spec.edges = 40;
  spec.data_size_min = 2.0;
  spec.data_size_max = 20.0;
  const auto wf = workflow::random_workflow(spec, rng);

  // Home cloud: the paper's Table I. Remote cloud: 3x faster, premium
  // rates.
  const multicloud::CloudSite home{"home", cloud::example_catalog()};
  const multicloud::CloudSite remote{
      "remote", cloud::VmCatalog({{"R1", 45.0, 14.0}, {"R2", 90.0, 30.0}})};

  // Single-cloud reference on the home catalog.
  const auto sc_inst =
      sched::Instance::from_model(wf, cloud::example_catalog());
  const auto sc_bounds = sched::cost_bounds(sc_inst);
  const double budget = sc_bounds.cmin + 1.2 * (sc_bounds.cmax - sc_bounds.cmin);
  const auto sc = sched::critical_greedy(
      sc_inst, std::min(budget, sc_bounds.cmax));

  util::Table t({"link (BW, $/unit)", "MC MED", "MC cost", "transfer $",
                 "modules remote", "vs single-cloud MED"});
  struct LinkCase {
    const char* name;
    double bw;
    double cost;
  };
  for (const LinkCase& lc :
       {LinkCase{"free + instant", 0.0, 0.0}, LinkCase{"fast, cheap", 50.0, 0.05},
        LinkCase{"fast, pricey", 50.0, 1.0}, LinkCase{"slow, cheap", 2.0, 0.05},
        LinkCase{"slow, pricey", 2.0, 1.0},
        LinkCase{"hostile", 0.1, 10.0}}) {
    multicloud::InterCloudLink link;
    link.bandwidth = lc.bw;
    link.cost_per_unit = lc.cost;
    const multicloud::McInstance inst(
        wf, multicloud::Federation({home, remote}, link));
    const auto r = multicloud::critical_greedy_mc(inst, budget);
    std::size_t remote_count = 0;
    for (const auto& p : r.schedule.of)
      if (p.site == 1) ++remote_count;
    t.add_row({lc.name, util::fmt(r.eval.med, 2), util::fmt(r.eval.cost, 2),
               util::fmt(r.eval.transfer_cost, 2), util::fmt(remote_count),
               util::fmt((sc.eval.med - r.eval.med) / sc.eval.med * 100.0,
                         1) +
                   "%"});
  }
  std::cout << t.render() << '\n';
  std::cout << "single-cloud CG reference: MED " << util::fmt(sc.eval.med, 2)
            << " at cost " << util::fmt(sc.eval.cost, 2) << " (budget "
            << util::fmt(budget, 2) << ")\n\n"
            << "reading: as the link gets slower/pricier the scheduler "
               "bursts fewer modules,\nand under a hostile link it "
               "degenerates exactly to the single-cloud schedule --\nthe "
               "gradient the paper's future-work section anticipates. Note "
               "the free-link\nrows can end *slower* than single-cloud: "
               "the remote premium types tempt the\ngreedy max-dT rule "
               "into early expensive moves that starve later rounds -- "
               "the\nsame splurge pathology ablation A1 quantifies for "
               "Critical-Greedy itself.\n";
  return 0;
}
