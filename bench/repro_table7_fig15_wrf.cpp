// Reproduces the WRF testbed experiment (Section VI-C): Table V (VM
// types), Table VI (measured execution-time matrix), Table VII (CG vs
// GAIN3 schedules and MED at six budgets) and Fig. 15 -- plus the parts
// the paper narrates around them: Nimbus provisioning, VM reuse, and
// event-driven validation of every schedule.
#include <iostream>

#include "sched/bounds.hpp"
#include "sched/vm_reuse.hpp"
#include "sim/executor.hpp"
#include "testbed/nimbus.hpp"
#include "testbed/wrf_experiment.hpp"
#include "util/ascii_plot.hpp"
#include "util/table.hpp"
#include "workflow/wrf.hpp"

namespace {
using medcc::util::fmt;
}

int main() {
  std::cout << "=== WRF experiment (Section VI-C) ===\n\n";
  const auto inst = medcc::testbed::wrf_instance();

  {
    medcc::util::Table t({"VM type", "CPU (GHz)", "CV_j ($/s)"});
    for (std::size_t j = 0; j < inst.type_count(); ++j)
      t.add_row({inst.catalog().type(j).name,
                 fmt(inst.catalog().type(j).processing_power, 2),
                 fmt(inst.catalog().type(j).cost_rate, 1)});
    std::cout << "Table V -- testbed VM types\n" << t.render() << '\n';
  }
  {
    medcc::util::Table t({"TE (s)", "w1", "w2", "w3", "w4", "w5", "w6"});
    const auto& te = medcc::workflow::wrf_te_matrix();
    for (std::size_t j = 0; j < 3; ++j) {
      std::vector<std::string> row{"VT" + std::to_string(j + 1)};
      for (std::size_t i = 0; i < 6; ++i) row.push_back(fmt(te[j][i], 1));
      t.add_row(std::move(row));
    }
    std::cout << "Table VI -- measured execution-time matrix\n" << t.render()
              << '\n';
  }

  const auto bounds = medcc::sched::cost_bounds(inst);
  std::cout << "Cmin = " << fmt(bounds.cmin, 1)
            << " (paper: 125.9),  Cmax = " << fmt(bounds.cmax, 1)
            << " (paper: 243.6)\n\n";

  // Nimbus provisioning of the least-cost virtual cluster.
  {
    medcc::testbed::NimbusCloud cloud(medcc::testbed::NimbusConfig{},
                                      inst.catalog());
    const auto least = medcc::sched::least_cost_schedule(inst);
    std::vector<std::size_t> types;
    for (auto m : inst.workflow().computing_modules())
      types.push_back(least.type_of[m]);
    std::cout << "Nimbus-emulated cluster provisioning (least-cost fleet): "
              << "ready after " << fmt(cloud.cluster_ready_time(types), 1)
              << " s (image propagation + Xen boot; VMs are launched in "
                 "advance so this stays off the critical path)\n\n";
  }

  const auto rows = medcc::testbed::run_wrf_comparison();
  {
    medcc::util::Table t({"budget", "algo", "w1", "w2", "w3", "w4", "w5",
                          "w6", "MED (s)", "cost", "sim MED", "VMs w/reuse"});
    for (const auto& row : rows) {
      for (int which = 0; which < 2; ++which) {
        const auto& r = which == 0 ? row.cg : row.gain3;
        std::vector<std::string> cells{
            which == 0 ? fmt(row.budget, 1) : std::string{},
            which == 0 ? "CG" : "GAIN3"};
        for (std::size_t i = 1; i <= 6; ++i)
          cells.push_back(
              inst.catalog().type(r.schedule.type_of[i]).name.substr(2));
        cells.push_back(fmt(r.eval.med, 1));
        cells.push_back(fmt(r.eval.cost, 1));
        // Validate through the event-driven simulator with VM reuse.
        medcc::sim::ExecutorOptions opts;
        opts.reuse_vms = true;
        const auto sim = medcc::sim::execute(inst, r.schedule, opts);
        cells.push_back(fmt(sim.makespan, 1));
        cells.push_back(fmt(sim.vms.size()));
        t.add_row(std::move(cells));
      }
    }
    std::cout << "Table VII -- schedules and MED under six budgets\n"
              << t.render() << '\n';
    std::cout << "(Extraction note: the published Table VII rows are "
                 "internally inconsistent --\n"
                 " several printed schedules exceed their budget column "
                 "under the paper's own\n"
                 " billing -- so we report model-consistent values; the "
                 "published GAIN3 MED 784.0\n"
                 " at B=155.0 is reproduced exactly. See EXPERIMENTS.md.)\n\n";
  }

  {
    std::vector<std::string> groups;
    std::vector<double> cg, gain;
    for (const auto& row : rows) {
      groups.push_back(fmt(row.budget, 1));
      cg.push_back(row.cg.eval.med);
      gain.push_back(row.gain3.eval.med);
    }
    medcc::util::PlotOptions opts;
    opts.title = "Fig. 15 -- CG vs GAIN3 MED at each budget (seconds)";
    std::cout << medcc::util::grouped_bar_chart(
        groups, std::vector<std::string>{"CG", "GAIN3"}, {cg, gain}, opts);
  }
  return 0;
}
