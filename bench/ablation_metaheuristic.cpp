// Ablation A8: how much MED is left on the table by greedy? Compares
// Critical-Greedy, its ratio variant, and the genetic algorithm (the
// related-work metaheuristic, seeded and unseeded) across problem sizes,
// with the exhaustive optimum where tractable.
#include <iostream>

#include "expr/compare.hpp"
#include "sched/critical_greedy.hpp"
#include "sched/exhaustive.hpp"
#include "sched/annealing.hpp"
#include "sched/genetic.hpp"
#include "util/table.hpp"

int main() {
  std::cout << "=== Ablation A8 -- greedy vs metaheuristic vs optimal ===\n"
            << "avg MED over 8 budget levels x 4 instances per size\n\n";
  using namespace medcc;

  const std::vector<expr::ProblemSize> sizes = {
      {8, 18, 3}, {15, 65, 5}, {30, 269, 6}, {60, 842, 7}};
  constexpr std::size_t kInstances = 4;
  constexpr std::size_t kLevels = 8;

  util::Table t({"size", "CG", "CG-ratio", "GA (seeded)", "GA (unseeded)",
                 "SA (seeded)", "optimal"});
  util::Prng root(808);
  for (const auto& size : sizes) {
    double cg = 0, cg_ratio = 0, ga = 0, ga_raw = 0, sa = 0, opt = 0;
    bool opt_available = size.modules <= 8;
    for (std::size_t k = 0; k < kInstances; ++k) {
      auto rng = root.fork(size.modules * 100 + k);
      const auto inst = expr::make_instance(size, rng);
      const auto bounds = sched::cost_bounds(inst);
      for (double budget : sched::budget_levels(bounds, kLevels)) {
        cg += sched::critical_greedy(inst, budget).eval.med;
        sched::CriticalGreedyOptions ratio;
        ratio.ratio_criterion = true;
        cg_ratio += sched::critical_greedy(inst, budget, ratio).eval.med;
        sched::GeneticOptions gopts;
        gopts.seed = size.modules * 1000 + k;
        ga += sched::genetic(inst, budget, gopts).eval.med;
        sched::GeneticOptions raw = gopts;
        raw.seed_with_cg = false;
        ga_raw += sched::genetic(inst, budget, raw).eval.med;
        sched::AnnealingOptions sopts;
        sopts.seed = size.modules * 1000 + k;
        sopts.iterations = 1500;
        sa += sched::annealing(inst, budget, sopts).eval.med;
        if (opt_available)
          opt += sched::exhaustive_optimal(inst, budget).eval.med;
      }
    }
    const double denom = double(kInstances * kLevels);
    t.add_row({"(" + std::to_string(size.modules) + "," +
                   std::to_string(size.edges) + "," +
                   std::to_string(size.types) + ")",
               util::fmt(cg / denom, 2), util::fmt(cg_ratio / denom, 2),
               util::fmt(ga / denom, 2), util::fmt(ga_raw / denom, 2),
               util::fmt(sa / denom, 2),
               opt_available ? util::fmt(opt / denom, 2) : "-"});
  }
  std::cout << t.render() << '\n';
  std::cout << "reading: the seeded GA polishes CG's schedules a little at "
               "every size; the\nratio criterion captures most of that gap "
               "at none of the GA's cost; unseeded\nGA degrades with size "
               "(the search space grows as n^m).\n";
  return 0;
}
