// Ablation A2: sensitivity to the billing quantum. The paper bills whole
// time units ("any partial hours are rounded up as in the case of EC2").
// This sweep shows how the feasible budget range and the CG result react
// as the quantum shrinks toward continuous billing.
#include <iostream>

#include "sched/bounds.hpp"
#include "sched/critical_greedy.hpp"
#include "util/table.hpp"
#include "workflow/patterns.hpp"

int main() {
  std::cout << "=== Ablation A2 -- billing quantum sensitivity ===\n\n";
  const struct {
    const char* name;
    double quantum;
  } quanta[] = {
      {"1 unit (paper)", 1.0},
      {"1/2 unit", 0.5},
      {"1/4 unit", 0.25},
      {"1 minute", 1.0 / 60.0},
      {"continuous", 1e-9},
  };

  medcc::util::Table t({"quantum", "Cmin", "Cmax", "MED @ B=0.25 range",
                        "MED @ B=0.50 range", "MED @ B=0.75 range"});
  for (const auto& q : quanta) {
    const auto inst = medcc::sched::Instance::from_model(
        medcc::workflow::example6(), medcc::cloud::example_catalog(),
        medcc::cloud::BillingPolicy(q.quantum));
    const auto bounds = medcc::sched::cost_bounds(inst);
    std::vector<std::string> row{q.name, medcc::util::fmt(bounds.cmin, 2),
                                 medcc::util::fmt(bounds.cmax, 2)};
    for (double frac : {0.25, 0.5, 0.75}) {
      const double budget =
          bounds.cmin + frac * (bounds.cmax - bounds.cmin);
      row.push_back(medcc::util::fmt(
          medcc::sched::critical_greedy(inst, budget).eval.med, 2));
    }
    t.add_row(std::move(row));
  }
  std::cout << t.render() << '\n';
  std::cout
      << "reading: coarser quanta inflate both cost bounds (partial units "
         "are paid in\nfull) and coarsen CG's trade-off space; with "
         "continuous billing the same\nbudget fraction buys a faster "
         "schedule because no money is lost to rounding.\n";
  return 0;
}
