// Reproduces the paper's numerical example (Section V-B): Table I (VM
// types), the Fig. 5 TE/CE matrices, Table II (Critical-Greedy schedules
// per budget band) and Fig. 6 (MED vs budget staircase).
#include <iostream>

#include "sched/bounds.hpp"
#include "sched/critical_greedy.hpp"
#include "util/ascii_plot.hpp"
#include "util/table.hpp"
#include "workflow/patterns.hpp"

namespace {

using medcc::util::fmt;
using medcc::util::Table;

}  // namespace

int main() {
  std::cout << "=== Numerical example (Section V-B, reconstructed Fig. 4) "
               "===\n\n";
  const auto inst = medcc::sched::Instance::from_model(
      medcc::workflow::example6(), medcc::cloud::example_catalog());

  {
    Table t({"VM type", "VP_j", "CV_j"});
    for (std::size_t j = 0; j < inst.type_count(); ++j)
      t.add_row({inst.catalog().type(j).name,
                 fmt(inst.catalog().type(j).processing_power, 0),
                 fmt(inst.catalog().type(j).cost_rate, 0)});
    std::cout << "Table I -- available VM types\n" << t.render() << '\n';
  }

  {
    Table te({"module", "WL", "T(VT1)", "T(VT2)", "T(VT3)", "C(VT1)",
              "C(VT2)", "C(VT3)"});
    for (std::size_t i = 1; i <= 6; ++i) {
      te.add_row({inst.workflow().module(i).name,
                  fmt(inst.workflow().module(i).workload, 2),
                  fmt(inst.time(i, 0), 2), fmt(inst.time(i, 1), 2),
                  fmt(inst.time(i, 2), 2), fmt(inst.cost(i, 0), 0),
                  fmt(inst.cost(i, 1), 0), fmt(inst.cost(i, 2), 0)});
    }
    std::cout << "Fig. 5 -- TE and CE matrices (hours / $)\n" << te.render()
              << '\n';
  }

  const auto bounds = medcc::sched::cost_bounds(inst);
  std::cout << "Cmin = " << fmt(bounds.cmin, 1) << " (paper: 48),  Cmax = "
            << fmt(bounds.cmax, 1) << " (paper: 64)\n\n";

  {
    // Table II: sweep integer budgets and collapse equal schedules into
    // bands.
    Table t({"S_CG", "budget band", "w1", "w2", "w3", "w4", "w5", "w6",
             "MED", "cost"});
    medcc::sched::Schedule previous;
    std::vector<std::string> row;
    double band_start = bounds.cmin;
    int band_index = 0;
    auto emit = [&](double band_end, const medcc::sched::Result& r,
                    bool last) {
      ++band_index;
      std::vector<std::string> cells;
      cells.push_back(fmt(band_index));
      cells.push_back("[" + fmt(band_start, 1) + ", " +
                      (last ? std::string("inf") : fmt(band_end, 1)) + ")");
      for (std::size_t i = 1; i <= 6; ++i)
        cells.push_back(
            inst.catalog().type(r.schedule.type_of[i]).name.substr(2));
      cells.push_back(fmt(r.eval.med, 2));
      cells.push_back(fmt(r.eval.cost, 0));
      t.add_row(std::move(cells));
    };
    medcc::sched::Result band_result =
        medcc::sched::critical_greedy(inst, bounds.cmin);
    previous = band_result.schedule;
    for (double budget = bounds.cmin + 0.5; budget <= bounds.cmax + 0.5;
         budget += 0.5) {
      const auto r = medcc::sched::critical_greedy(inst, budget);
      if (!(r.schedule == previous)) {
        emit(budget, band_result, false);
        band_start = budget;
        previous = r.schedule;
      }
      band_result = r;
    }
    emit(0.0, band_result, true);
    std::cout << "Table II -- Critical-Greedy schedules per budget band\n"
              << "(paper MEDs: 16.77, 12.10, 10.77, 8.10*, 6.77, 5.43;\n"
              << " * the 8.10 entry is inconsistent with the rest of the "
                 "table -- the\n"
              << "   reconstruction proves the consistent value is 8.19, "
                 "see EXPERIMENTS.md)\n"
              << t.render() << '\n';
  }

  {
    // The B=57 walkthrough of Section V-B, move by move.
    const auto trace = medcc::sched::critical_greedy_trace(inst, 57.0);
    Table t({"step", "module", "move", "dT", "dC", "TTotal", "cost"});
    for (std::size_t k = 0; k < trace.moves.size(); ++k) {
      const auto& mv = trace.moves[k];
      t.add_row({fmt(k + 1), inst.workflow().module(mv.module).name,
                 inst.catalog().type(mv.from_type).name + "->" +
                     inst.catalog().type(mv.to_type).name,
                 fmt(mv.dt, 2), fmt(mv.dc, 0), fmt(mv.med_after, 2),
                 fmt(mv.cost_after, 0)});
    }
    std::cout << "The B=57 walkthrough (paper: w4, w3, w6, w2; final MED "
                 "6.77 with $1 left)\n"
              << t.render() << '\n';
  }

  {
    // Fig. 6: MED under every budget from 48 to 64.
    medcc::util::Series series;
    series.name = "Critical-Greedy MED";
    for (double budget = bounds.cmin; budget <= bounds.cmax + 1e-9;
         budget += 0.25) {
      series.xs.push_back(budget);
      series.ys.push_back(
          medcc::sched::critical_greedy(inst, budget).eval.med);
    }
    medcc::util::PlotOptions opts;
    opts.title = "Fig. 6 -- MED vs budget (numerical example)";
    opts.x_label = "budget";
    opts.y_label = "MED (hours)";
    std::cout << medcc::util::line_plot(
        std::vector<medcc::util::Series>{series}, opts);
  }
  return 0;
}
