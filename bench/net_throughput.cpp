// Serving-path load generator: measures the network front end
// end-to-end (TCP loopback, pipelined MultiClient traffic) along the
// two axes this layer optimizes.
//
//  1. Hit path: the same duplicate stream against a server with the
//     wire cache (zero-copy encoded-frame fast path) on vs off. With
//     it off every request still hits the *result* cache but pays
//     request decode, a queue hop to a worker, fingerprinting and
//     response re-encode; with it on a verbatim duplicate is answered
//     by splicing memoized bytes into the outbuf. The smoke asserts
//     >= 3x fewer ns per request.
//
//  2. Reactor scaling: the same fast-path-heavy blast from several
//     client threads against --io-threads 1 vs 4. With the per-request
//     CPU cost collapsed by the fast path the server is IO-bound, so
//     aggregate throughput should scale with reactors; the smoke
//     asserts >= 2x on hosts with >= 4 cores (skipped below that --
//     there is nothing to scale onto).
//
//  3. Cluster serving (--cluster): three in-process replicas wired via
//     the replication channel, tenant-sharded ClusterClient traffic,
//     and one replica killed mid-run. Measures steady-state cluster
//     throughput and the cost of failover; asserts zero failed
//     requests (the survivors answer every tenant from their
//     replicated caches) and at least one observed failover.
//
//  4. Trace overhead (--trace-overhead): the hit-path blast untraced
//     vs with tracing on end to end (client mints a context per
//     request, the server records spans/aggregates, head sampling at
//     its default 1-in-64). Interleaved best-of-3 each way; asserts
//     the traced ns/request stays within 5% of the untraced baseline
//     -- the budget docs/observability.md promises for always-on
//     tracing (relaxed to 15% on single-core hosts, where the client's
//     minting serializes into the measured path instead of overlapping
//     with it).
//
// Usage: net_throughput [--requests N] [--threads T] [--connections C]
//                       [--window W] [--tiles K] [--seed S]
//                       [--smoke] [--cluster] [--trace-overhead]
//                       [--json PATH]
// --json writes the numbers under schema "medcc-bench-serving/v1"
// (documented in docs/perf.md); CI uploads it as the tracked baseline.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "cloud/vm_type.hpp"
#include "cluster/config.hpp"
#include "cluster/replicator.hpp"
#include "net/client.hpp"
#include "net/cluster_client.hpp"
#include "net/endpoint.hpp"
#include "net/server.hpp"
#include "obs/trace.hpp"
#include "sched/instance.hpp"
#include "service/service.hpp"
#include "util/flags.hpp"
#include "util/prng.hpp"
#include "util/table.hpp"
#include "workflow/patterns.hpp"
#include "workflow/workflow.hpp"

namespace {

using medcc::net::LoadStats;
using medcc::net::MultiClient;
using medcc::net::MultiClientConfig;
using medcc::sched::Instance;
using medcc::service::SchedulingRequest;

struct Options {
  std::size_t requests = 4000;  ///< per measured run, across all threads
  std::size_t threads = 4;      ///< client threads (reactor-scaling runs)
  std::size_t connections = 4;  ///< connections per client thread
  std::size_t window = 32;      ///< pipelined requests per connection
  std::size_t tiles = 6;
  std::uint64_t seed = 20130801;  // ICPP'13
  bool smoke = false;
  bool cluster = false;
  bool trace_overhead = false;
  std::string json_path;
};

Options parse(int argc, char** argv) {
  Options opt;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      const auto next = [&]() -> std::string {
        if (i + 1 >= argc) {
          std::cerr << "missing value after " << arg << "\n";
          std::exit(2);
        }
        return argv[++i];
      };
      if (arg == "--requests") {
        opt.requests = medcc::util::parse_flag_size(next());
      } else if (arg == "--threads") {
        opt.threads = medcc::util::parse_flag_size(next());
      } else if (arg == "--connections") {
        opt.connections = medcc::util::parse_flag_size(next());
      } else if (arg == "--window") {
        opt.window = medcc::util::parse_flag_size(next());
      } else if (arg == "--tiles") {
        opt.tiles = medcc::util::parse_flag_size(next());
      } else if (arg == "--seed") {
        opt.seed = medcc::util::parse_flag_size(next());
      } else if (arg == "--smoke") {
        opt.smoke = true;
      } else if (arg == "--cluster") {
        opt.cluster = true;
      } else if (arg == "--trace-overhead") {
        opt.trace_overhead = true;
      } else if (arg == "--json") {
        opt.json_path = next();
      } else {
        std::cerr << "unknown argument: " << arg << "\n";
        std::exit(2);
      }
    }
  } catch (const std::exception& ex) {
    std::cerr << "invalid argument value: " << ex.what() << "\n";
    std::exit(2);
  }
  if (opt.smoke) {
    opt.requests = 600;
    opt.threads = 2;
    opt.connections = 2;
    opt.window = 16;
    opt.tiles = 4;
  }
  if (opt.requests == 0 || opt.threads == 0) {
    std::cerr << "--requests and --threads must be positive\n";
    std::exit(2);
  }
  return opt;
}

/// One request everybody resubmits verbatim (the wire cache keys on the
/// exact body bytes, so one shared request makes every post-prime send
/// an exact hit).
SchedulingRequest build_request(const Options& opt) {
  medcc::util::Prng rng(opt.seed);
  auto wf = medcc::workflow::montage_like(opt.tiles, rng);
  auto instance = std::make_shared<const Instance>(
      Instance::from_model(std::move(wf), medcc::cloud::example_catalog()));
  medcc::sched::Schedule cheapest;
  cheapest.type_of.assign(instance->module_count(),
                          instance->catalog().cheapest_rate_index());
  const double cmin = medcc::sched::total_cost(*instance, cheapest);
  SchedulingRequest request;
  request.instance = std::move(instance);
  request.budget = cmin * 1.35 + 1.0;
  // Critical-Greedy keeps the single priming solve (the only solver
  // call in the whole bench) cheap.
  request.solver = "cg";
  return request;
}

struct BlastReport {
  std::size_t io_threads = 0;
  std::size_t client_threads = 0;
  std::uint64_t requests = 0;
  double wall_seconds = 0.0;
  double throughput_rps = 0.0;
  double ns_per_request = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  std::uint64_t fastpath_hits = 0;
};

/// Starts a fresh service + server, primes the caches with one request,
/// then blasts `opt.requests` verbatim duplicates from `client_threads`
/// MultiClients and reports aggregate client-side numbers. Non-null
/// tracers turn on end-to-end tracing: the client mints a context per
/// request, the server records spans against it.
BlastReport blast(const Options& opt, const SchedulingRequest& request,
                  std::size_t io_threads, bool wire_cache_on,
                  std::size_t client_threads,
                  medcc::obs::Tracer* server_tracer = nullptr,
                  medcc::obs::Tracer* client_tracer = nullptr) {
  medcc::service::ServiceConfig service_config;
  service_config.threads = 2;
  service_config.queue_capacity = opt.requests + 16;
  service_config.cache_capacity = 4096;
  service_config.wire_cache_capacity = wire_cache_on ? 1024 : 0;
  service_config.tracer = server_tracer;
  medcc::service::SchedulingService service(std::move(service_config));

  medcc::net::ServerConfig server_config;
  server_config.io_threads = io_threads;
  server_config.tracer = server_tracer;
  medcc::net::Server server(service, server_config);

  MultiClientConfig client_config;
  client_config.port = server.port();
  client_config.connections = opt.connections;
  client_config.window = opt.window;
  client_config.tracer = client_tracer;

  // Prime: the first occurrence pays the solver; afterwards the result
  // cache (and, when enabled, the wire cache) hold the answer, so the
  // measured stream exercises only the duplicate-serving path.
  {
    MultiClient primer(client_config);
    const LoadStats primed = primer.run(request, 1);
    if (primed.ok != 1) {
      std::cerr << "FAIL: priming request failed\n";
      std::exit(1);
    }
  }

  const std::size_t per_thread = opt.requests / client_threads;
  const std::size_t remainder = opt.requests % client_threads;
  std::vector<LoadStats> results(client_threads);
  std::vector<std::thread> threads;
  threads.reserve(client_threads);
  const auto started = std::chrono::steady_clock::now();
  for (std::size_t t = 0; t < client_threads; ++t) {
    const std::size_t quota = per_thread + (t < remainder ? 1 : 0);
    threads.emplace_back([&, t, quota] {
      MultiClient client(client_config);
      results[t] = client.run(request, quota);
    });
  }
  for (auto& thread : threads) thread.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();

  BlastReport report;
  report.io_threads = server.reactor_count();
  report.client_threads = client_threads;
  report.wall_seconds = wall;
  std::vector<double> latencies;
  latencies.reserve(opt.requests);
  for (const LoadStats& r : results) {
    report.requests += r.ok;
    if (r.failed != 0) {
      std::cerr << "FAIL: " << r.failed << " request(s) failed\n";
      std::exit(1);
    }
    latencies.insert(latencies.end(), r.latency_seconds.begin(),
                     r.latency_seconds.end());
  }
  if (report.requests != opt.requests) {
    std::cerr << "FAIL: expected " << opt.requests << " responses, got "
              << report.requests << "\n";
    std::exit(1);
  }
  if (wall > 0.0) {
    report.throughput_rps = static_cast<double>(report.requests) / wall;
    report.ns_per_request =
        wall * 1e9 / static_cast<double>(report.requests);
  }
  std::sort(latencies.begin(), latencies.end());
  const auto at = [&](double percent) {
    if (latencies.empty()) return 0.0;
    const auto rank = static_cast<std::size_t>(
        percent / 100.0 * static_cast<double>(latencies.size() - 1) + 0.5);
    return latencies[std::min(rank, latencies.size() - 1)] * 1e3;
  };
  report.p50_ms = at(50.0);
  report.p95_ms = at(95.0);
  report.p99_ms = at(99.0);
  report.fastpath_hits = server.counters().fastpath_hits;

  server.stop();
  service.shutdown();
  return report;
}

void write_json(const std::string& path, const Options& opt,
                const BlastReport& wire_on, const BlastReport& wire_off,
                const std::vector<BlastReport>& reactors) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "FAIL: cannot write " << path << "\n";
    std::exit(1);
  }
  out << "{\n"
      << "  \"schema\": \"medcc-bench-serving/v1\",\n"
      << "  \"bench\": \"net_throughput\",\n"
      << "  \"mode\": \"" << (opt.smoke ? "smoke" : "full") << "\",\n"
      << "  \"host_cores\": " << std::thread::hardware_concurrency() << ",\n"
      << "  \"requests\": " << opt.requests << ",\n"
      << "  \"hit_path\": {\n"
      << "    \"fastpath_ns_op\": " << wire_on.ns_per_request << ",\n"
      << "    \"encode_ns_op\": " << wire_off.ns_per_request << ",\n"
      << "    \"speedup\": "
      << (wire_on.ns_per_request > 0.0
              ? wire_off.ns_per_request / wire_on.ns_per_request
              : 0.0)
      << "\n"
      << "  },\n"
      << "  \"reactors\": [\n";
  for (std::size_t i = 0; i < reactors.size(); ++i) {
    const BlastReport& r = reactors[i];
    out << "    {\"io_threads\": " << r.io_threads
        << ", \"client_threads\": " << r.client_threads
        << ", \"throughput_rps\": " << r.throughput_rps
        << ", \"p50_ms\": " << r.p50_ms << ", \"p95_ms\": " << r.p95_ms
        << ", \"p99_ms\": " << r.p99_ms << "}"
        << (i + 1 < reactors.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

// ---------------------------------------------------------------------
// --trace-overhead: hit path untraced vs traced, best of 3
// ---------------------------------------------------------------------

void write_trace_json(const std::string& path, const Options& opt,
                      double untraced_ns, double traced_ns,
                      double overhead_pct,
                      const medcc::obs::TracerSnapshot& client,
                      const medcc::obs::TracerSnapshot& server) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "FAIL: cannot write " << path << "\n";
    std::exit(1);
  }
  out << "{\n"
      << "  \"schema\": \"medcc-bench-serving/v1\",\n"
      << "  \"bench\": \"net_throughput\",\n"
      << "  \"mode\": \""
      << (opt.smoke ? "trace-overhead-smoke" : "trace-overhead") << "\",\n"
      << "  \"host_cores\": " << std::thread::hardware_concurrency() << ",\n"
      << "  \"requests\": " << opt.requests << ",\n"
      << "  \"trace_overhead\": {\n"
      << "    \"untraced_ns_op\": " << untraced_ns << ",\n"
      << "    \"traced_ns_op\": " << traced_ns << ",\n"
      << "    \"overhead_pct\": " << overhead_pct << ",\n"
      << "    \"client_contexts_minted\": " << client.started << ",\n"
      << "    \"client_sampled\": " << client.sampled << ",\n"
      << "    \"server_fastpath_spans\": "
      << server.stages[static_cast<std::size_t>(
             medcc::obs::Stage::wire_fastpath)].count
      << "\n"
      << "  }\n}\n";
}

/// The --trace-overhead entry point: hit-path blasts with tracing off
/// vs on (default head sampling), best of 3 each; the traced path must
/// stay within 5% of the untraced ns/request.
int run_trace_overhead_mode(const Options& base_opt,
                            const SchedulingRequest& request) {
  // A per-request delta of a few percent needs long blasts to rise
  // above loopback scheduling noise; requests are ~1.5us each on the
  // fast path, so even the lengthened smoke stays fast.
  Options opt = base_opt;
  opt.requests = std::max<std::size_t>(opt.requests, 6000);

  std::cout << "=== net_throughput --trace-overhead: hit path ===\n"
            << "requests=" << opt.requests << " connections="
            << opt.connections << " window=" << opt.window
            << " sample_every="
            << medcc::obs::Tracer::Config{}.sample_every << "\n\n";

  // One tracer pair across the traced runs; counters accumulate.
  medcc::obs::Tracer server_tracer;
  medcc::obs::Tracer client_tracer;
  // Interleaved best-of-N: alternating untraced/traced runs spreads
  // slow drift (thermal, background load) across both sides instead of
  // biasing whichever side ran last.
  constexpr int kRuns = 3;
  double untraced_ns = 0.0;
  double traced_ns = 0.0;
  std::uint64_t traced_fastpath = 0;
  for (int run = 0; run < kRuns; ++run) {
    const BlastReport untraced = blast(opt, request, 1, true, 1);
    if (run == 0 || untraced.ns_per_request < untraced_ns)
      untraced_ns = untraced.ns_per_request;
    const BlastReport traced =
        blast(opt, request, 1, true, 1, &server_tracer, &client_tracer);
    if (run == 0 || traced.ns_per_request < traced_ns)
      traced_ns = traced.ns_per_request;
    traced_fastpath = traced.fastpath_hits;
  }

  const medcc::obs::TracerSnapshot client_snap = client_tracer.snapshot();
  const medcc::obs::TracerSnapshot server_snap = server_tracer.snapshot();
  const double overhead_pct =
      untraced_ns > 0.0 ? (traced_ns - untraced_ns) / untraced_ns * 100.0
                        : 0.0;

  // On a single-core host the client's context minting serializes into
  // the server's hit path instead of overlapping with it through the
  // pipelined window (and run-to-run scheduling noise alone is a few
  // percent), so the 5% budget only binds from 2 cores; below that a
  // relaxed 15% bound still catches real regressions.
  const unsigned cores = std::thread::hardware_concurrency();
  const double budget_pct = cores >= 2 ? 5.0 : 15.0;

  medcc::util::Table table({"hit path", "ns/req"});
  table.add_row({"untraced", medcc::util::fmt(untraced_ns)});
  table.add_row({"traced (sampled)", medcc::util::fmt(traced_ns)});
  std::cout << table.render() << "\n"
            << "trace overhead: " << medcc::util::fmt(overhead_pct)
            << "% (budget " << medcc::util::fmt(budget_pct) << "%"
            << (cores < 2 ? ", relaxed: single-core host" : "") << ")\n"
            << "client contexts minted: " << client_snap.started
            << " (sampled " << client_snap.sampled << ")\n"
            << "server fast-path spans: "
            << server_snap.stages[static_cast<std::size_t>(
                   medcc::obs::Stage::wire_fastpath)].count
            << "\n";

  if (!opt.json_path.empty())
    write_trace_json(opt.json_path, opt, untraced_ns, traced_ns,
                     overhead_pct, client_snap, server_snap);

  // The traced stream must actually have been traced, on the fast path.
  if (traced_fastpath < opt.requests) {
    std::cerr << "FAIL: traced run left the fast path (" << traced_fastpath
              << " of " << opt.requests << " hits)\n";
    return 1;
  }
  if (client_snap.started < static_cast<std::uint64_t>(opt.requests)) {
    std::cerr << "FAIL: client minted " << client_snap.started
              << " trace contexts for " << opt.requests * kRuns
              << " traced requests\n";
    return 1;
  }
  if (server_snap.stages[static_cast<std::size_t>(
          medcc::obs::Stage::wire_fastpath)].count == 0) {
    std::cerr << "FAIL: server tracer recorded no fast-path spans\n";
    return 1;
  }
  if (overhead_pct > budget_pct) {
    std::cerr << "FAIL: trace overhead " << overhead_pct
              << "% above the " << budget_pct << "% budget\n";
    return 1;
  }
  std::cout << (opt.smoke ? "smoke OK\n" : "OK\n");
  return 0;
}

// ---------------------------------------------------------------------
// --cluster: three in-process replicas, mid-run kill
// ---------------------------------------------------------------------

/// One replica: its service, its server, and its replication channel to
/// the other two. The replicator is created after every server has
/// bound (ports are only known then), so on_cache_insert reads it
/// through an atomic slot.
struct ClusterNode {
  std::shared_ptr<std::atomic<medcc::cluster::Replicator*>> repl_slot;
  std::unique_ptr<medcc::service::SchedulingService> service;
  std::unique_ptr<medcc::net::Server> server;
  std::unique_ptr<medcc::cluster::Replicator> replicator;
};

struct ClusterReport {
  std::size_t nodes = 0;
  std::size_t tenants = 0;
  std::uint64_t requests = 0;
  double wall_seconds = 0.0;
  double throughput_rps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  std::uint64_t failovers = 0;
  std::uint64_t transport_errors = 0;
  std::size_t killed_node = 0;
};

/// Builds a 3-replica cluster, primes `tenants` tenant caches through
/// it (each prime replicates to the other two replicas), then blasts
/// `opt.requests` tenant-sharded duplicates from `opt.threads`
/// ClusterClients while one replica is hard-stopped at the halfway
/// mark. Every request must still be answered -- the ring walks to a
/// survivor whose replicated cache already holds the tenant's entry.
ClusterReport run_cluster(const Options& opt,
                          const SchedulingRequest& request) {
  constexpr std::size_t kNodes = 3;
  const std::size_t tenants = std::max<std::size_t>(12, opt.threads * 3);

  std::vector<ClusterNode> nodes(kNodes);
  std::vector<medcc::net::Endpoint> endpoints;
  for (std::size_t i = 0; i < kNodes; ++i) {
    ClusterNode& node = nodes[i];
    node.repl_slot =
        std::make_shared<std::atomic<medcc::cluster::Replicator*>>(nullptr);
    medcc::service::ServiceConfig service_config;
    service_config.threads = 2;
    service_config.queue_capacity = opt.requests + 16;
    service_config.cache_capacity = 4096;
    service_config.on_cache_insert =
        [slot = node.repl_slot](std::string payload,
                                medcc::obs::TraceContext trace) {
      if (auto* repl = slot->load(std::memory_order_acquire))
        repl->publish(payload, trace);
    };
    node.service = std::make_unique<medcc::service::SchedulingService>(
        std::move(service_config));

    medcc::net::ServerConfig server_config;
    server_config.io_threads = 1;
    server_config.node_id = "bench-node" + std::to_string(i);
    server_config.repl_apply = [svc = node.service.get()](
                                   std::string_view payload) {
      return svc->apply_replicated_record(payload);
    };
    node.server = std::make_unique<medcc::net::Server>(*node.service,
                                                       server_config);
    endpoints.push_back({"127.0.0.1", node.server->port()});
  }
  for (std::size_t i = 0; i < kNodes; ++i) {
    medcc::cluster::ClusterConfig cluster_config;
    cluster_config.node_id = "bench-node" + std::to_string(i);
    for (std::size_t j = 0; j < kNodes; ++j)
      if (j != i) cluster_config.peers.push_back(endpoints[j]);
    nodes[i].replicator = std::make_unique<medcc::cluster::Replicator>(
        std::move(cluster_config));
    nodes[i].repl_slot->store(nodes[i].replicator.get(),
                              std::memory_order_release);
    nodes[i].replicator->start();
  }

  medcc::net::ClusterClientConfig client_config;
  client_config.endpoints = endpoints;
  client_config.down_cooldown_ms = 200.0;  // re-probe the corpse quickly

  // Prime every tenant once (one solve on its primary) and wait for
  // the records to reach the other replicas: each replicator's queues
  // drained and every send acked.
  std::vector<std::string> tenant_ids;
  tenant_ids.reserve(tenants);
  {
    medcc::net::ClusterClient primer(client_config);
    for (std::size_t t = 0; t < tenants; ++t) {
      SchedulingRequest primed = request;
      primed.tenant = "tenant-" + std::to_string(t);
      tenant_ids.push_back(primed.tenant);
      const auto response = primer.solve(primed);
      if (!response.ok()) {
        std::cerr << "FAIL: priming tenant " << primed.tenant
                  << " failed: " << response.error << "\n";
        std::exit(1);
      }
    }
  }
  for (int spin = 0;; ++spin) {
    bool settled = true;
    for (const ClusterNode& node : nodes)
      for (const auto& peer : node.replicator->status().peers)
        if (peer.queued != 0 || peer.sent != peer.acked) settled = false;
    if (settled) break;
    if (spin > 1000) {
      std::cerr << "FAIL: replication did not settle after priming\n";
      std::exit(1);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  // Measured run in two halves with a deterministic mid-run kill: the
  // replica that is primary for tenant 0 is hard-stopped between them,
  // so the second half is guaranteed to route at least that tenant's
  // requests through the ring walk onto a survivor's replicated cache.
  const std::size_t killed =
      medcc::net::ClusterClient(client_config).primary_index(tenant_ids[0]);
  std::atomic<std::uint64_t> completed{0};
  std::atomic<bool> run_failed{false};
  std::vector<std::vector<double>> latencies(opt.threads);
  std::vector<std::uint64_t> failovers(opt.threads, 0);
  std::vector<std::uint64_t> errors(opt.threads, 0);

  // Every client thread cycles the tenant list (offset by thread id so
  // primaries interleave). Clients are per-thread and per-half:
  // ClusterClient is not thread-safe, and a fresh client in the second
  // half also exercises failover on first contact with the dead node.
  const auto run_half = [&](std::size_t total) {
    const std::size_t per_thread = total / opt.threads;
    const std::size_t remainder = total % opt.threads;
    std::vector<std::thread> threads;
    threads.reserve(opt.threads);
    for (std::size_t t = 0; t < opt.threads; ++t) {
      const std::size_t quota = per_thread + (t < remainder ? 1 : 0);
      threads.emplace_back([&, t, quota] {
        medcc::net::ClusterClient client(client_config);
        for (std::size_t k = 0; k < quota; ++k) {
          SchedulingRequest duplicate = request;
          duplicate.tenant = tenant_ids[(t + k) % tenant_ids.size()];
          const auto sent = std::chrono::steady_clock::now();
          try {
            const auto response = client.solve(duplicate);
            if (!response.ok()) {
              std::cerr << "FAIL: cluster solve rejected: " << response.error
                        << "\n";
              run_failed.store(true, std::memory_order_relaxed);
              return;
            }
          } catch (const std::exception& ex) {
            std::cerr << "FAIL: cluster solve failed: " << ex.what() << "\n";
            run_failed.store(true, std::memory_order_relaxed);
            return;
          }
          latencies[t].push_back(std::chrono::duration<double>(
                                     std::chrono::steady_clock::now() - sent)
                                     .count());
          completed.fetch_add(1, std::memory_order_relaxed);
        }
        for (const auto& stat : client.stats()) {
          failovers[t] += stat.failovers;
          errors[t] += stat.errors;
        }
      });
    }
    for (auto& thread : threads) thread.join();
  };

  const auto started = std::chrono::steady_clock::now();
  run_half(opt.requests / 2);
  nodes[killed].server->stop();
  run_half(opt.requests - opt.requests / 2);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  if (run_failed.load()) std::exit(1);

  ClusterReport report;
  report.nodes = kNodes;
  report.tenants = tenants;
  report.requests = completed.load();
  report.wall_seconds = wall;
  report.killed_node = killed;
  std::vector<double> all;
  all.reserve(opt.requests);
  for (std::size_t t = 0; t < opt.threads; ++t) {
    all.insert(all.end(), latencies[t].begin(), latencies[t].end());
    report.failovers += failovers[t];
    report.transport_errors += errors[t];
  }
  if (report.requests != opt.requests) {
    std::cerr << "FAIL: expected " << opt.requests << " responses, got "
              << report.requests << "\n";
    std::exit(1);
  }
  if (wall > 0.0)
    report.throughput_rps = static_cast<double>(report.requests) / wall;
  std::sort(all.begin(), all.end());
  const auto at = [&](double percent) {
    if (all.empty()) return 0.0;
    const auto rank = static_cast<std::size_t>(
        percent / 100.0 * static_cast<double>(all.size() - 1) + 0.5);
    return all[std::min(rank, all.size() - 1)] * 1e3;
  };
  report.p50_ms = at(50.0);
  report.p95_ms = at(95.0);
  report.p99_ms = at(99.0);

  for (ClusterNode& node : nodes) {
    node.replicator->stop();
    node.server->stop();
    node.service->shutdown();
  }
  return report;
}

void write_cluster_json(const std::string& path, const Options& opt,
                        const ClusterReport& report) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "FAIL: cannot write " << path << "\n";
    std::exit(1);
  }
  out << "{\n"
      << "  \"schema\": \"medcc-bench-serving/v1\",\n"
      << "  \"bench\": \"net_throughput\",\n"
      << "  \"mode\": \"" << (opt.smoke ? "cluster-smoke" : "cluster")
      << "\",\n"
      << "  \"host_cores\": " << std::thread::hardware_concurrency() << ",\n"
      << "  \"requests\": " << report.requests << ",\n"
      << "  \"cluster\": {\n"
      << "    \"nodes\": " << report.nodes << ",\n"
      << "    \"tenants\": " << report.tenants << ",\n"
      << "    \"killed_node\": " << report.killed_node << ",\n"
      << "    \"throughput_rps\": " << report.throughput_rps << ",\n"
      << "    \"p50_ms\": " << report.p50_ms << ",\n"
      << "    \"p95_ms\": " << report.p95_ms << ",\n"
      << "    \"p99_ms\": " << report.p99_ms << ",\n"
      << "    \"failovers\": " << report.failovers << ",\n"
      << "    \"transport_errors\": " << report.transport_errors << "\n"
      << "  }\n}\n";
}

/// The --cluster entry point: run, print, assert, write JSON.
int run_cluster_mode(const Options& opt, const SchedulingRequest& request) {
  std::cout << "=== net_throughput --cluster: replicated serving ===\n"
            << "requests=" << opt.requests << " threads=" << opt.threads
            << " tiles=" << opt.tiles << "\n\n";
  const ClusterReport report = run_cluster(opt, request);

  medcc::util::Table table({"cluster serving", "value"});
  table.add_row({"replicas", std::to_string(report.nodes)});
  table.add_row({"tenants", std::to_string(report.tenants)});
  table.add_row({"req/s", medcc::util::fmt(report.throughput_rps)});
  table.add_row({"p50 (ms)", medcc::util::fmt(report.p50_ms)});
  table.add_row({"p95 (ms)", medcc::util::fmt(report.p95_ms)});
  table.add_row({"p99 (ms)", medcc::util::fmt(report.p99_ms)});
  table.add_row({"failovers", std::to_string(report.failovers)});
  table.add_row({"transport errors", std::to_string(report.transport_errors)});
  std::cout << table.render() << "\n"
            << "node " << report.killed_node
            << " killed at the halfway mark; every request answered\n";

  if (!opt.json_path.empty()) write_cluster_json(opt.json_path, opt, report);

  if (report.failovers == 0) {
    std::cerr << "FAIL: killed a replica mid-run but observed no failover\n";
    return 1;
  }
  std::cout << (opt.smoke ? "smoke OK\n" : "OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  const SchedulingRequest request = build_request(opt);
  if (opt.cluster) return run_cluster_mode(opt, request);
  if (opt.trace_overhead) return run_trace_overhead_mode(opt, request);
  const unsigned cores = std::thread::hardware_concurrency();

  std::cout << "=== net_throughput: serving-path benchmark ===\n"
            << "requests=" << opt.requests << " threads=" << opt.threads
            << " connections=" << opt.connections << " window=" << opt.window
            << " tiles=" << opt.tiles << " host_cores=" << cores << "\n\n";

  // -- hit path: wire cache on vs off, one reactor, one client thread --
  const BlastReport wire_on = blast(opt, request, 1, true, 1);
  const BlastReport wire_off = blast(opt, request, 1, false, 1);
  if (wire_on.fastpath_hits < opt.requests) {
    std::cerr << "FAIL: expected every measured request on the fast path, "
              << "got " << wire_on.fastpath_hits << " of " << opt.requests
              << "\n";
    return 1;
  }
  if (wire_off.fastpath_hits != 0) {
    std::cerr << "FAIL: fast-path hits with the wire cache disabled\n";
    return 1;
  }

  medcc::util::Table hit_table({"exact-hit serving", "ns/req", "req/s",
                                "p50 (ms)", "p99 (ms)"});
  hit_table.add_row({"re-encode (wire cache off)",
                     medcc::util::fmt(wire_off.ns_per_request),
                     medcc::util::fmt(wire_off.throughput_rps),
                     medcc::util::fmt(wire_off.p50_ms),
                     medcc::util::fmt(wire_off.p99_ms)});
  hit_table.add_row({"fast path (wire cache on)",
                     medcc::util::fmt(wire_on.ns_per_request),
                     medcc::util::fmt(wire_on.throughput_rps),
                     medcc::util::fmt(wire_on.p50_ms),
                     medcc::util::fmt(wire_on.p99_ms)});
  std::cout << hit_table.render() << "\n";

  const double hit_speedup =
      wire_on.ns_per_request > 0.0
          ? wire_off.ns_per_request / wire_on.ns_per_request
          : 0.0;
  std::cout << "hit-path speedup (fast path vs re-encode): "
            << medcc::util::fmt(hit_speedup) << "x\n\n";

  // -- reactor scaling: 1 vs 4 io threads, fast-path-heavy traffic --
  std::vector<BlastReport> reactors;
  reactors.push_back(blast(opt, request, 1, true, opt.threads));
  reactors.push_back(blast(opt, request, 4, true, opt.threads));

  medcc::util::Table scale_table({"reactors", "req/s", "p50 (ms)",
                                  "p95 (ms)", "p99 (ms)"});
  for (const BlastReport& r : reactors)
    scale_table.add_row({std::to_string(r.io_threads),
                         medcc::util::fmt(r.throughput_rps),
                         medcc::util::fmt(r.p50_ms),
                         medcc::util::fmt(r.p95_ms),
                         medcc::util::fmt(r.p99_ms)});
  std::cout << scale_table.render() << "\n";

  const double scale_speedup =
      reactors[0].throughput_rps > 0.0
          ? reactors[1].throughput_rps / reactors[0].throughput_rps
          : 0.0;
  std::cout << "reactor speedup (4 vs 1 io threads): "
            << medcc::util::fmt(scale_speedup) << "x\n";

  if (!opt.json_path.empty())
    write_json(opt.json_path, opt, wire_on, wire_off, reactors);

  if (hit_speedup < 3.0) {
    std::cerr << "FAIL: hit-path speedup " << hit_speedup
              << "x below the 3x target\n";
    return 1;
  }
  if (cores >= 4) {
    if (scale_speedup < 2.0) {
      std::cerr << "FAIL: reactor speedup " << scale_speedup
                << "x below the 2x target on a " << cores << "-core host\n";
      return 1;
    }
  } else {
    std::cout << "reactor-speedup assertion skipped: host has " << cores
              << " core(s), needs >= 4 for multi-reactor scaling\n";
  }
  std::cout << (opt.smoke ? "smoke OK\n" : "OK\n");
  return 0;
}
