// Serving-path load generator: measures the network front end
// end-to-end (TCP loopback, pipelined MultiClient traffic) along the
// two axes this layer optimizes.
//
//  1. Hit path: the same duplicate stream against a server with the
//     wire cache (zero-copy encoded-frame fast path) on vs off. With
//     it off every request still hits the *result* cache but pays
//     request decode, a queue hop to a worker, fingerprinting and
//     response re-encode; with it on a verbatim duplicate is answered
//     by splicing memoized bytes into the outbuf. The smoke asserts
//     >= 3x fewer ns per request.
//
//  2. Reactor scaling: the same fast-path-heavy blast from several
//     client threads against --io-threads 1 vs 4. With the per-request
//     CPU cost collapsed by the fast path the server is IO-bound, so
//     aggregate throughput should scale with reactors; the smoke
//     asserts >= 2x on hosts with >= 4 cores (skipped below that --
//     there is nothing to scale onto).
//
// Usage: net_throughput [--requests N] [--threads T] [--connections C]
//                       [--window W] [--tiles K] [--seed S]
//                       [--smoke] [--json PATH]
// --json writes the numbers under schema "medcc-bench-serving/v1"
// (documented in docs/perf.md); CI uploads it as the tracked baseline.
#include <algorithm>
#include <chrono>
#include <cstddef>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "cloud/vm_type.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "sched/instance.hpp"
#include "service/service.hpp"
#include "util/flags.hpp"
#include "util/prng.hpp"
#include "util/table.hpp"
#include "workflow/patterns.hpp"
#include "workflow/workflow.hpp"

namespace {

using medcc::net::LoadStats;
using medcc::net::MultiClient;
using medcc::net::MultiClientConfig;
using medcc::sched::Instance;
using medcc::service::SchedulingRequest;

struct Options {
  std::size_t requests = 4000;  ///< per measured run, across all threads
  std::size_t threads = 4;      ///< client threads (reactor-scaling runs)
  std::size_t connections = 4;  ///< connections per client thread
  std::size_t window = 32;      ///< pipelined requests per connection
  std::size_t tiles = 6;
  std::uint64_t seed = 20130801;  // ICPP'13
  bool smoke = false;
  std::string json_path;
};

Options parse(int argc, char** argv) {
  Options opt;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      const auto next = [&]() -> std::string {
        if (i + 1 >= argc) {
          std::cerr << "missing value after " << arg << "\n";
          std::exit(2);
        }
        return argv[++i];
      };
      if (arg == "--requests") {
        opt.requests = medcc::util::parse_flag_size(next());
      } else if (arg == "--threads") {
        opt.threads = medcc::util::parse_flag_size(next());
      } else if (arg == "--connections") {
        opt.connections = medcc::util::parse_flag_size(next());
      } else if (arg == "--window") {
        opt.window = medcc::util::parse_flag_size(next());
      } else if (arg == "--tiles") {
        opt.tiles = medcc::util::parse_flag_size(next());
      } else if (arg == "--seed") {
        opt.seed = medcc::util::parse_flag_size(next());
      } else if (arg == "--smoke") {
        opt.smoke = true;
      } else if (arg == "--json") {
        opt.json_path = next();
      } else {
        std::cerr << "unknown argument: " << arg << "\n";
        std::exit(2);
      }
    }
  } catch (const std::exception& ex) {
    std::cerr << "invalid argument value: " << ex.what() << "\n";
    std::exit(2);
  }
  if (opt.smoke) {
    opt.requests = 600;
    opt.threads = 2;
    opt.connections = 2;
    opt.window = 16;
    opt.tiles = 4;
  }
  if (opt.requests == 0 || opt.threads == 0) {
    std::cerr << "--requests and --threads must be positive\n";
    std::exit(2);
  }
  return opt;
}

/// One request everybody resubmits verbatim (the wire cache keys on the
/// exact body bytes, so one shared request makes every post-prime send
/// an exact hit).
SchedulingRequest build_request(const Options& opt) {
  medcc::util::Prng rng(opt.seed);
  auto wf = medcc::workflow::montage_like(opt.tiles, rng);
  auto instance = std::make_shared<const Instance>(
      Instance::from_model(std::move(wf), medcc::cloud::example_catalog()));
  medcc::sched::Schedule cheapest;
  cheapest.type_of.assign(instance->module_count(),
                          instance->catalog().cheapest_rate_index());
  const double cmin = medcc::sched::total_cost(*instance, cheapest);
  SchedulingRequest request;
  request.instance = std::move(instance);
  request.budget = cmin * 1.35 + 1.0;
  // Critical-Greedy keeps the single priming solve (the only solver
  // call in the whole bench) cheap.
  request.solver = "cg";
  return request;
}

struct BlastReport {
  std::size_t io_threads = 0;
  std::size_t client_threads = 0;
  std::uint64_t requests = 0;
  double wall_seconds = 0.0;
  double throughput_rps = 0.0;
  double ns_per_request = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  std::uint64_t fastpath_hits = 0;
};

/// Starts a fresh service + server, primes the caches with one request,
/// then blasts `opt.requests` verbatim duplicates from `client_threads`
/// MultiClients and reports aggregate client-side numbers.
BlastReport blast(const Options& opt, const SchedulingRequest& request,
                  std::size_t io_threads, bool wire_cache_on,
                  std::size_t client_threads) {
  medcc::service::ServiceConfig service_config;
  service_config.threads = 2;
  service_config.queue_capacity = opt.requests + 16;
  service_config.cache_capacity = 4096;
  service_config.wire_cache_capacity = wire_cache_on ? 1024 : 0;
  medcc::service::SchedulingService service(std::move(service_config));

  medcc::net::ServerConfig server_config;
  server_config.io_threads = io_threads;
  medcc::net::Server server(service, server_config);

  MultiClientConfig client_config;
  client_config.port = server.port();
  client_config.connections = opt.connections;
  client_config.window = opt.window;

  // Prime: the first occurrence pays the solver; afterwards the result
  // cache (and, when enabled, the wire cache) hold the answer, so the
  // measured stream exercises only the duplicate-serving path.
  {
    MultiClient primer(client_config);
    const LoadStats primed = primer.run(request, 1);
    if (primed.ok != 1) {
      std::cerr << "FAIL: priming request failed\n";
      std::exit(1);
    }
  }

  const std::size_t per_thread = opt.requests / client_threads;
  const std::size_t remainder = opt.requests % client_threads;
  std::vector<LoadStats> results(client_threads);
  std::vector<std::thread> threads;
  threads.reserve(client_threads);
  const auto started = std::chrono::steady_clock::now();
  for (std::size_t t = 0; t < client_threads; ++t) {
    const std::size_t quota = per_thread + (t < remainder ? 1 : 0);
    threads.emplace_back([&, t, quota] {
      MultiClient client(client_config);
      results[t] = client.run(request, quota);
    });
  }
  for (auto& thread : threads) thread.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();

  BlastReport report;
  report.io_threads = server.reactor_count();
  report.client_threads = client_threads;
  report.wall_seconds = wall;
  std::vector<double> latencies;
  latencies.reserve(opt.requests);
  for (const LoadStats& r : results) {
    report.requests += r.ok;
    if (r.failed != 0) {
      std::cerr << "FAIL: " << r.failed << " request(s) failed\n";
      std::exit(1);
    }
    latencies.insert(latencies.end(), r.latency_seconds.begin(),
                     r.latency_seconds.end());
  }
  if (report.requests != opt.requests) {
    std::cerr << "FAIL: expected " << opt.requests << " responses, got "
              << report.requests << "\n";
    std::exit(1);
  }
  if (wall > 0.0) {
    report.throughput_rps = static_cast<double>(report.requests) / wall;
    report.ns_per_request =
        wall * 1e9 / static_cast<double>(report.requests);
  }
  std::sort(latencies.begin(), latencies.end());
  const auto at = [&](double percent) {
    if (latencies.empty()) return 0.0;
    const auto rank = static_cast<std::size_t>(
        percent / 100.0 * static_cast<double>(latencies.size() - 1) + 0.5);
    return latencies[std::min(rank, latencies.size() - 1)] * 1e3;
  };
  report.p50_ms = at(50.0);
  report.p95_ms = at(95.0);
  report.p99_ms = at(99.0);
  report.fastpath_hits = server.counters().fastpath_hits;

  server.stop();
  service.shutdown();
  return report;
}

void write_json(const std::string& path, const Options& opt,
                const BlastReport& wire_on, const BlastReport& wire_off,
                const std::vector<BlastReport>& reactors) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "FAIL: cannot write " << path << "\n";
    std::exit(1);
  }
  out << "{\n"
      << "  \"schema\": \"medcc-bench-serving/v1\",\n"
      << "  \"bench\": \"net_throughput\",\n"
      << "  \"mode\": \"" << (opt.smoke ? "smoke" : "full") << "\",\n"
      << "  \"host_cores\": " << std::thread::hardware_concurrency() << ",\n"
      << "  \"requests\": " << opt.requests << ",\n"
      << "  \"hit_path\": {\n"
      << "    \"fastpath_ns_op\": " << wire_on.ns_per_request << ",\n"
      << "    \"encode_ns_op\": " << wire_off.ns_per_request << ",\n"
      << "    \"speedup\": "
      << (wire_on.ns_per_request > 0.0
              ? wire_off.ns_per_request / wire_on.ns_per_request
              : 0.0)
      << "\n"
      << "  },\n"
      << "  \"reactors\": [\n";
  for (std::size_t i = 0; i < reactors.size(); ++i) {
    const BlastReport& r = reactors[i];
    out << "    {\"io_threads\": " << r.io_threads
        << ", \"client_threads\": " << r.client_threads
        << ", \"throughput_rps\": " << r.throughput_rps
        << ", \"p50_ms\": " << r.p50_ms << ", \"p95_ms\": " << r.p95_ms
        << ", \"p99_ms\": " << r.p99_ms << "}"
        << (i + 1 < reactors.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  const SchedulingRequest request = build_request(opt);
  const unsigned cores = std::thread::hardware_concurrency();

  std::cout << "=== net_throughput: serving-path benchmark ===\n"
            << "requests=" << opt.requests << " threads=" << opt.threads
            << " connections=" << opt.connections << " window=" << opt.window
            << " tiles=" << opt.tiles << " host_cores=" << cores << "\n\n";

  // -- hit path: wire cache on vs off, one reactor, one client thread --
  const BlastReport wire_on = blast(opt, request, 1, true, 1);
  const BlastReport wire_off = blast(opt, request, 1, false, 1);
  if (wire_on.fastpath_hits < opt.requests) {
    std::cerr << "FAIL: expected every measured request on the fast path, "
              << "got " << wire_on.fastpath_hits << " of " << opt.requests
              << "\n";
    return 1;
  }
  if (wire_off.fastpath_hits != 0) {
    std::cerr << "FAIL: fast-path hits with the wire cache disabled\n";
    return 1;
  }

  medcc::util::Table hit_table({"exact-hit serving", "ns/req", "req/s",
                                "p50 (ms)", "p99 (ms)"});
  hit_table.add_row({"re-encode (wire cache off)",
                     medcc::util::fmt(wire_off.ns_per_request),
                     medcc::util::fmt(wire_off.throughput_rps),
                     medcc::util::fmt(wire_off.p50_ms),
                     medcc::util::fmt(wire_off.p99_ms)});
  hit_table.add_row({"fast path (wire cache on)",
                     medcc::util::fmt(wire_on.ns_per_request),
                     medcc::util::fmt(wire_on.throughput_rps),
                     medcc::util::fmt(wire_on.p50_ms),
                     medcc::util::fmt(wire_on.p99_ms)});
  std::cout << hit_table.render() << "\n";

  const double hit_speedup =
      wire_on.ns_per_request > 0.0
          ? wire_off.ns_per_request / wire_on.ns_per_request
          : 0.0;
  std::cout << "hit-path speedup (fast path vs re-encode): "
            << medcc::util::fmt(hit_speedup) << "x\n\n";

  // -- reactor scaling: 1 vs 4 io threads, fast-path-heavy traffic --
  std::vector<BlastReport> reactors;
  reactors.push_back(blast(opt, request, 1, true, opt.threads));
  reactors.push_back(blast(opt, request, 4, true, opt.threads));

  medcc::util::Table scale_table({"reactors", "req/s", "p50 (ms)",
                                  "p95 (ms)", "p99 (ms)"});
  for (const BlastReport& r : reactors)
    scale_table.add_row({std::to_string(r.io_threads),
                         medcc::util::fmt(r.throughput_rps),
                         medcc::util::fmt(r.p50_ms),
                         medcc::util::fmt(r.p95_ms),
                         medcc::util::fmt(r.p99_ms)});
  std::cout << scale_table.render() << "\n";

  const double scale_speedup =
      reactors[0].throughput_rps > 0.0
          ? reactors[1].throughput_rps / reactors[0].throughput_rps
          : 0.0;
  std::cout << "reactor speedup (4 vs 1 io threads): "
            << medcc::util::fmt(scale_speedup) << "x\n";

  if (!opt.json_path.empty())
    write_json(opt.json_path, opt, wire_on, wire_off, reactors);

  if (hit_speedup < 3.0) {
    std::cerr << "FAIL: hit-path speedup " << hit_speedup
              << "x below the 3x target\n";
    return 1;
  }
  if (cores >= 4) {
    if (scale_speedup < 2.0) {
      std::cerr << "FAIL: reactor speedup " << scale_speedup
                << "x below the 2x target on a " << cores << "-core host\n";
      return 1;
    }
  } else {
    std::cout << "reactor-speedup assertion skipped: host has " << cores
              << " core(s), needs >= 4 for multi-reactor scaling\n";
  }
  std::cout << (opt.smoke ? "smoke OK\n" : "OK\n");
  return 0;
}
