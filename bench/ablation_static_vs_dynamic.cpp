// Ablation A10: what is the paper's whole-DAG knowledge worth? Compares
// the static Critical-Greedy plan (computed up front from the TE/CE
// matrices) with the online dynamic scheduler (modules placed when ready,
// no lookahead) across budget levels, on the WRF instance and random
// workflows.
#include <iostream>

#include "expr/instance_gen.hpp"
#include "sched/bounds.hpp"
#include "sched/critical_greedy.hpp"
#include "sched/reuse_aware.hpp"
#include "sim/dynamic.hpp"
#include "testbed/wrf_experiment.hpp"
#include "util/table.hpp"

namespace {

void compare(const std::string& label, const medcc::sched::Instance& inst,
             medcc::util::Table& t) {
  const auto bounds = medcc::sched::cost_bounds(inst);
  for (double frac : {0.25, 0.5, 0.9}) {
    const double budget = bounds.cmin + frac * (bounds.cmax - bounds.cmin);
    const auto cg = medcc::sched::critical_greedy(inst, budget);
    const auto aware =
        medcc::sched::critical_greedy_reuse_aware(inst, budget);
    medcc::sim::DynamicOptions minfin;
    minfin.budget = budget;
    const auto dyn = medcc::sim::dynamic_execute(inst, minfin);
    medcc::sim::DynamicOptions cheap;
    cheap.budget = budget;
    cheap.policy = medcc::sim::DynamicPolicy::CheapestFirst;
    const auto frugal = medcc::sim::dynamic_execute(inst, cheap);
    t.add_row({label + " @" + medcc::util::fmt(frac * 100.0, 0) + "%",
               medcc::util::fmt(budget, 1), medcc::util::fmt(cg.eval.med, 1),
               medcc::util::fmt(aware.eval.med, 1),
               medcc::util::fmt(dyn.makespan, 1),
               medcc::util::fmt(frugal.makespan, 1),
               medcc::util::fmt(dyn.billed_cost, 1),
               medcc::util::fmt(
                   static_cast<double>(dyn.vm_types.size()), 0)});
  }
}

}  // namespace

int main() {
  std::cout << "=== Ablation A10 -- static plan vs online scheduling ===\n\n";
  medcc::util::Table t({"instance @budget", "budget", "static CG MED",
                        "reuse-aware CG MED", "dynamic MED",
                        "dynamic-cheap MED", "dynamic $", "dynamic VMs"});
  compare("WRF", medcc::testbed::wrf_instance(), t);
  medcc::util::Prng root(2468);
  for (int k = 0; k < 3; ++k) {
    auto rng = root.fork(static_cast<std::uint64_t>(k));
    const auto inst = medcc::expr::make_instance({20, 80, 5}, rng);
    compare("rand" + std::to_string(k + 1), inst, t);
  }
  std::cout << t.render() << '\n';
  std::cout << "reading: two opposing forces. The static plan has whole-DAG "
               "knowledge, so at\ntight budgets on the WRF instance it "
               "routes money to the critical path while\nthe online policy "
               "burns it on early-ready modules (438.6 vs 784.0 at 25%).\n"
               "But the online scheduler reuses idle VMs and so shares "
               "billing quanta, which\nthe paper's per-module cost model "
               "cannot: on the random instances that extra\npurchasing "
               "power lets it beat the static plan outright. The reuse-aware CG\ncolumn is that synthesis: whole-DAG "
               "knowledge priced with shared quanta.\n";
  return 0;
}
