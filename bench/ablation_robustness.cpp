// Ablation A9: schedule robustness under runtime noise. The paper
// schedules against measured execution times; this bench asks what happens
// when real runs jitter -- how much realized-MED risk do CG and GAIN3
// schedules carry, and what budget premium buys a 95th-percentile
// guarantee.
#include <iostream>

#include "expr/compare.hpp"
#include "expr/robustness.hpp"
#include "sched/critical_greedy.hpp"
#include "sched/gain_loss.hpp"
#include "testbed/wrf_experiment.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

int main() {
  std::cout << "=== Ablation A9 -- schedule robustness under 10% runtime "
               "noise ===\n\n";
  using namespace medcc;
  auto& pool = util::global_pool();

  expr::RobustnessOptions ropts;
  ropts.noise = 0.10;
  ropts.trials = 1000;
  ropts.seed = 20130613;

  {
    util::Table t({"schedule", "nominal MED", "mean", "p95", "max",
                   "P(miss nominal+5%)"});
    const auto inst = testbed::wrf_instance();
    for (double budget : {155.0, 180.1}) {
      for (int which = 0; which < 2; ++which) {
        const auto r = which == 0 ? sched::critical_greedy(inst, budget)
                                  : sched::gain3(inst, budget);
        const auto rep = expr::assess_robustness(inst, r.schedule, pool,
                                                 ropts);
        t.add_row({std::string(which == 0 ? "CG" : "GAIN3") + " @ " +
                       util::fmt(budget, 1),
                   util::fmt(rep.nominal_med, 1), util::fmt(rep.mean, 1),
                   util::fmt(rep.p95, 1), util::fmt(rep.max, 1),
                   util::fmt(rep.miss_rate(rep.nominal_med * 1.05), 2)});
      }
    }
    std::cout << "WRF instance:\n" << t.render() << '\n';
  }

  // Budget premium for a p95 guarantee: sweep budgets; find the cheapest
  // CG schedule whose p95 meets a target that the nominal-optimal budget
  // only meets in expectation.
  {
    const auto inst = testbed::wrf_instance();
    const auto bounds = sched::cost_bounds(inst);
    const double target = 250.0;  // seconds
    double nominal_budget = -1.0, robust_budget = -1.0;
    for (double budget : sched::budget_levels(bounds, 40)) {
      const auto r = sched::critical_greedy(inst, budget);
      if (nominal_budget < 0.0 && r.eval.med <= target)
        nominal_budget = r.eval.cost;
      if (robust_budget < 0.0) {
        const auto rep =
            expr::assess_robustness(inst, r.schedule, pool, ropts);
        if (rep.p95 <= target) robust_budget = r.eval.cost;
      }
    }
    std::cout << "to finish within " << util::fmt(target, 0)
              << " s: nominal plan costs " << util::fmt(nominal_budget, 1)
              << "; a p95-guaranteed plan costs "
              << util::fmt(robust_budget, 1) << " ("
              << util::fmt((robust_budget / nominal_budget - 1.0) * 100.0, 1)
              << "% premium)\n\n";
  }
  std::cout << "reading: nominal MEDs understate realized delay (max-of-"
               "paths is convex in the\nmodule times); tight schedules "
               "carry meaningful deadline risk, and a modest\nbudget "
               "premium converts the point estimate into a p95 "
               "guarantee.\n";
  return 0;
}
