// Ablation A1: what makes Critical-Greedy work -- the critical-only
// candidate set, or the absolute-dT criterion? Crosses both knobs and adds
// the strengthened all-pairs GAIN as a reference, over the paper's problem
// sizes.
#include <iostream>

#include "expr/compare.hpp"
#include "sched/critical_greedy.hpp"
#include "sched/gain_loss.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

int main() {
  std::cout << "=== Ablation A1 -- candidate set and criterion ===\n"
            << "avg MED over 20 budget levels x 5 instances per size\n\n";
  auto& pool = medcc::util::global_pool();

  const std::vector<medcc::expr::ProblemSize> sizes = {
      {10, 17, 4}, {25, 201, 5}, {50, 503, 7}, {100, 2344, 9}};
  constexpr std::size_t kInstances = 5;
  constexpr std::size_t kLevels = 20;

  struct Config {
    const char* name;
    medcc::sched::CriticalGreedyOptions cg;
    bool is_gain = false;
    medcc::sched::GainMoveSet gain_moves =
        medcc::sched::GainMoveSet::FastestType;
  };
  const std::vector<Config> configs = {
      {"CG (critical, max dT)", {}, false, {}},
      {"CG-all (all modules, max dT)", {true, false}, false, {}},
      {"CG-ratio (critical, dT/dC)", {false, true}, false, {}},
      {"GAIN3 (paper baseline)", {}, true,
       medcc::sched::GainMoveSet::FastestType},
      {"GAIN3+ (all pairs)", {}, true, medcc::sched::GainMoveSet::AllPairs},
  };

  medcc::util::Table t({"size", "CG", "CG-all", "CG-ratio", "GAIN3",
                        "GAIN3+ (all pairs)"});
  medcc::util::Prng root(606);
  for (const auto& size : sizes) {
    std::vector<double> sums(configs.size(), 0.0);
    std::vector<std::vector<double>> per_instance(
        kInstances, std::vector<double>(configs.size(), 0.0));
    medcc::util::parallel_for_index(pool, kInstances, [&](std::size_t k) {
      auto rng = root.fork(size.modules * 1000 + k);
      const auto inst = medcc::expr::make_instance(size, rng);
      const auto bounds = medcc::sched::cost_bounds(inst);
      for (double budget : medcc::sched::budget_levels(bounds, kLevels)) {
        for (std::size_t c = 0; c < configs.size(); ++c) {
          double med;
          if (configs[c].is_gain) {
            med = medcc::sched::gain(inst, budget,
                                     medcc::sched::GainLossVariant::V3,
                                     configs[c].gain_moves)
                      .eval.med;
          } else {
            med = medcc::sched::critical_greedy(inst, budget, configs[c].cg)
                      .eval.med;
          }
          per_instance[k][c] += med;
        }
      }
    });
    for (std::size_t k = 0; k < kInstances; ++k)
      for (std::size_t c = 0; c < configs.size(); ++c)
        sums[c] += per_instance[k][c];

    std::vector<std::string> row{
        "(" + std::to_string(size.modules) + "," +
        std::to_string(size.edges) + "," + std::to_string(size.types) + ")"};
    for (double sum : sums)
      row.push_back(
          medcc::util::fmt(sum / double(kInstances * kLevels), 2));
    t.add_row(std::move(row));
  }
  std::cout << t.render() << '\n';
  std::cout << "reading: lower is better. The critical-only candidate set "
               "is the decisive\ningredient (CG vs CG-all); the dT vs "
               "dT/dC criterion matters less; the\nall-pairs GAIN closes "
               "much of the gap, confirming the paper's diagnosis that\n"
               "plain GAIN3 wastes budget on branch modules.\n";
  return 0;
}
