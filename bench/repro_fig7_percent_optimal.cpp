// Reproduces Fig. 7: the percentage of instances on which Critical-Greedy
// and GAIN3 reach the exhaustive optimum -- problem sizes (5,6,3) to
// (8,18,3), 100 random instances each, budget = median of [Cmin, Cmax].
#include <iostream>

#include "expr/compare.hpp"
#include "util/ascii_plot.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

int main() {
  std::cout << "=== Fig. 7 -- percentage of optimal, CG vs GAIN3 ===\n\n";
  auto& pool = medcc::util::global_pool();
  const auto studies = medcc::expr::optimality_study(
      pool, medcc::expr::fig7_sizes(), /*instances=*/100,
      /*seed=*/777);

  medcc::util::Table t(
      {"problem size", "CG % optimal", "GAIN3 % optimal"});
  std::vector<std::string> labels;
  std::vector<double> cg_values, gain_values;
  for (const auto& study : studies) {
    const std::string label = "(" + std::to_string(study.size.modules) +
                              "," + std::to_string(study.size.edges) + "," +
                              std::to_string(study.size.types) + ")";
    t.add_row({label, medcc::util::fmt(study.cg_percent_optimal, 1),
               medcc::util::fmt(study.gain_percent_optimal, 1)});
    labels.push_back(label);
    cg_values.push_back(study.cg_percent_optimal);
    gain_values.push_back(study.gain_percent_optimal);
  }
  std::cout << t.render() << '\n';

  medcc::util::PlotOptions opts;
  opts.title =
      "Fig. 7 -- % of 100 instances reaching the optimal MED (median "
      "budget)";
  std::cout << medcc::util::grouped_bar_chart(
      labels, std::vector<std::string>{"Critical-Greedy", "GAIN3"},
      {cg_values, gain_values}, opts);
  std::cout << "\nExpected shape (paper): CG reaches optimality more often "
               "than GAIN3 at every size.\n";
  return 0;
}
