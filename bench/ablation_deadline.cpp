// Ablation A7: the dual problem -- minimum cost under a deadline (the
// objective of the deadline-constrained related work: Yu et al., Abrishami
// et al.). Compares the LOSS-style heuristic against the exact optimum on
// small instances, and shows the deadline -> recommended-budget mapping
// (the "resource provisioning reference" of the paper's introduction).
#include <iostream>

#include "expr/instance_gen.hpp"
#include "workflow/patterns.hpp"
#include "sched/bounds.hpp"
#include "sched/deadline.hpp"
#include "sched/pcp.hpp"
#include "util/table.hpp"

int main() {
  std::cout << "=== Ablation A7 -- minimum cost under a deadline ===\n\n";
  using namespace medcc;

  // Heuristic vs exact over small random instances and deadline tiers.
  {
    util::Table t({"instance", "deadline tier", "heuristic $", "PCP $",
                   "exact $", "gap (%)"});
    util::Prng root(321);
    double worst_gap = 0.0;
    for (int k = 0; k < 6; ++k) {
      auto rng = root.fork(static_cast<std::uint64_t>(k));
      const auto inst = expr::make_instance({8, 18, 3}, rng);
      const auto fastest =
          sched::evaluate(inst, sched::fastest_schedule(inst));
      const auto least =
          sched::evaluate(inst, sched::least_cost_schedule(inst));
      int tier = 0;
      for (double frac : {0.15, 0.5, 0.85}) {
        ++tier;
        const double deadline =
            fastest.med + frac * (least.med - fastest.med);
        const auto heuristic = sched::deadline_loss(inst, deadline);
        const auto pcp = sched::pcp_deadline(inst, deadline);
        const auto exact =
            sched::min_cost_under_deadline_exact(inst, deadline);
        const double gap = exact.eval.cost > 0.0
                               ? (heuristic.eval.cost - exact.eval.cost) /
                                     exact.eval.cost * 100.0
                               : 0.0;
        worst_gap = std::max(worst_gap, gap);
        t.add_row({util::fmt(k + 1), "T" + std::to_string(tier),
                   util::fmt(heuristic.eval.cost, 2),
                   util::fmt(pcp.eval.cost, 2),
                   util::fmt(exact.eval.cost, 2), util::fmt(gap, 1)});
      }
    }
    std::cout << t.render() << "worst heuristic gap: "
              << util::fmt(worst_gap, 1) << "%\n\n";
  }

  // Deadline -> budget advisory curve on the paper's numerical example.
  {
    const auto inst = sched::Instance::from_model(
        workflow::example6(), cloud::example_catalog());
    util::Table t({"deadline (h)", "budget to request ($)",
                   "min cost (deadline_loss)"});
    for (double deadline : {5.5, 6.0, 6.77, 7.5, 8.2, 10.77, 13.0, 16.77}) {
      t.add_row({util::fmt(deadline, 2),
                 util::fmt(sched::budget_for_deadline(inst, deadline), 0),
                 util::fmt(sched::deadline_loss(inst, deadline).eval.cost,
                           0)});
    }
    std::cout << "Deadline advisory on the numerical example:\n"
              << t.render() << '\n';
  }
  std::cout << "reading: the LOSS-style heuristic tracks the exact optimum "
               "closely at loose\ndeadlines and degrades gracefully near "
               "the fastest-schedule bound; the advisory\ncolumn is the "
               "budget a user should request so Critical-Greedy meets the "
               "deadline.\n";
  return 0;
}
