// Ablation A5: scheduler micro-benchmarks (google-benchmark). Measures
// the runtime scaling of CPM, Critical-Greedy, GAIN3 and the simulator as
// problem size grows, plus instance-generation and parallel-sweep
// throughput.
#include <benchmark/benchmark.h>

#include "expr/compare.hpp"
#include "sched/bounds.hpp"
#include "sched/critical_greedy.hpp"
#include "sched/gain_loss.hpp"
#include "sim/executor.hpp"

namespace {

medcc::sched::Instance instance_for(std::size_t m) {
  medcc::util::Prng rng(m * 2654435761u + 17);
  // Density and catalog size scale like the paper's Table IV settings.
  const std::size_t edges = m * (m - 1) / 4;
  const std::size_t types = 3 + m / 16;
  return medcc::expr::make_instance({m, edges, types}, rng);
}

void BM_Cpm(benchmark::State& state) {
  const auto inst = instance_for(static_cast<std::size_t>(state.range(0)));
  const auto least = medcc::sched::least_cost_schedule(inst);
  const auto weights = medcc::sched::durations(inst, least);
  for (auto _ : state) {
    benchmark::DoNotOptimize(medcc::dag::compute_cpm(
        inst.workflow().graph(), weights, inst.edge_times()));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Cpm)->RangeMultiplier(4)->Range(16, 1024)->Complexity();

void BM_CriticalGreedy(benchmark::State& state) {
  const auto inst = instance_for(static_cast<std::size_t>(state.range(0)));
  const auto bounds = medcc::sched::cost_bounds(inst);
  const double budget = 0.5 * (bounds.cmin + bounds.cmax);
  for (auto _ : state) {
    benchmark::DoNotOptimize(medcc::sched::critical_greedy(inst, budget));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CriticalGreedy)->RangeMultiplier(4)->Range(16, 1024)->Complexity();

void BM_Gain3(benchmark::State& state) {
  const auto inst = instance_for(static_cast<std::size_t>(state.range(0)));
  const auto bounds = medcc::sched::cost_bounds(inst);
  const double budget = 0.5 * (bounds.cmin + bounds.cmax);
  for (auto _ : state) {
    benchmark::DoNotOptimize(medcc::sched::gain3(inst, budget));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Gain3)->RangeMultiplier(4)->Range(16, 1024)->Complexity();

void BM_Simulate(benchmark::State& state) {
  const auto inst = instance_for(static_cast<std::size_t>(state.range(0)));
  const auto bounds = medcc::sched::cost_bounds(inst);
  const auto r = medcc::sched::critical_greedy(
      inst, 0.5 * (bounds.cmin + bounds.cmax));
  for (auto _ : state) {
    benchmark::DoNotOptimize(medcc::sim::execute(inst, r.schedule));
  }
}
BENCHMARK(BM_Simulate)->RangeMultiplier(4)->Range(16, 256);

void BM_InstanceGeneration(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  medcc::util::Prng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        medcc::expr::make_instance({m, m * (m - 1) / 4, 5}, rng));
  }
}
BENCHMARK(BM_InstanceGeneration)->RangeMultiplier(4)->Range(16, 1024);

void BM_BudgetSweep20Levels(benchmark::State& state) {
  const auto inst = instance_for(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(medcc::expr::sweep_budgets(inst, 20));
  }
}
BENCHMARK(BM_BudgetSweep20Levels)->Arg(50)->Arg(100);

}  // namespace

BENCHMARK_MAIN();
