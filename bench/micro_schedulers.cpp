// Ablation A5: scheduler micro-benchmarks. Two modes:
//
//  * default: the google-benchmark suite below (runtime scaling of CPM,
//    Critical-Greedy, GAIN3, the simulator, instance generation and the
//    parallel budget sweep);
//  * --smoke / --json <path>: a hand-timed suite comparing the legacy
//    dag::makespan fitness path against the allocation-free CPM kernel
//    (dag/cpm_kernel.hpp) on a genetic-style evaluation batch, plus
//    wall-clock solve times per scheduler. --json writes the numbers as a
//    machine-readable report (uploaded as a CI artifact); --smoke shrinks
//    the workload so the binary doubles as a ctest check, and fails if the
//    kernel is not at least 3x faster than the legacy path.
#include <benchmark/benchmark.h>

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "dag/cpm_kernel.hpp"
#include "expr/compare.hpp"
#include "sched/annealing.hpp"
#include "sched/bounds.hpp"
#include "sched/critical_greedy.hpp"
#include "sched/gain_loss.hpp"
#include "sched/genetic.hpp"
#include "sim/executor.hpp"

namespace {

medcc::sched::Instance instance_for(std::size_t m) {
  medcc::util::Prng rng(m * 2654435761u + 17);
  // Density and catalog size scale like the paper's Table IV settings.
  const std::size_t edges = m * (m - 1) / 4;
  const std::size_t types = 3 + m / 16;
  return medcc::expr::make_instance({m, edges, types}, rng);
}

void BM_Cpm(benchmark::State& state) {
  const auto inst = instance_for(static_cast<std::size_t>(state.range(0)));
  const auto least = medcc::sched::least_cost_schedule(inst);
  const auto weights = medcc::sched::durations(inst, least);
  for (auto _ : state) {
    benchmark::DoNotOptimize(medcc::dag::compute_cpm(
        inst.workflow().graph(), weights, inst.edge_times()));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Cpm)->RangeMultiplier(4)->Range(16, 1024)->Complexity();

void BM_CpmKernel(benchmark::State& state) {
  // The same forward+backward evaluation through the reusable workspace:
  // no validation, no topo recompute, no per-call allocation.
  const auto inst = instance_for(static_cast<std::size_t>(state.range(0)));
  const auto least = medcc::sched::least_cost_schedule(inst);
  const auto weights = medcc::sched::durations(inst, least);
  medcc::dag::CpmWorkspace ws;
  for (auto _ : state) {
    medcc::dag::cpm_into(inst.flat_dag(), weights, ws);
    benchmark::DoNotOptimize(ws.makespan);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CpmKernel)->RangeMultiplier(4)->Range(16, 1024)->Complexity();

void BM_CriticalGreedy(benchmark::State& state) {
  const auto inst = instance_for(static_cast<std::size_t>(state.range(0)));
  const auto bounds = medcc::sched::cost_bounds(inst);
  const double budget = 0.5 * (bounds.cmin + bounds.cmax);
  for (auto _ : state) {
    benchmark::DoNotOptimize(medcc::sched::critical_greedy(inst, budget));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CriticalGreedy)->RangeMultiplier(4)->Range(16, 1024)->Complexity();

void BM_Gain3(benchmark::State& state) {
  const auto inst = instance_for(static_cast<std::size_t>(state.range(0)));
  const auto bounds = medcc::sched::cost_bounds(inst);
  const double budget = 0.5 * (bounds.cmin + bounds.cmax);
  for (auto _ : state) {
    benchmark::DoNotOptimize(medcc::sched::gain3(inst, budget));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Gain3)->RangeMultiplier(4)->Range(16, 1024)->Complexity();

void BM_Simulate(benchmark::State& state) {
  const auto inst = instance_for(static_cast<std::size_t>(state.range(0)));
  const auto bounds = medcc::sched::cost_bounds(inst);
  const auto r = medcc::sched::critical_greedy(
      inst, 0.5 * (bounds.cmin + bounds.cmax));
  for (auto _ : state) {
    benchmark::DoNotOptimize(medcc::sim::execute(inst, r.schedule));
  }
}
BENCHMARK(BM_Simulate)->RangeMultiplier(4)->Range(16, 256);

void BM_InstanceGeneration(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  medcc::util::Prng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        medcc::expr::make_instance({m, m * (m - 1) / 4, 5}, rng));
  }
}
BENCHMARK(BM_InstanceGeneration)->RangeMultiplier(4)->Range(16, 1024);

void BM_BudgetSweep20Levels(benchmark::State& state) {
  const auto inst = instance_for(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(medcc::expr::sweep_budgets(inst, 20));
  }
}
BENCHMARK(BM_BudgetSweep20Levels)->Arg(50)->Arg(100);

// ---------------------------------------------------------------------------
// Hand-timed mode (--smoke / --json)
// ---------------------------------------------------------------------------

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct FitnessReport {
  std::size_t modules = 0;
  std::size_t edges = 0;
  std::size_t batch = 0;
  std::size_t reps = 0;
  /// The seed's fitness path: durations() + a full compute_cpm per eval
  /// (dag::makespan delegated to compute_cpm before this optimisation).
  double legacy_us_per_eval = 0.0;
  /// The current forward-only dag::makespan (memoized topo order, no
  /// CpmResult) -- already part of this optimisation's satellite work.
  double makespan_us_per_eval = 0.0;
  double kernel_us_per_eval = 0.0;
  double speedup = 0.0;           ///< legacy (seed) vs kernel
  double speedup_makespan = 0.0;  ///< current dag::makespan vs kernel
};

/// Times a genetic-style fitness batch -- makespan of many random
/// schedules on one instance -- through the seed's legacy path (durations()
/// + compute_cpm, which validates, recomputes slack vectors and allocates
/// per call), the current forward-only dag::makespan, and the CPM kernel
/// (weights refilled into a reusable workspace, forward pass only, zero
/// allocations). All three must agree bitwise.
FitnessReport time_fitness_batch(const medcc::sched::Instance& inst,
                                 std::size_t batch, std::size_t reps) {
  FitnessReport report;
  report.modules = inst.module_count();
  report.edges = inst.workflow().graph().edge_count();
  report.batch = batch;
  report.reps = reps;

  medcc::util::Prng rng(99);
  std::vector<medcc::sched::Schedule> schedules(batch);
  for (auto& s : schedules) {
    s.type_of.resize(inst.module_count());
    for (std::size_t i = 0; i < inst.module_count(); ++i)
      s.type_of[i] = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(inst.type_count()) - 1));
  }

  const auto& graph = inst.workflow().graph();
  double legacy_sum = 0.0;
  const auto legacy_start = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < reps; ++r) {
    for (const auto& s : schedules) {
      legacy_sum += medcc::dag::compute_cpm(graph,
                                            medcc::sched::durations(inst, s),
                                            inst.edge_times())
                        .makespan;
    }
  }
  const double legacy_seconds = seconds_since(legacy_start);

  double makespan_sum = 0.0;
  const auto makespan_start = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < reps; ++r) {
    for (const auto& s : schedules) {
      makespan_sum += medcc::dag::makespan(
          graph, medcc::sched::durations(inst, s), inst.edge_times());
    }
  }
  const double makespan_seconds = seconds_since(makespan_start);

  const auto& flat = inst.flat_dag();
  medcc::dag::CpmWorkspace ws;
  ws.prepare(flat.node_count());
  double kernel_sum = 0.0;
  const auto kernel_start = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < reps; ++r) {
    for (const auto& s : schedules) {
      for (std::size_t i = 0; i < inst.module_count(); ++i)
        ws.weights[i] = inst.time(i, s.type_of[i]);
      kernel_sum += medcc::dag::makespan_into(flat, ws);
    }
  }
  const double kernel_seconds = seconds_since(kernel_start);

  if (legacy_sum != kernel_sum || makespan_sum != kernel_sum) {
    std::cerr << "FAIL: kernel fitness diverged from the legacy path ("
              << kernel_sum << " vs " << legacy_sum << " / " << makespan_sum
              << ")\n";
    std::exit(1);
  }
  const double evals = static_cast<double>(batch * reps);
  report.legacy_us_per_eval = legacy_seconds / evals * 1e6;
  report.makespan_us_per_eval = makespan_seconds / evals * 1e6;
  report.kernel_us_per_eval = kernel_seconds / evals * 1e6;
  report.speedup =
      kernel_seconds > 0.0 ? legacy_seconds / kernel_seconds : 0.0;
  report.speedup_makespan =
      kernel_seconds > 0.0 ? makespan_seconds / kernel_seconds : 0.0;
  return report;
}

struct SolverReport {
  double critical_greedy_ms = 0.0;
  double genetic_ms = 0.0;
  double annealing_ms = 0.0;
};

SolverReport time_solvers(const medcc::sched::Instance& inst, bool smoke) {
  const auto bounds = medcc::sched::cost_bounds(inst);
  const double budget = 0.5 * (bounds.cmin + bounds.cmax);
  SolverReport report;
  {
    const auto start = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(medcc::sched::critical_greedy(inst, budget));
    report.critical_greedy_ms = seconds_since(start) * 1e3;
  }
  {
    medcc::sched::GeneticOptions opts;
    if (smoke) {
      opts.population = 16;
      opts.generations = 10;
    }
    const auto start = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(medcc::sched::genetic(inst, budget, opts));
    report.genetic_ms = seconds_since(start) * 1e3;
  }
  {
    medcc::sched::AnnealingOptions opts;
    if (smoke) opts.iterations = 500;
    const auto start = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(medcc::sched::annealing(inst, budget, opts));
    report.annealing_ms = seconds_since(start) * 1e3;
  }
  return report;
}

void write_json(const std::string& path, bool smoke,
                const FitnessReport& fitness, const SolverReport& solvers) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "FAIL: cannot write " << path << "\n";
    std::exit(1);
  }
  out << "{\n"
      << "  \"bench\": \"micro_schedulers\",\n"
      << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n"
      << "  \"fitness\": {\n"
      << "    \"modules\": " << fitness.modules << ",\n"
      << "    \"edges\": " << fitness.edges << ",\n"
      << "    \"batch\": " << fitness.batch << ",\n"
      << "    \"reps\": " << fitness.reps << ",\n"
      << "    \"legacy_us_per_eval\": " << fitness.legacy_us_per_eval << ",\n"
      << "    \"makespan_us_per_eval\": " << fitness.makespan_us_per_eval
      << ",\n"
      << "    \"kernel_us_per_eval\": " << fitness.kernel_us_per_eval << ",\n"
      << "    \"speedup\": " << fitness.speedup << ",\n"
      << "    \"speedup_vs_forward_only\": " << fitness.speedup_makespan
      << "\n"
      << "  },\n"
      << "  \"solvers\": {\n"
      << "    \"critical_greedy_ms\": " << solvers.critical_greedy_ms << ",\n"
      << "    \"genetic_ms\": " << solvers.genetic_ms << ",\n"
      << "    \"annealing_ms\": " << solvers.annealing_ms << "\n"
      << "  }\n"
      << "}\n";
}

int run_handtimed(const std::string& json_path, bool smoke) {
  const std::size_t modules = smoke ? 100 : 400;
  const std::size_t batch = smoke ? 32 : 64;
  const std::size_t reps = smoke ? 20 : 50;
  const auto inst = instance_for(modules);

  // Warm-up rep so lazy one-time costs (page faults, topo memoization)
  // hit neither side of the comparison.
  (void)time_fitness_batch(inst, batch, 1);
  const auto fitness = time_fitness_batch(inst, batch, reps);
  const auto solvers = time_solvers(inst, smoke);

  std::cout << "fitness batch (m=" << fitness.modules
            << ", |Ew|=" << fitness.edges << ", " << fitness.batch << "x"
            << fitness.reps << " evals):\n"
            << "  legacy compute_cpm     : " << fitness.legacy_us_per_eval
            << " us/eval (the seed's fitness path)\n"
            << "  forward-only makespan  : " << fitness.makespan_us_per_eval
            << " us/eval\n"
            << "  cpm kernel             : " << fitness.kernel_us_per_eval
            << " us/eval\n"
            << "  speedup vs legacy      : " << fitness.speedup << "x\n"
            << "  speedup vs fwd-only    : " << fitness.speedup_makespan
            << "x\n"
            << "solve times: cg=" << solvers.critical_greedy_ms
            << " ms, genetic=" << solvers.genetic_ms
            << " ms, annealing=" << solvers.annealing_ms << " ms\n";

  if (!json_path.empty()) write_json(json_path, smoke, fitness, solvers);

  if (smoke && fitness.speedup < 3.0) {
    std::cerr << "FAIL: kernel speedup " << fitness.speedup
              << "x below the 3x acceptance target\n";
    return 1;
  }
  std::cout << (smoke ? "smoke OK\n" : "OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool smoke = false;
  std::vector<char*> bench_args{argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      if (i + 1 >= argc) {
        std::cerr << "missing value after --json\n";
        return 2;
      }
      json_path = argv[++i];
    } else if (arg == "--smoke") {
      smoke = true;
    } else {
      bench_args.push_back(argv[i]);
    }
  }
  if (smoke || !json_path.empty()) return run_handtimed(json_path, smoke);

  int bench_argc = static_cast<int>(bench_args.size());
  benchmark::Initialize(&bench_argc, bench_args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
