// Ablation A3: data-transfer sensitivity. The paper assumes intra-cloud
// transfers are negligible (<10% of execution time). This sweep lowers the
// shared-storage bandwidth until transfers dominate and reports how the
// end-to-end delay of CG's schedule (computed while *ignoring* transfers,
// as the paper's scheduler does) degrades when transfers actually cost
// time -- quantifying when the assumption breaks.
#include <iostream>

#include "expr/instance_gen.hpp"
#include "sched/bounds.hpp"
#include "sched/critical_greedy.hpp"
#include "sim/executor.hpp"
#include "util/table.hpp"
#include "workflow/random_workflow.hpp"

int main() {
  std::cout << "=== Ablation A3 -- transfer-time sensitivity ===\n\n";
  // A mid-size workflow with non-trivial data on every edge.
  medcc::util::Prng rng(37);
  medcc::workflow::RandomWorkflowSpec spec;
  spec.modules = 20;
  spec.edges = 80;
  spec.data_size_min = 1.0;
  spec.data_size_max = 10.0;
  const auto wf = medcc::workflow::random_workflow(spec, rng);
  const auto catalog = medcc::cloud::random_linear_catalog(5, 20, rng);

  // Schedule once on the transfer-free instance (the paper's model)...
  const auto plan_inst = medcc::sched::Instance::from_model(
      wf, catalog, medcc::cloud::BillingPolicy::per_unit_time());
  const auto bounds = medcc::sched::cost_bounds(plan_inst);
  const auto r = medcc::sched::critical_greedy(
      plan_inst, 0.5 * (bounds.cmin + bounds.cmax));

  medcc::util::Table t({"bandwidth", "exec-only MED", "per-edge makespan",
                        "share (%)", "shared-storage makespan"});
  for (double bw : {0.0, 100.0, 30.0, 10.0, 3.0, 1.0}) {
    medcc::cloud::NetworkModel net;
    net.bandwidth = bw;  // 0 = infinite
    const auto exec_inst = medcc::sched::Instance::from_model(
        wf, catalog, medcc::cloud::BillingPolicy::per_unit_time(), net);
    // ...then execute that schedule under the real network: once with the
    // paper's fixed per-edge transfer times, once with the contention
    // model where every concurrent transfer shares one storage pipe.
    const auto report = medcc::sim::execute(exec_inst, r.schedule);
    const double share =
        (report.makespan - r.eval.med) / report.makespan * 100.0;
    std::string contended = "-";
    if (bw > 0.0) {
      medcc::sim::ExecutorOptions shared;
      shared.shared_storage_bandwidth = bw;
      contended = medcc::util::fmt(
          medcc::sim::execute(exec_inst, r.schedule, shared).makespan, 2);
    }
    t.add_row({bw <= 0.0 ? "infinite" : medcc::util::fmt(bw, 0),
               medcc::util::fmt(r.eval.med, 2),
               medcc::util::fmt(report.makespan, 2),
               medcc::util::fmt(share, 1), contended});
  }
  std::cout << t.render() << '\n';
  std::cout << "reading: the paper's zero-transfer assumption holds while "
               "the transfer share\nstays in the <10% band; once bandwidth "
               "drops low enough the schedule computed\nwithout transfer "
               "awareness leaves significant delay unaccounted. The last\n"
               "column shows the harsher reality when all transfers share "
               "one storage pipe\n(max-min fair): contention amplifies the "
               "gap further.\n";
  return 0;
}
