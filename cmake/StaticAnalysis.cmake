# Compile-time static analysis toggles.
#
# Thread-safety analysis (Clang only): the annotations in
# src/util/thread_annotations.hpp let Clang prove, per translation unit,
# that every MEDCC_GUARDED_BY field is only touched with its mutex held
# and that MEDCC_ACQUIRE/RELEASE functions balance. The analysis is a
# warning pass, so CI runs the Clang leg with -DMEDCC_WERROR=ON to make
# violations hard errors. GCC accepts the annotations as no-ops (see the
# header); this module simply skips the flag there.
option(MEDCC_THREAD_SAFETY
  "Enable Clang -Wthread-safety analysis (no-op on other compilers)" ON)

if(MEDCC_THREAD_SAFETY)
  if(CMAKE_CXX_COMPILER_ID MATCHES "Clang")
    target_compile_options(medcc_warnings INTERFACE -Wthread-safety)
    message(STATUS "medcc: Clang thread-safety analysis enabled")
  else()
    message(STATUS
      "medcc: thread-safety analysis skipped (requires Clang, have "
      "${CMAKE_CXX_COMPILER_ID})")
  endif()
endif()
