# Sanitizer toggles for the whole build.
#
#   -DMEDCC_SANITIZE="address;undefined"   ASan + UBSan (the CI pairing)
#   -DMEDCC_SANITIZE=thread                TSan (for the thread_pool tests)
#   -DMEDCC_SANITIZE=""                    plain build (default)
#
# Flags are applied globally (add_compile_options/add_link_options) so
# every library, test, bench, and tool in the tree is instrumented
# consistently; mixing instrumented and uninstrumented TUs produces false
# negatives.
set(MEDCC_SANITIZE "" CACHE STRING
  "Semicolon-separated sanitizer list: address, undefined, leak, thread")

if(MEDCC_SANITIZE)
  set(_medcc_san_flags "")
  foreach(_san IN LISTS MEDCC_SANITIZE)
    string(TOLOWER "${_san}" _san)
    if(_san STREQUAL "address")
      list(APPEND _medcc_san_flags -fsanitize=address)
    elseif(_san STREQUAL "undefined")
      list(APPEND _medcc_san_flags -fsanitize=undefined
        -fno-sanitize-recover=undefined)
    elseif(_san STREQUAL "leak")
      list(APPEND _medcc_san_flags -fsanitize=leak)
    elseif(_san STREQUAL "thread")
      list(APPEND _medcc_san_flags -fsanitize=thread)
    else()
      message(FATAL_ERROR "MEDCC_SANITIZE: unknown sanitizer '${_san}'")
    endif()
  endforeach()

  if("thread" IN_LIST MEDCC_SANITIZE AND
     ("address" IN_LIST MEDCC_SANITIZE OR "leak" IN_LIST MEDCC_SANITIZE))
    message(FATAL_ERROR
      "MEDCC_SANITIZE: thread cannot be combined with address/leak")
  endif()

  list(APPEND _medcc_san_flags -fno-omit-frame-pointer -g)
  message(STATUS "medcc: sanitizers enabled: ${MEDCC_SANITIZE}")
  add_compile_options(${_medcc_san_flags})
  add_link_options(${_medcc_san_flags})
  unset(_medcc_san_flags)
endif()
