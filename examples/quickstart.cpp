// Quickstart: schedule a small workflow on a cloud VM catalog under a
// budget with Critical-Greedy, inspect the schedule, and validate it in
// the event-driven simulator.
//
//   $ ./examples/quickstart
#include <iostream>

#include "sched/bounds.hpp"
#include "sched/critical_greedy.hpp"
#include "sim/executor.hpp"
#include "util/table.hpp"
#include "workflow/workflow.hpp"

int main() {
  using medcc::util::fmt;

  // 1. Describe the workflow: modules carry workloads (abstract work
  //    units), edges carry data sizes. Entry/exit are free fixed stages.
  medcc::workflow::Workflow wf;
  const auto in = wf.add_fixed_module("stage-in", 0.5);
  const auto prep = wf.add_module("preprocess", 24.0);
  const auto sim_a = wf.add_module("simulate-A", 90.0);
  const auto sim_b = wf.add_module("simulate-B", 75.0);
  const auto merge = wf.add_module("merge", 30.0);
  const auto out = wf.add_fixed_module("stage-out", 0.5);
  wf.add_dependency(in, prep, 2.0);
  wf.add_dependency(prep, sim_a, 4.0);
  wf.add_dependency(prep, sim_b, 4.0);
  wf.add_dependency(sim_a, merge, 6.0);
  wf.add_dependency(sim_b, merge, 6.0);
  wf.add_dependency(merge, out, 1.0);

  // 2. Describe the cloud: VM types {processing power, price per hour},
  //    billed in whole hours (EC2-style rounding).
  const medcc::cloud::VmCatalog catalog(
      {{"small", 4.0, 1.0}, {"large", 16.0, 3.5}, {"xlarge", 32.0, 7.0}});
  const auto inst = medcc::sched::Instance::from_model(
      wf, catalog, medcc::cloud::BillingPolicy::per_unit_time());

  // 3. The feasible budget range and a Critical-Greedy schedule.
  const auto bounds = medcc::sched::cost_bounds(inst);
  std::cout << "budget range: [" << fmt(bounds.cmin, 2) << ", "
            << fmt(bounds.cmax, 2) << "] $\n";
  const double budget = 0.5 * (bounds.cmin + bounds.cmax);
  const auto result = medcc::sched::critical_greedy(inst, budget);

  medcc::util::Table t({"module", "VM type", "time (h)", "cost ($)"});
  for (auto m : wf.computing_modules()) {
    const auto type = result.schedule.type_of[m];
    t.add_row({wf.module(m).name, catalog.type(type).name,
               fmt(inst.time(m, type), 2), fmt(inst.cost(m, type), 2)});
  }
  std::cout << "\nschedule under budget $" << fmt(budget, 2) << ":\n"
            << t.render() << "\nend-to-end delay (MED): "
            << fmt(result.eval.med, 2) << " h at cost $"
            << fmt(result.eval.cost, 2) << '\n';

  // 4. Validate by executing the schedule in simulated time, sharing VMs
  //    among sequential same-type modules.
  medcc::sim::ExecutorOptions opts;
  opts.reuse_vms = true;
  const auto report = medcc::sim::execute(inst, result.schedule, opts);
  std::cout << "\nsimulated makespan: " << fmt(report.makespan, 2)
            << " h on " << report.vms.size() << " VMs, billed $"
            << fmt(report.billed_cost, 2) << " with reuse\n";
  return 0;
}
