// Domain scenario: a regional weather-forecast run (the paper's WRF
// workload) on a private IaaS cloud, end to end --
//   1. cluster the raw three-pipeline workflow into aggregate modules,
//   2. schedule it against a user budget with Critical-Greedy,
//   3. provision the virtual cluster on the emulated Nimbus cloud,
//   4. validate in the event-driven simulator with VM reuse,
//   5. replay in scaled real time on worker threads.
//
//   $ ./examples/wrf_forecast [budget]
#include <cstdlib>
#include <iostream>

#include "sched/bounds.hpp"
#include "sched/critical_greedy.hpp"
#include "sched/vm_reuse.hpp"
#include "sim/executor.hpp"
#include "testbed/nimbus.hpp"
#include "testbed/runner.hpp"
#include "testbed/wrf_experiment.hpp"
#include "util/table.hpp"
#include "workflow/clustering.hpp"
#include "workflow/wrf.hpp"

int main(int argc, char** argv) {
  using medcc::util::fmt;

  // 1. Clustering: bundle the 16-program workflow (Fig. 13) so that the
  //    heavy data flows become VM-internal.
  const auto raw = medcc::workflow::wrf_experiment_ungrouped();
  const auto clustering =
      medcc::workflow::transfer_aware_clustering(raw, 700.0);
  std::cout << "clustering: " << raw.computing_module_count()
            << " programs -> "
            << clustering.aggregated.computing_module_count()
            << " aggregate modules ("
            << fmt(clustering.internalized_data, 1)
            << " data units made VM-internal)\n\n";

  // The paper's measured instance (grouped workflow + Table VI matrix).
  const auto inst = medcc::testbed::wrf_instance();
  const auto bounds = medcc::sched::cost_bounds(inst);
  const double budget =
      argc > 1 ? std::atof(argv[1]) : 0.5 * (bounds.cmin + bounds.cmax);
  std::cout << "budget range [" << fmt(bounds.cmin, 1) << ", "
            << fmt(bounds.cmax, 1) << "], scheduling at $"
            << fmt(budget, 1) << "\n\n";

  // 2. Schedule.
  const auto r = medcc::sched::critical_greedy(inst, budget);
  medcc::util::Table t({"module", "VM type", "time (s)", "cost ($)"});
  for (auto m : inst.workflow().computing_modules()) {
    const auto type = r.schedule.type_of[m];
    t.add_row({inst.workflow().module(m).name,
               inst.catalog().type(type).name, fmt(inst.time(m, type), 1),
               fmt(inst.cost(m, type), 1)});
  }
  std::cout << t.render() << "forecast MED: " << fmt(r.eval.med, 1)
            << " s at cost $" << fmt(r.eval.cost, 1) << "\n\n";

  // 3. Provision the fleet (with VM reuse) on the Nimbus-like cloud.
  const auto plan = medcc::sched::plan_vm_reuse(inst, r.schedule);
  std::vector<std::size_t> fleet;
  for (const auto& vm : plan.instances) fleet.push_back(vm.type);
  medcc::testbed::NimbusCloud cloud(medcc::testbed::NimbusConfig{},
                                    inst.catalog());
  std::cout << "fleet: " << fleet.size() << " VMs (reuse saved "
            << inst.workflow().computing_module_count() - fleet.size()
            << "), cluster ready after "
            << fmt(cloud.cluster_ready_time(fleet), 1)
            << " s of provisioning (pre-launched)\n";

  // 4. Simulated validation.
  medcc::sim::ExecutorOptions opts;
  opts.reuse_vms = true;
  const auto sim = medcc::sim::execute(inst, r.schedule, opts);
  std::cout << "simulated makespan: " << fmt(sim.makespan, 1)
            << " s, billed $" << fmt(sim.billed_cost, 1) << "\n";

  // 5. Real-time scaled replay on worker threads (1 ms per second).
  medcc::testbed::RunnerOptions ropts;
  ropts.time_scale = 1e-3;
  const auto run = medcc::testbed::run_threaded(inst, r.schedule, ropts);
  std::cout << "threaded replay measured " << fmt(run.measured_makespan, 1)
            << " s (analytic " << fmt(run.analytic_med, 1) << ") on "
            << run.threads_used << " worker threads\n";
  return 0;
}
