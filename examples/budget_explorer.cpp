// Budget explorer: for a (random or WRF) workflow instance, chart how the
// achievable end-to-end delay falls as the budget grows, compare the
// schedulers, and print the budget a user should request for a target
// deadline -- the "resource provisioning reference" use-case from the
// paper's introduction.
//
//   $ ./examples/budget_explorer [modules] [edges] [types] [seed]
//   $ ./examples/budget_explorer wrf
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "expr/instance_gen.hpp"
#include "sched/bounds.hpp"
#include "sched/critical_greedy.hpp"
#include "sched/exhaustive.hpp"
#include "sched/gain_loss.hpp"
#include "testbed/wrf_experiment.hpp"
#include "util/ascii_plot.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using medcc::util::fmt;

  medcc::sched::Instance inst = [&] {
    if (argc > 1 && std::strcmp(argv[1], "wrf") == 0)
      return medcc::testbed::wrf_instance();
    const std::size_t m = argc > 1 ? std::stoul(argv[1]) : 20;
    const std::size_t e = argc > 2 ? std::stoul(argv[2]) : 80;
    const std::size_t n = argc > 3 ? std::stoul(argv[3]) : 5;
    medcc::util::Prng rng(argc > 4 ? std::stoull(argv[4]) : 7);
    return medcc::expr::make_instance({m, e, n}, rng);
  }();

  const auto bounds = medcc::sched::cost_bounds(inst);
  std::cout << "workflow: " << inst.workflow().computing_module_count()
            << " modules, " << inst.workflow().dependency_count()
            << " dependencies, " << inst.type_count() << " VM types\n"
            << "feasible budgets: [" << fmt(bounds.cmin, 2) << ", "
            << fmt(bounds.cmax, 2) << "]\n\n";

  medcc::util::Table t(
      {"budget", "CG MED", "GAIN3 MED", "LOSS MED", "CG cost"});
  medcc::util::Series cg_series{"Critical-Greedy", {}, {}, '*'};
  medcc::util::Series gain_series{"GAIN3", {}, {}, 'o'};
  for (double budget : medcc::sched::budget_levels(bounds, 12)) {
    const auto cg = medcc::sched::critical_greedy(inst, budget);
    const auto g3 = medcc::sched::gain3(inst, budget);
    const auto ls = medcc::sched::loss(inst, budget);
    t.add_row({fmt(budget, 2), fmt(cg.eval.med, 2), fmt(g3.eval.med, 2),
               fmt(ls.eval.med, 2), fmt(cg.eval.cost, 2)});
    cg_series.xs.push_back(budget);
    cg_series.ys.push_back(cg.eval.med);
    gain_series.xs.push_back(budget);
    gain_series.ys.push_back(g3.eval.med);
  }
  std::cout << t.render() << '\n';

  medcc::util::PlotOptions opts;
  opts.title = "MED vs budget";
  opts.x_label = "budget";
  opts.y_label = "MED";
  std::cout << medcc::util::line_plot(
      std::vector<medcc::util::Series>{cg_series, gain_series}, opts);

  // Deadline advisor: smallest swept budget whose CG MED meets a deadline
  // halfway between the best and worst achievable delay.
  const double best = cg_series.ys.back();
  const double worst = cg_series.ys.front();
  const double deadline = 0.5 * (best + worst);
  for (std::size_t k = 0; k < cg_series.xs.size(); ++k) {
    if (cg_series.ys[k] <= deadline) {
      std::cout << "\nto finish within " << fmt(deadline, 2)
                << " time units, request a budget of about "
                << fmt(cg_series.xs[k], 2) << " ("
                << fmt((cg_series.xs[k] - bounds.cmin) /
                           (bounds.cmax - bounds.cmin) * 100.0,
                       0)
                << "% above the minimum)\n";
      break;
    }
  }
  return 0;
}
