// Resilience drill: before committing to a budget, stress-test the plan --
// how does the WRF forecast behave when VMs crash mid-run and when module
// runtimes jitter? Combines failure injection, Monte-Carlo robustness and
// the Gantt view into a pre-flight report.
//
//   $ ./examples/resilience_drill [budget] [mtbf_seconds]
#include <cstdlib>
#include <iostream>

#include "expr/robustness.hpp"
#include "sched/bounds.hpp"
#include "sched/critical_greedy.hpp"
#include "sim/executor.hpp"
#include "sim/gantt.hpp"
#include "testbed/wrf_experiment.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using medcc::util::fmt;
  const auto inst = medcc::testbed::wrf_instance();
  const auto bounds = medcc::sched::cost_bounds(inst);
  const double budget =
      argc > 1 ? std::atof(argv[1]) : 0.5 * (bounds.cmin + bounds.cmax);
  const double mtbf = argc > 2 ? std::atof(argv[2]) : 600.0;

  const auto plan = medcc::sched::critical_greedy(inst, budget);
  std::cout << "plan at $" << fmt(budget, 1) << ": MED "
            << fmt(plan.eval.med, 1) << " s, cost $"
            << fmt(plan.eval.cost, 1) << "\n\n";

  // 1. Clean run with the Gantt view.
  medcc::sim::ExecutorOptions clean;
  clean.reuse_vms = true;
  const auto base = medcc::sim::execute(inst, plan.schedule, clean);
  std::cout << "clean execution (" << base.vms.size() << " VMs):\n"
            << medcc::sim::gantt(inst, base) << '\n';

  // 2. Crash drill: inject VM failures at several MTBF levels.
  {
    medcc::util::Table t({"MTBF (s)", "crashes", "makespan (s)",
                          "slowdown (%)", "billed ($)"});
    for (double level : {mtbf * 4.0, mtbf, mtbf / 4.0}) {
      medcc::sim::ExecutorOptions opts = clean;
      opts.failures.mtbf = level;
      opts.failures.seed = 42;
      opts.failures.max_retries_per_module = 500;
      const auto run = medcc::sim::execute(inst, plan.schedule, opts);
      t.add_row({fmt(level, 0), fmt(run.vm_failures),
                 fmt(run.makespan, 1),
                 fmt((run.makespan / base.makespan - 1.0) * 100.0, 1),
                 fmt(run.billed_cost, 1)});
    }
    std::cout << "crash drill:\n" << t.render() << '\n';
  }

  // 3. Runtime-jitter drill: realized-MED distribution.
  {
    medcc::expr::RobustnessOptions opts;
    opts.trials = 2000;
    opts.noise = 0.1;
    const auto rep = medcc::expr::assess_robustness(
        inst, plan.schedule, medcc::util::global_pool(), opts);
    std::cout << "runtime jitter (10% noise, " << opts.trials
              << " trials): mean " << fmt(rep.mean, 1) << ", p95 "
              << fmt(rep.p95, 1) << ", worst " << fmt(rep.max, 1)
              << " s\n";
    std::cout << "probability of blowing the nominal MED by >10%: "
              << fmt(rep.miss_rate(rep.nominal_med * 1.1) * 100.0, 1)
              << "%\n";
  }
  return 0;
}
