// Campaign planner: an astronomy group wants to build sky mosaics of
// growing size (Montage-like workflows) and needs to know, for each mosaic
// size, the money/time frontier -- minimum cost, minimum delay, and the
// knee point Critical-Greedy finds in between -- plus the VM fleet to
// request. Demonstrates the library on non-WRF science workloads.
//
//   $ ./examples/montage_campaign [max_tiles]
#include <cstdlib>
#include <iostream>

#include "sched/bounds.hpp"
#include "sched/critical_greedy.hpp"
#include "sched/vm_reuse.hpp"
#include "util/table.hpp"
#include "workflow/patterns.hpp"

int main(int argc, char** argv) {
  using medcc::util::fmt;
  const std::size_t max_tiles = argc > 1 ? std::stoul(argv[1]) : 10;

  const medcc::cloud::VmCatalog catalog(
      {{"c1", 4.0, 1.0}, {"c4", 17.0, 4.0}, {"c8", 35.0, 8.0}});
  medcc::util::Prng rng(2026);

  medcc::util::Table t({"tiles", "modules", "Cmin", "Cmax", "MED@min$",
                        "MED@knee", "knee $", "MED@max$", "VMs@knee"});
  for (std::size_t tiles = 2; tiles <= max_tiles; tiles += 2) {
    auto sub = rng.fork(tiles);
    const auto wf = medcc::workflow::montage_like(tiles, sub);
    const auto inst = medcc::sched::Instance::from_model(wf, catalog);
    const auto bounds = medcc::sched::cost_bounds(inst);

    // Scan the budget range for the knee: the point where spending one
    // more dollar stops buying at least `knee_rate` hours.
    const auto at = [&](double budget) {
      return medcc::sched::critical_greedy(inst, budget);
    };
    const auto cheap = at(bounds.cmin);
    const auto fast = at(bounds.cmax);
    double knee_budget = bounds.cmax;
    double previous_med = cheap.eval.med;
    const double knee_rate =
        (cheap.eval.med - fast.eval.med) /
        std::max(1.0, bounds.cmax - bounds.cmin);  // average trade rate
    for (double budget : medcc::sched::budget_levels(bounds, 16)) {
      const auto r = at(budget);
      const double step = bounds.cmax > bounds.cmin
                              ? (bounds.cmax - bounds.cmin) / 16.0
                              : 1.0;
      const double rate = (previous_med - r.eval.med) / step;
      previous_med = r.eval.med;
      if (rate < knee_rate) {
        knee_budget = budget;
        break;
      }
    }
    const auto knee = at(knee_budget);
    const auto fleet = medcc::sched::plan_vm_reuse(inst, knee.schedule);

    t.add_row({fmt(tiles), fmt(wf.computing_module_count()),
               fmt(bounds.cmin, 0), fmt(bounds.cmax, 0),
               fmt(cheap.eval.med, 2), fmt(knee.eval.med, 2),
               fmt(knee_budget, 0), fmt(fast.eval.med, 2),
               fmt(fleet.instances.size())});
  }
  std::cout << "Montage campaign frontier (times in hours, money in $)\n"
            << t.render()
            << "\nreading: the knee budget buys most of the speedup; "
               "beyond it the marginal\ndollar buys less than the "
               "campaign-average rate.\n";
  return 0;
}
